"""E11 — Definition 6.9 / Proposition 6.10: deciding univocality and c(r).

The paper leaves the complexity of the univocality test open (it reduces it to
Presburger arithmetic); this benchmark records the cost of our semilinear
decision procedure on the expressions the paper discusses plus nested-
relational shapes of increasing width.
"""

import pytest

from repro.regexlang import RegexAnalysis, parse_regex

_PAPER_EXAMPLES = {
    "bc+d*e?": "b c+ d* e?",
    "(b*|c*)": "(b*|c*)",
    "(bc)*(de)*": "(b c)* (d e)*",
    "a|aab*": "a | a a b*",
    "simple-5": "(a1|a2|a3|a4|a5)*",
}


@pytest.mark.parametrize("name", sorted(_PAPER_EXAMPLES))
def test_univocality_decision_paper_examples(benchmark, name):
    text = _PAPER_EXAMPLES[name]

    def decide():
        analysis = RegexAnalysis(parse_regex(text))
        return analysis.is_univocal(), analysis.c_value()

    univocal, c = benchmark(decide)
    expected_univocal = name != "a|aab*"
    assert univocal is expected_univocal
    assert (c >= 2) == (name == "a|aab*")


@pytest.mark.parametrize("width", [2, 3, 4])
def test_univocality_nested_relational_width(benchmark, width):
    text = " ".join(f"l{i}{'*' if i % 2 else '+'}" for i in range(width))

    def decide():
        # The explicit bound keeps the ∀w sweep comparable across widths; it is
        # exact for nested-relational shapes (all counts in π(r) ≤ 1-periodic).
        return RegexAnalysis(parse_regex(text), univocality_bound=2).is_univocal()

    assert benchmark(decide) is True
