"""The perf-regression gate: diff a fresh bench run against its baseline.

``benchmarks/BENCH_engine.json`` and ``benchmarks/BENCH_service.json`` are
the committed perf trajectory.  This script compares a fresh ``--json`` run
of the same bench against the committed baseline with a tolerance band:

* a throughput metric that regressed by more than ``--fail`` (default 35%)
  **fails** the gate (exit 1);
* a regression beyond ``--warn`` (default 15%) prints a warning but passes
  — CI runners are noisy, and the wide band is what makes the gate
  enforceable rather than flaky;
* latency metrics are reported for context only — they are far noisier
  than throughput on shared runners and never gate.

When at least one compared metric *improved* beyond the warn band and none
regressed beyond it, ``--update`` rewrites the baseline file in place —
that is how the committed ``BENCH_*.json`` trajectory moves forward: run
the bench, compare with ``--update``, commit the refreshed baseline with
the change that earned it.

Baselines are absolute numbers, so they encode the machine class they were
measured on.  If the CI gate turns red without a code change (a runner
generation swap, not a regression), re-baseline deliberately: take the
``fresh_*.json`` artifact the failing ``bench-regression`` job uploaded,
commit it over the corresponding ``benchmarks/BENCH_*.json``, and say so in
the commit message — the tolerance band absorbs runner *noise*, never a
hardware *migration*.

Usage::

    python benchmarks/bench_service.py --generated 8 --seed 7 --json fresh.json
    python benchmarks/compare_bench.py \\
        --baseline benchmarks/BENCH_service.json --fresh fresh.json \\
        [--fail 0.35] [--warn 0.15] [--update]

The bench kind is read from the reports' ``"bench"`` field; baseline and
fresh run must agree on it.  Exit codes: 0 pass (possibly with warnings),
1 regression beyond the fail band (or mismatched/malformed reports).
"""

import argparse
import json
import sys

#: Gating metrics per bench kind — all higher-is-better throughputs.
#: Latency/context metrics below are printed but never gate.
THROUGHPUT_METRICS = {
    "engine-generated": ("serial_tps", "thread_tps", "process_tps",
                         "repeat_tps"),
    "service": ("throughput_rps",),
    "patterns": ("plan_eps", "plan_warm_eps"),
    "patterns-selective": ("join_eps", "recurrence_eps"),
    "storage": ("ingest_dps", "read_dps", "fp_eps"),
}

#: Dotted paths reported for context (no gating): latency percentiles, and
#: the interpreter oracle's throughput (it is off the hot path — slowing it
#: is allowed, silently speeding past the plan path is what parity gates).
CONTEXT_METRICS = {
    "engine-generated": (),
    "service": ("latency_ms.p50", "latency_ms.p99"),
    "patterns": ("interpreter_eps",),
    "patterns-selective": ("interpreter_eps",),
    "storage": ("bytes_per_node",),
}


def dig(report, dotted):
    value = report
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def load_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "bench" not in report:
        raise ValueError(f"{path}: not a bench report (missing 'bench')")
    return report


def compare(baseline, fresh, fail_band, warn_band):
    """Yields ``(metric, base, new, change, verdict)`` rows; ``change`` is
    the relative movement (positive = improvement for throughputs)."""
    kind = baseline["bench"]
    for metric in THROUGHPUT_METRICS.get(kind, ()):
        base, new = dig(baseline, metric), dig(fresh, metric)
        if base is None or new is None:
            # A metric one side lacks is a schema drift, not a regression:
            # surface it, gate only on what both runs measured.
            yield metric, base, new, None, "missing"
            continue
        if base <= 0:
            yield metric, base, new, None, "unusable-baseline"
            continue
        change = (new - base) / base
        if change < -fail_band:
            verdict = "fail"
        elif change < -warn_band:
            verdict = "warn"
        elif change > warn_band:
            verdict = "improved"
        else:
            verdict = "ok"
        yield metric, base, new, change, verdict


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json baseline")
    parser.add_argument("--fresh", required=True,
                        help="fresh --json run of the same bench")
    parser.add_argument("--fail", type=float, default=0.35,
                        help="relative throughput regression that fails "
                             "the gate (default 0.35)")
    parser.add_argument("--warn", type=float, default=0.15,
                        help="relative regression that warns (default 0.15)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline with the fresh report "
                             "when every metric improved beyond the warn "
                             "band and none regressed")
    args = parser.parse_args(argv)
    if not 0 < args.warn <= args.fail:
        parser.error("need 0 < --warn <= --fail")

    try:
        baseline = load_report(args.baseline)
        fresh = load_report(args.fresh)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    if baseline["bench"] != fresh["bench"]:
        print(f"FAIL: bench kind mismatch: baseline is "
              f"{baseline['bench']!r}, fresh run is {fresh['bench']!r}",
              file=sys.stderr)
        return 1
    if fresh.get("failures"):
        print(f"FAIL: the fresh run itself reports failures: "
              f"{fresh['failures']}", file=sys.stderr)
        return 1

    kind = baseline["bench"]
    print(f"bench '{kind}': {args.fresh} vs baseline {args.baseline} "
          f"(warn >{args.warn:.0%}, fail >{args.fail:.0%} regression)")
    rows = list(compare(baseline, fresh, args.fail, args.warn))
    if not rows:
        print(f"FAIL: no gating metrics known for bench kind {kind!r}",
              file=sys.stderr)
        return 1

    failures, warnings, improvements = [], [], []
    for metric, base, new, change, verdict in rows:
        if verdict in ("missing", "unusable-baseline"):
            print(f"  {metric:16s}: {verdict} "
                  f"(baseline={base!r}, fresh={new!r}) — not gated")
            warnings.append(metric)
            continue
        arrow = f"{base:12.1f} -> {new:12.1f}  ({change:+7.1%})"
        print(f"  {metric:16s}: {arrow}  [{verdict}]")
        if verdict == "fail":
            failures.append(metric)
        elif verdict == "warn":
            warnings.append(metric)
        elif verdict == "improved":
            improvements.append(metric)
    for metric in CONTEXT_METRICS.get(kind, ()):
        base, new = dig(baseline, metric), dig(fresh, metric)
        if base is not None and new is not None:
            print(f"  {metric:16s}: {base:12.2f} -> {new:12.2f}  "
                  f"(context only, not gated)")

    if failures:
        print(f"FAIL: throughput regressed beyond {args.fail:.0%} on: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    if warnings:
        print(f"WARN: regression beyond {args.warn:.0%} (within the fail "
              f"band) or ungated metric on: {', '.join(warnings)}")
    gated = [row for row in rows if row[4] not in ("missing",
                                                   "unusable-baseline")]
    if (args.update and improvements
            and all(row[4] in ("improved", "ok") for row in gated)):
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(fresh, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"improved on {', '.join(improvements)} with no regression "
              f"beyond the warn band: baseline {args.baseline} refreshed — "
              f"commit it to move the trajectory forward")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
