"""E15 — the engine API: cold compile vs warm cache, and batch throughput.

The engine's contract is that everything derivable from the setting alone is
paid for once (``compile_setting``) and every later request only does
per-tree work.  This file pins that claim down as the perf baseline for
future PRs:

* ``cold``  — the legacy per-call path of a stateless service: every request
  re-parses the DTDs into a fresh setting, so content-model NFAs and
  univocality analyses are recompiled per call;
* ``warm``  — one :class:`repro.ExchangeEngine` serving repeated requests on
  the same compiled setting (cache-stats counters prove the reuse);
* ``batch`` — trees/second of ``certain_answers_batch`` sequentially and
  with a thread pool.

Runs both under pytest-benchmark (like the other E-files) and standalone::

    python benchmarks/bench_engine.py [--smoke]

The ``--generated N --seed S`` mode benchmarks a *generated* workload
(:func:`repro.workloads.generated.benchmark_workload`) instead of the fixed
library schema: serial vs thread vs process batch throughput on the same
tree set (fresh result cache per pass), then a repeat pass demonstrating
the engine-level result cache on repeated trees::

    python benchmarks/bench_engine.py --generated 50 --seed 7 \\
        --parallel 4 --executor process

Exit-code gates are deterministic only (executor parity, cache hits on the
repeat pass, zero recompilations); raw throughput ordering is reported but
machine-dependent — in particular, on a single-core container a process
pool cannot beat a thread pool, and the bench says so instead of failing.
"""

import argparse
import json
import os
import sys
import time

from repro import ExchangeEngine, certain_answers, check_consistency
from repro.workloads import library


def _cold_request(source, query):
    # What a stateless service does per request: rebuild the setting
    # (library_setting() re-parses both DTDs, so every content-model
    # compilation is lost) before answering.
    setting = library.library_setting()
    check_consistency(setting)
    return certain_answers(setting, source, query)


def _sources(n_trees: int, n_books: int):
    return [library.generate_source(n_books, authors_per_book=2, seed=seed)
            for seed in range(n_trees)]


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #

def test_cold_per_call_certain_answers(benchmark):
    """Legacy per-call path: fresh setting (and NFA compilation) per request."""
    source = library.generate_source(20, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    outcome = benchmark(lambda: _cold_request(source, query))
    assert outcome.has_solution


def test_warm_engine_certain_answers(benchmark):
    """Engine path: the compiled setting is reused across requests."""
    source = library.generate_source(20, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    engine = ExchangeEngine(library.library_setting())
    engine.check_consistency()

    def request():
        engine.check_consistency()
        return engine.certain_answers(source, query)

    result = benchmark(request)
    assert result.ok
    stats = engine.stats
    assert stats["rule_cache_misses"] == 0, "warm engine recompiled an NFA"
    assert stats["rule_cache_hits"] > 0


def test_batch_throughput(benchmark):
    """certain_answers_batch over many trees with a shared compiled setting."""
    engine = ExchangeEngine(library.library_setting())
    sources = _sources(16, n_books=10)
    query = library.query_writer_of("Book-0")
    results = benchmark(lambda: engine.certain_answers_batch(sources, query,
                                                             parallel=4))
    assert all(r.ok for r in results)


# --------------------------------------------------------------------- #
# Standalone runner (no pytest-benchmark dependency)
# --------------------------------------------------------------------- #

def _write_json(path, report) -> None:
    """The ``--json PATH`` artifact: one flat machine-readable result file
    (the ``BENCH_*.json`` perf-trajectory format)."""
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"json report         : {path}")


def _time(operation, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best


def run_generated(args) -> int:
    """The ``--generated N`` mode: executor shoot-out on a seeded workload."""
    from repro.workloads.generated import benchmark_workload

    started = time.perf_counter()
    workload = benchmark_workload(args.seed, args.generated)
    query = workload.queries[0]
    trees = workload.source_trees
    engine = ExchangeEngine(workload.setting)
    print(workload.describe())
    print(f"setting fingerprint : {workload.setting.fingerprint()[:16]}")
    print(f"tree nodes min/max  : {min(len(t) for t in trees)}"
          f"/{max(len(t) for t in trees)}")
    print(f"workload generation : {time.perf_counter() - started:6.2f} s")

    def timed_pass(executor, parallel):
        engine.clear_result_cache()
        begun = time.perf_counter()
        results = engine.certain_answers_batch(trees, query,
                                               parallel=parallel,
                                               executor=executor)
        return time.perf_counter() - begun, results

    serial_time, serial_results = timed_pass("serial", None)
    thread_time, thread_results = timed_pass("thread", args.parallel)
    chosen = args.executor
    if chosen == "thread":
        chosen_time, chosen_results = thread_time, thread_results
    else:
        chosen_time, chosen_results = timed_pass(chosen, args.parallel)

    n = len(trees)
    print(f"batch serial        : {n / serial_time:8.1f} trees/s")
    print(f"batch thread  x{args.parallel:<2}   : {n / thread_time:8.1f} trees/s")
    if chosen != "thread":
        print(f"batch {chosen} x{args.parallel:<2}  : {n / chosen_time:8.1f} trees/s")

    # Repeat pass on the warm engine: every tree repeats, so the result
    # cache must answer without re-dispatching.
    hits_before = engine.stats["result_cache_hits"]
    begun = time.perf_counter()
    repeat_results = engine.certain_answers_batch(trees, query,
                                                  parallel=args.parallel,
                                                  executor=chosen)
    repeat_time = time.perf_counter() - begun
    cache_hits = engine.stats["result_cache_hits"] - hits_before
    print(f"repeat batch (warm) : {n / max(repeat_time, 1e-9):8.1f} trees/s "
          f"({cache_hits} result-cache hits)")

    failures = 0
    views = [[(r.ok, r.payload) for r in results]
             for results in (serial_results, thread_results, chosen_results,
                             repeat_results)]
    if not (views[0] == views[1] == views[2] == views[3]):
        print("FAIL: executors returned different results on the same batch",
              file=sys.stderr)
        failures += 1
    if cache_hits <= 0:
        print("FAIL: repeated trees produced no result-cache hits",
              file=sys.stderr)
        failures += 1
    if engine.stats["rule_cache_misses"] != 0:
        print("FAIL: the engine recompiled a content model after compile",
              file=sys.stderr)
        failures += 1
    if chosen == "process" and chosen_time > thread_time:
        cores = os.cpu_count() or 1
        note = (" (expected: this machine has a single CPU core, so a "
                "process pool only adds IPC overhead)" if cores <= 1 else "")
        print(f"WARNING: process batch ({n / chosen_time:.1f} trees/s) did "
              f"not beat the thread batch ({n / thread_time:.1f} trees/s) "
              f"on this run{note}", file=sys.stderr)
    _write_json(args.json, {
        "bench": "engine-generated",
        "seed": args.seed,
        "trees": n,
        "parallel": args.parallel,
        "executor": chosen,
        "setting_fingerprint": workload.setting.fingerprint()[:16],
        "serial_tps": n / serial_time,
        "thread_tps": n / thread_time,
        f"{chosen}_tps": n / chosen_time,
        "repeat_tps": n / max(repeat_time, 1e-9),
        "result_cache_hits": cache_hits,
        "rule_cache_misses": engine.stats["rule_cache_misses"],
        "failure_count": failures,
    })
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes, assert the warm path wins")
    parser.add_argument("--repeat", type=int, default=None)
    parser.add_argument("--generated", type=int, default=None, metavar="N",
                        help="benchmark a generated workload of N trees "
                             "instead of the library schema")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload seed for --generated")
    parser.add_argument("--parallel", type=int, default=4,
                        help="worker count for the parallel passes")
    parser.add_argument("--executor", default="process",
                        choices=("thread", "process"),
                        help="executor for the headline --generated pass")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable result file")
    args = parser.parse_args(argv)
    if args.generated is not None:
        return run_generated(args)
    repeat = args.repeat or (5 if args.smoke else 25)
    n_books = 10 if args.smoke else 50
    n_trees = 8 if args.smoke else 32

    source = library.generate_source(n_books, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")

    cold = _time(lambda: _cold_request(source, query), repeat)

    # result_cache=False: this baseline measures compiled-setting reuse of
    # the full pipeline; the --generated mode showcases the result cache.
    engine = ExchangeEngine(library.library_setting(), result_cache=False)
    engine.check_consistency()
    engine.certain_answers(source, query)          # prime every cache
    warm = _time(lambda: (engine.check_consistency(),
                          engine.certain_answers(source, query)), repeat)
    stats = engine.stats

    sources = _sources(n_trees, n_books)
    seq = _time(lambda: engine.certain_answers_batch(sources, query), 3)
    par = _time(lambda: engine.certain_answers_batch(sources, query,
                                                     parallel=4), 3)

    print(f"cold per-call (rebuild setting) : {cold * 1e3:8.2f} ms/request")
    print(f"warm engine (compiled setting)  : {warm * 1e3:8.2f} ms/request "
          f"({cold / warm:4.1f}x)")
    print(f"batch sequential                : {n_trees / seq:8.1f} trees/s")
    print(f"batch parallel=4                : {n_trees / par:8.1f} trees/s")
    print(f"rule-cache since compile        : {stats['rule_cache_hits']} hits, "
          f"{stats['rule_cache_misses']} misses")
    print(f"nested-relational skeleton cache: {stats.get('nr_skeletons_hits', 0)} hits, "
          f"{stats.get('nr_skeletons_misses', 0)} misses")

    if warm >= cold:
        # Timing is machine/load dependent; report it, but only the
        # deterministic cache invariant below gates the exit code.
        print(f"WARNING: warm path ({warm * 1e3:.2f} ms) did not beat the "
              f"cold path ({cold * 1e3:.2f} ms) on this run", file=sys.stderr)
    recompiled = stats["rule_cache_misses"] != 0
    _write_json(args.json, {
        "bench": "engine-library",
        "smoke": bool(args.smoke),
        "repeat": repeat,
        "trees": n_trees,
        "cold_ms": cold * 1e3,
        "warm_ms": warm * 1e3,
        "speedup": cold / warm,
        "batch_sequential_tps": n_trees / seq,
        "batch_parallel_tps": n_trees / par,
        "rule_cache_hits": stats["rule_cache_hits"],
        "rule_cache_misses": stats["rule_cache_misses"],
        "failure_count": 1 if recompiled else 0,
    })
    if recompiled:
        print("FAIL: warm engine recompiled a content model after compile",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
