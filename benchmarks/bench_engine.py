"""E15 — the engine API: cold compile vs warm cache, and batch throughput.

The engine's contract is that everything derivable from the setting alone is
paid for once (``compile_setting``) and every later request only does
per-tree work.  This file pins that claim down as the perf baseline for
future PRs:

* ``cold``  — the legacy per-call path of a stateless service: every request
  re-parses the DTDs into a fresh setting, so content-model NFAs and
  univocality analyses are recompiled per call;
* ``warm``  — one :class:`repro.ExchangeEngine` serving repeated requests on
  the same compiled setting (cache-stats counters prove the reuse);
* ``batch`` — trees/second of ``certain_answers_batch`` sequentially and
  with a thread pool.

Runs both under pytest-benchmark (like the other E-files) and standalone::

    python benchmarks/bench_engine.py [--smoke]
"""

import argparse
import sys
import time

from repro import ExchangeEngine, certain_answers, check_consistency
from repro.workloads import library


def _cold_request(source, query):
    # What a stateless service does per request: rebuild the setting
    # (library_setting() re-parses both DTDs, so every content-model
    # compilation is lost) before answering.
    setting = library.library_setting()
    check_consistency(setting)
    return certain_answers(setting, source, query)


def _sources(n_trees: int, n_books: int):
    return [library.generate_source(n_books, authors_per_book=2, seed=seed)
            for seed in range(n_trees)]


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #

def test_cold_per_call_certain_answers(benchmark):
    """Legacy per-call path: fresh setting (and NFA compilation) per request."""
    source = library.generate_source(20, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    outcome = benchmark(lambda: _cold_request(source, query))
    assert outcome.has_solution


def test_warm_engine_certain_answers(benchmark):
    """Engine path: the compiled setting is reused across requests."""
    source = library.generate_source(20, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    engine = ExchangeEngine(library.library_setting())
    engine.check_consistency()

    def request():
        engine.check_consistency()
        return engine.certain_answers(source, query)

    result = benchmark(request)
    assert result.ok
    stats = engine.stats
    assert stats["rule_cache_misses"] == 0, "warm engine recompiled an NFA"
    assert stats["rule_cache_hits"] > 0


def test_batch_throughput(benchmark):
    """certain_answers_batch over many trees with a shared compiled setting."""
    engine = ExchangeEngine(library.library_setting())
    sources = _sources(16, n_books=10)
    query = library.query_writer_of("Book-0")
    results = benchmark(lambda: engine.certain_answers_batch(sources, query,
                                                             parallel=4))
    assert all(r.ok for r in results)


# --------------------------------------------------------------------- #
# Standalone runner (no pytest-benchmark dependency)
# --------------------------------------------------------------------- #

def _time(operation, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes, assert the warm path wins")
    parser.add_argument("--repeat", type=int, default=None)
    args = parser.parse_args(argv)
    repeat = args.repeat or (5 if args.smoke else 25)
    n_books = 10 if args.smoke else 50
    n_trees = 8 if args.smoke else 32

    source = library.generate_source(n_books, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")

    cold = _time(lambda: _cold_request(source, query), repeat)

    engine = ExchangeEngine(library.library_setting())
    engine.check_consistency()
    engine.certain_answers(source, query)          # prime every cache
    warm = _time(lambda: (engine.check_consistency(),
                          engine.certain_answers(source, query)), repeat)
    stats = engine.stats

    sources = _sources(n_trees, n_books)
    seq = _time(lambda: engine.certain_answers_batch(sources, query), 3)
    par = _time(lambda: engine.certain_answers_batch(sources, query,
                                                     parallel=4), 3)

    print(f"cold per-call (rebuild setting) : {cold * 1e3:8.2f} ms/request")
    print(f"warm engine (compiled setting)  : {warm * 1e3:8.2f} ms/request "
          f"({cold / warm:4.1f}x)")
    print(f"batch sequential                : {n_trees / seq:8.1f} trees/s")
    print(f"batch parallel=4                : {n_trees / par:8.1f} trees/s")
    print(f"rule-cache since compile        : {stats['rule_cache_hits']} hits, "
          f"{stats['rule_cache_misses']} misses")
    print(f"nested-relational skeleton cache: {stats.get('nr_skeletons_hits', 0)} hits, "
          f"{stats.get('nr_skeletons_misses', 0)} misses")

    if warm >= cold:
        # Timing is machine/load dependent; report it, but only the
        # deterministic cache invariant below gates the exit code.
        print(f"WARNING: warm path ({warm * 1e3:.2f} ms) did not beat the "
              f"cold path ({cold * 1e3:.2f} ms) on this run", file=sys.stderr)
    if stats["rule_cache_misses"] != 0:
        print("FAIL: warm engine recompiled a content model after compile",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
