"""Pattern evaluation: the interpreter vs compiled plans on generated trees.

The PlanCompiler's claim is that lowering a CTQ//,∪ query once into a
slot-based plan and running it over a frozen tree beats re-interpreting the
pattern AST per (query, node).  This bench pins that claim as a perf
baseline of its own, orthogonal to the chase-dominated engine bench:

* ``interpreter_eps`` — evaluations/second of ``Query.answers`` (the
  memoised :class:`~repro.patterns.evaluate.PatternMatcher` oracle);
* ``plan_eps``       — evaluations/second of the *full* plan path, paying
  ``freeze()`` per tree and the plan-cache lookup per query, as a cold
  request would;
* ``plan_warm_eps``  — evaluations/second with frozen trees and compiled
  plans amortised, the steady state of a warm shard.

Exit-code gates are deterministic only: plan/interpreter parity on every
(tree, query) pair and exact plan-cache accounting (one compile per query
fingerprint across repeated passes).  Raw speedups are reported and fed to
``compare_bench.py`` (bench kind ``"patterns"``) against the committed
``benchmarks/BENCH_patterns.json``.

``--selective`` switches to the structural-join bench: synthetic *wide*
trees (thousands of filler nodes, a handful of rare ``shelf → book →
author`` chains) against label-selective and ``//`` queries — the shape
where the sorted-interval join over the pre/post plane seeded from
``nodes_by_label`` should dominate.  Both evaluation strategies are
forced in turn via ``REPRO_EVAL_STRATEGY``; the gates are three-way
bit-identical answers (join / recurrence / interpreter), exact
``plan_join_runs`` / ``plan_recurrence_runs`` accounting, and a ≥10×
join-vs-interpreter speedup (bench kind ``"patterns-selective"``,
committed baseline ``benchmarks/BENCH_patterns_selective.json``).

Run standalone::

    python benchmarks/bench_patterns.py --generated 30 --seed 7 \\
        [--repeat 3] [--json PATH]
    python benchmarks/bench_patterns.py --selective --seed 7 [--json PATH]
"""

import argparse
import json
import os
import random
import sys
import time

from repro import XMLTree
from repro.engine.stats import CacheStats
from repro.generators import scenario_batch
from repro.patterns import (PlanCache, compile_query, descendant, node,
                            pattern_query, union_query)
from repro.workloads.generated import benchmark_workload


def _selective_tree(rng, width):
    """One wide tree: ``width`` filler rows under the root (some with a
    child and attributes, so the interpreter really pays per node) plus a
    few rare shelf → book → author chains — tiny ``nodes_by_label`` seeds
    on a big document."""
    tree = XMLTree("db", ordered=False)
    for index in range(width):
        row = tree.add_child(tree.root, "row")
        tree.set_attribute(row, "k", str(index % 17))
        if index % 3 == 0:
            tree.add_child(row, "cell")
    for shelf_index in range(3):
        shelf = tree.add_child(tree.root, "shelf")
        for book_index in range(2):
            book = tree.add_child(shelf, "book")
            tree.set_attribute(book, "title",
                               f"T{shelf_index}-{book_index}")
            author = tree.add_child(book, "author")
            tree.set_attribute(author, "name", rng.choice("ABC"))
            tree.set_attribute(author, "aff", rng.choice("UV"))
    return tree


def _selective_queries():
    """Label-selective shapes: rooted chains, ``//`` hops, a union of
    mixed-selectivity arms."""
    return [
        pattern_query(node("shelf", None,
                           node("book", {"title": "$t"},
                                node("author", {"name": "$n"})))),
        pattern_query(descendant(node("author", {"name": "$n",
                                                 "aff": "$a"}))),
        pattern_query(node("db", None,
                           descendant(node("book", {"title": "$t"})))),
        union_query(
            pattern_query(descendant(node("author", {"name": "$n"}))),
            pattern_query(node("row", {"k": "$n"}))),
    ]


def _run_selective(args) -> int:
    rng = random.Random(args.seed)
    trees = [_selective_tree(rng, width=1500) for _ in range(6)]
    queries = _selective_queries()
    pairs = [(tree, query) for tree in trees for query in queries]
    n = len(pairs)
    nodes = sum(len(tree) for tree, _ in pairs)
    print(f"selective workload  : {len(trees)} wide trees × "
          f"{len(queries)} queries, {n} pairs, {nodes} tree-node visits "
          f"per pass")

    failures = []

    def timed(operation):
        best = float("inf")
        outcome = None
        for _ in range(args.repeat):
            begun = time.perf_counter()
            outcome = operation()
            best = min(best, time.perf_counter() - begun)
        return best, outcome

    # Plans and freezes amortised: this bench isolates *evaluation*.
    frozen_pairs = [(tree.freeze(), compile_query(query))
                    for tree, query in pairs]

    def forced_pass(strategy, stats):
        previous = os.environ.get("REPRO_EVAL_STRATEGY")
        os.environ["REPRO_EVAL_STRATEGY"] = strategy
        try:
            return [plan.rows(frozen, stats=stats)
                    for frozen, plan in frozen_pairs]
        finally:
            if previous is None:
                del os.environ["REPRO_EVAL_STRATEGY"]
            else:
                os.environ["REPRO_EVAL_STRATEGY"] = previous

    join_stats = CacheStats()
    join_time, join_rows = timed(lambda: forced_pass("join", join_stats))
    recurrence_stats = CacheStats()
    recurrence_time, recurrence_rows = timed(
        lambda: forced_pass("recurrence", recurrence_stats))
    interp_time, interp_answers = timed(
        lambda: [query.answers(tree) for tree, query in pairs])

    interpreter_eps = n / max(interp_time, 1e-9)
    join_eps = n / max(join_time, 1e-9)
    recurrence_eps = n / max(recurrence_time, 1e-9)
    join_speedup = join_eps / interpreter_eps
    print(f"interpreter         : {interpreter_eps:10.1f} evals/s")
    print(f"recurrence (forced) : {recurrence_eps:10.1f} evals/s "
          f"({recurrence_eps / interpreter_eps:5.1f}x)")
    print(f"join (forced)       : {join_eps:10.1f} evals/s "
          f"({join_speedup:5.1f}x)")

    # Gate: *ordered* row parity between the strategies (null allocation
    # downstream rides on row order), answer parity with the interpreter.
    if join_rows != recurrence_rows:
        mismatches = sum(1 for a, b in zip(join_rows, recurrence_rows)
                         if a != b)
        failures.append(f"strategy parity: {mismatches} of {n} pairs "
                        "return different rows under join vs recurrence")
    planned_answers = [
        {tuple(row[slot] for slot in plan.free_slots) for row in rows}
        for rows, (_, plan) in zip(join_rows, frozen_pairs)]
    if planned_answers != interp_answers:  # both in free-variable order
        mismatches = sum(1 for a, b in zip(planned_answers, interp_answers)
                         if a != b)
        failures.append(f"interpreter parity: {mismatches} of {n} pairs "
                        "differ between join rows and the oracle")
    if not failures:
        print(f"parity              : all {n} pairs bit-identical across "
              "join / recurrence / interpreter")

    # Gate: exact strategy accounting — a forced pass moves only its own
    # counter, once per pattern-plan run, every repeat included.
    if join_stats.counts("plan_recurrence_runs") or \
            recurrence_stats.counts("plan_join_runs"):
        failures.append("strategy accounting: a forced pass recorded runs "
                        "under the other strategy's counter")
    joins = join_stats.counts("plan_join_runs")
    recurrences = recurrence_stats.counts("plan_recurrence_runs")
    if joins != recurrences or joins == 0 or joins % args.repeat:
        failures.append(f"strategy accounting: {joins} join runs vs "
                        f"{recurrences} recurrence runs over "
                        f"{args.repeat} identical passes")
    else:
        print(f"strategy accounting : {joins // args.repeat} pattern runs "
              f"per pass, counters exact over {args.repeat} passes")

    # Gate: the tentpole's reason to exist — ≥10× the interpreter on
    # label-selective queries (measured margin is far larger; 10 keeps the
    # gate robust on noisy CI machines).
    if join_speedup < 10.0:
        failures.append(f"join speedup {join_speedup:.1f}x below the 10x "
                        "floor on the selective workload")

    _write_json(args.json, {
        "bench": "patterns-selective",
        "seed": args.seed,
        "trees": len(trees),
        "pairs": n,
        "repeat": args.repeat,
        "interpreter_eps": interpreter_eps,
        "join_eps": join_eps,
        "recurrence_eps": recurrence_eps,
        "join_speedup": join_speedup,
        "plan_join_runs_per_pass": joins // max(args.repeat, 1),
        "failures": failures,
    })
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _write_json(path, report) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"json report         : {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generated", type=int, default=25, metavar="N",
                        help="trees in the heavy benchmark workload "
                             "(default 25)")
    parser.add_argument("--scenarios", type=int, default=20,
                        help="extra light scenarios for parity breadth "
                             "(default 20)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing passes; the best one is reported")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable result file")
    parser.add_argument("--selective", action="store_true",
                        help="run the structural-join bench instead: wide "
                             "trees, label-selective queries, forced "
                             "strategies (bench kind patterns-selective)")
    args = parser.parse_args(argv)
    if args.selective:
        return _run_selective(args)

    started = time.perf_counter()
    # Timing runs on the heavy probe-selected workload (the same generator
    # the engine bench uses — trees of hundreds of nodes, where matching
    # loops dominate); a batch of light scenarios rides along for parity
    # breadth across query shapes.
    workload = benchmark_workload(args.seed, args.generated)
    pairs = [(tree, query)
             for tree in workload.source_trees
             for query in workload.queries]
    for scenario in scenario_batch(args.scenarios, seed=args.seed):
        pairs.extend((tree, query)
                     for tree in scenario.source_trees
                     for query in scenario.queries)
    n = len(pairs)
    nodes = sum(len(tree) for tree, _ in pairs)
    print(f"workload            : {args.generated} heavy trees + "
          f"{args.scenarios} light scenarios, {n} (tree, query) pairs, "
          f"{nodes} tree-node visits per pass "
          f"(generated in {time.perf_counter() - started:.2f} s)")

    failures = []

    def timed(operation):
        best = float("inf")
        outcome = None
        for _ in range(args.repeat):
            begun = time.perf_counter()
            outcome = operation()
            best = min(best, time.perf_counter() - begun)
        return best, outcome

    # Interpreter oracle: memoised PatternMatcher per call.
    interp_time, interp_answers = timed(
        lambda: [query.answers(tree) for tree, query in pairs])

    # Cold plan path: freeze per tree, plan-cache lookup per query — what a
    # request pays on a warm shard serving a fresh tree.
    cache = PlanCache()

    def plan_pass():
        return [cache.get(query).answers(tree.freeze())
                for tree, query in pairs]

    plan_time, plan_answers = timed(plan_pass)

    # Warm plan path: frozen trees + compiled plans amortised.
    frozen_pairs = [(tree.freeze(), compile_query(query))
                    for tree, query in pairs]
    warm_time, warm_answers = timed(
        lambda: [plan.answers(frozen) for frozen, plan in frozen_pairs])

    interpreter_eps = n / max(interp_time, 1e-9)
    plan_eps = n / max(plan_time, 1e-9)
    plan_warm_eps = n / max(warm_time, 1e-9)
    print(f"interpreter         : {interpreter_eps:10.1f} evals/s")
    print(f"plan (freeze+eval)  : {plan_eps:10.1f} evals/s "
          f"({plan_eps / interpreter_eps:4.1f}x)")
    print(f"plan (warm)         : {plan_warm_eps:10.1f} evals/s "
          f"({plan_warm_eps / interpreter_eps:4.1f}x)")

    # Gate: parity on every pair, across all three paths.
    if not (interp_answers == plan_answers == warm_answers):
        mismatches = sum(1 for a, b, c in zip(interp_answers, plan_answers,
                                              warm_answers)
                         if not (a == b == c))
        failures.append(f"parity: {mismatches} of {n} (tree, query) pairs "
                        f"differ between interpreter and plan")
    else:
        print(f"parity              : all {n} pairs equal across "
              f"interpreter / plan / warm plan")

    # Gate: exact plan-cache accounting — one compile per distinct query
    # fingerprint over `repeat` identical passes, everything else hits.
    distinct = len({query.fingerprint() for _, query in pairs})
    if cache.misses != distinct:
        failures.append(f"plan cache: {cache.misses} compiles for "
                        f"{distinct} distinct queries")
    expected_hits = args.repeat * n - distinct
    if cache.hits != expected_hits:
        failures.append(f"plan cache: {cache.hits} hits, expected "
                        f"{expected_hits}")
    else:
        print(f"plan cache          : {distinct} compiles, "
              f"{cache.hits} hits over {args.repeat} passes")

    if plan_warm_eps <= interpreter_eps:
        # Machine-dependent: report loudly, gate on parity only.
        print(f"WARNING: warm plans ({plan_warm_eps:.1f} evals/s) did not "
              f"beat the interpreter ({interpreter_eps:.1f} evals/s) on "
              f"this run", file=sys.stderr)

    _write_json(args.json, {
        "bench": "patterns",
        "seed": args.seed,
        "trees": args.generated,
        "scenarios": args.scenarios,
        "pairs": n,
        "repeat": args.repeat,
        "interpreter_eps": interpreter_eps,
        "plan_eps": plan_eps,
        "plan_warm_eps": plan_warm_eps,
        "plan_speedup": plan_warm_eps / interpreter_eps,
        "plan_cache_misses": cache.misses,
        "plan_cache_hits": cache.hits,
        "failures": failures,
    })
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
