"""Pattern evaluation: the interpreter vs compiled plans on generated trees.

The PlanCompiler's claim is that lowering a CTQ//,∪ query once into a
slot-based plan and running it over a frozen tree beats re-interpreting the
pattern AST per (query, node).  This bench pins that claim as a perf
baseline of its own, orthogonal to the chase-dominated engine bench:

* ``interpreter_eps`` — evaluations/second of ``Query.answers`` (the
  memoised :class:`~repro.patterns.evaluate.PatternMatcher` oracle);
* ``plan_eps``       — evaluations/second of the *full* plan path, paying
  ``freeze()`` per tree and the plan-cache lookup per query, as a cold
  request would;
* ``plan_warm_eps``  — evaluations/second with frozen trees and compiled
  plans amortised, the steady state of a warm shard.

Exit-code gates are deterministic only: plan/interpreter parity on every
(tree, query) pair and exact plan-cache accounting (one compile per query
fingerprint across repeated passes).  Raw speedups are reported and fed to
``compare_bench.py`` (bench kind ``"patterns"``) against the committed
``benchmarks/BENCH_patterns.json``.

Run standalone::

    python benchmarks/bench_patterns.py --generated 30 --seed 7 \\
        [--repeat 3] [--json PATH]
"""

import argparse
import json
import sys
import time

from repro.generators import scenario_batch
from repro.patterns import PlanCache, compile_query
from repro.workloads.generated import benchmark_workload


def _write_json(path, report) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"json report         : {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generated", type=int, default=25, metavar="N",
                        help="trees in the heavy benchmark workload "
                             "(default 25)")
    parser.add_argument("--scenarios", type=int, default=20,
                        help="extra light scenarios for parity breadth "
                             "(default 20)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing passes; the best one is reported")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable result file")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    # Timing runs on the heavy probe-selected workload (the same generator
    # the engine bench uses — trees of hundreds of nodes, where matching
    # loops dominate); a batch of light scenarios rides along for parity
    # breadth across query shapes.
    workload = benchmark_workload(args.seed, args.generated)
    pairs = [(tree, query)
             for tree in workload.source_trees
             for query in workload.queries]
    for scenario in scenario_batch(args.scenarios, seed=args.seed):
        pairs.extend((tree, query)
                     for tree in scenario.source_trees
                     for query in scenario.queries)
    n = len(pairs)
    nodes = sum(len(tree) for tree, _ in pairs)
    print(f"workload            : {args.generated} heavy trees + "
          f"{args.scenarios} light scenarios, {n} (tree, query) pairs, "
          f"{nodes} tree-node visits per pass "
          f"(generated in {time.perf_counter() - started:.2f} s)")

    failures = []

    def timed(operation):
        best = float("inf")
        outcome = None
        for _ in range(args.repeat):
            begun = time.perf_counter()
            outcome = operation()
            best = min(best, time.perf_counter() - begun)
        return best, outcome

    # Interpreter oracle: memoised PatternMatcher per call.
    interp_time, interp_answers = timed(
        lambda: [query.answers(tree) for tree, query in pairs])

    # Cold plan path: freeze per tree, plan-cache lookup per query — what a
    # request pays on a warm shard serving a fresh tree.
    cache = PlanCache()

    def plan_pass():
        return [cache.get(query).answers(tree.freeze())
                for tree, query in pairs]

    plan_time, plan_answers = timed(plan_pass)

    # Warm plan path: frozen trees + compiled plans amortised.
    frozen_pairs = [(tree.freeze(), compile_query(query))
                    for tree, query in pairs]
    warm_time, warm_answers = timed(
        lambda: [plan.answers(frozen) for frozen, plan in frozen_pairs])

    interpreter_eps = n / max(interp_time, 1e-9)
    plan_eps = n / max(plan_time, 1e-9)
    plan_warm_eps = n / max(warm_time, 1e-9)
    print(f"interpreter         : {interpreter_eps:10.1f} evals/s")
    print(f"plan (freeze+eval)  : {plan_eps:10.1f} evals/s "
          f"({plan_eps / interpreter_eps:4.1f}x)")
    print(f"plan (warm)         : {plan_warm_eps:10.1f} evals/s "
          f"({plan_warm_eps / interpreter_eps:4.1f}x)")

    # Gate: parity on every pair, across all three paths.
    if not (interp_answers == plan_answers == warm_answers):
        mismatches = sum(1 for a, b, c in zip(interp_answers, plan_answers,
                                              warm_answers)
                         if not (a == b == c))
        failures.append(f"parity: {mismatches} of {n} (tree, query) pairs "
                        f"differ between interpreter and plan")
    else:
        print(f"parity              : all {n} pairs equal across "
              f"interpreter / plan / warm plan")

    # Gate: exact plan-cache accounting — one compile per distinct query
    # fingerprint over `repeat` identical passes, everything else hits.
    distinct = len({query.fingerprint() for _, query in pairs})
    if cache.misses != distinct:
        failures.append(f"plan cache: {cache.misses} compiles for "
                        f"{distinct} distinct queries")
    expected_hits = args.repeat * n - distinct
    if cache.hits != expected_hits:
        failures.append(f"plan cache: {cache.hits} hits, expected "
                        f"{expected_hits}")
    else:
        print(f"plan cache          : {distinct} compiles, "
              f"{cache.hits} hits over {args.repeat} passes")

    if plan_warm_eps <= interpreter_eps:
        # Machine-dependent: report loudly, gate on parity only.
        print(f"WARNING: warm plans ({plan_warm_eps:.1f} evals/s) did not "
              f"beat the interpreter ({interpreter_eps:.1f} evals/s) on "
              f"this run", file=sys.stderr)

    _write_json(args.json, {
        "bench": "patterns",
        "seed": args.seed,
        "trees": args.generated,
        "scenarios": args.scenarios,
        "pairs": n,
        "repeat": args.repeat,
        "interpreter_eps": interpreter_eps,
        "plan_eps": plan_eps,
        "plan_warm_eps": plan_warm_eps,
        "plan_speedup": plan_warm_eps / interpreter_eps,
        "plan_cache_misses": cache.misses,
        "plan_cache_hits": cache.hits,
        "failures": failures,
    })
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
