"""ReproStore: corpus ingest, fingerprint-addressed reads, plan-warm restarts.

The storage layer's claim is that a corpus ingested once serves forever:
documents live on disk in the columnar pre/post encoding, requests address
them by fingerprint instead of re-uploading trees, and a restarted process
answers its first request plan-warm.  This bench pins the claim as a perf
baseline of its own, orthogonal to the chase-dominated engine bench:

* ``ingest_dps``  — documents/second through chunked bulk ingest
  (``put_trees`` into a fresh on-disk store, fsync-per-chunk included);
* ``read_dps``    — documents/second rebuilt from a *cold* read-only
  handle (mmap read + columnar decode + thaw, no LRU help);
* ``fp_eps``      — certain-answers evaluations/second with every request
  fingerprint-addressed against the store, the steady state of a shard
  serving a stored corpus.

Exit-code gates are deterministic only: fingerprint-addressed answers are
bit-identical to inline-tree answers on every (document, query) pair,
store counters account exactly (zero misses on a fully resolved pass, a
typed ``UnknownDocumentError`` on an absent fingerprint), and a fresh
registry restored from the store is plan-warm (``prewarm_hits``, zero
``compiled_misses``).  Raw throughputs are reported and fed to
``compare_bench.py`` (bench kind ``"storage"``) against the committed
``benchmarks/BENCH_storage.json``.

Run standalone::

    python benchmarks/bench_storage.py --generated 25 --seed 7 \\
        [--repeat 3] [--json PATH]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import ExchangeEngine, compile_setting
from repro.service import SettingRegistry
from repro.storage import CorpusStore, UnknownDocumentError
from repro.workloads.generated import benchmark_workload


def _write_json(path, report) -> None:
    if not path:
        return
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"json report         : {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generated", type=int, default=25, metavar="N",
                        help="trees in the benchmark corpus (default 25)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeat", type=int, default=3,
                        help="timing passes; the best one is reported")
    parser.add_argument("--chunk-docs", type=int, default=8,
                        help="ingest chunk size (default 8: several "
                             "fsync'd commits per pass)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable result file")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    workload = benchmark_workload(args.seed, args.generated)
    trees = workload.source_trees
    queries = workload.queries
    compiled = compile_setting(workload.setting)
    nodes = sum(len(tree) for tree in trees)
    print(f"corpus              : {len(trees)} trees, {nodes} nodes, "
          f"{len(queries)} queries "
          f"(generated in {time.perf_counter() - started:.2f} s)")

    failures = []

    def timed(operation):
        best = float("inf")
        outcome = None
        for _ in range(args.repeat):
            begun = time.perf_counter()
            outcome = operation()
            best = min(best, time.perf_counter() - begun)
        return best, outcome

    with tempfile.TemporaryDirectory() as tmp:
        # ------------------------------------------------------------- #
        # Ingest: a fresh store per pass — re-ingesting the same corpus
        # would dedup by fingerprint and measure nothing.
        # ------------------------------------------------------------- #
        counter = iter(range(args.repeat))

        def ingest_pass():
            path = Path(tmp) / f"ingest-{next(counter)}"
            with CorpusStore(path, chunk_docs=args.chunk_docs) as store:
                return path, store.put_trees(trees)

        ingest_time, (store_path, fingerprints) = timed(ingest_pass)
        ingest_dps = len(trees) / max(ingest_time, 1e-9)

        with CorpusStore(store_path, read_only=True) as store:
            summary = store.summary()
        data_bytes = summary["store_data_bytes"]
        bytes_per_node = data_bytes / max(nodes, 1)
        print(f"ingest              : {ingest_dps:10.1f} docs/s "
              f"({data_bytes} heap bytes, {bytes_per_node:.1f} B/node, "
              f"chunk_docs={args.chunk_docs})")
        if summary["store_documents"] != len(trees):
            failures.append(
                f"catalog: {summary['store_documents']} documents after "
                f"ingesting {len(trees)} trees")

        # ------------------------------------------------------------- #
        # Cold reads: a fresh read-only handle per pass, so every load
        # pays mmap read + columnar decode + thaw.
        # ------------------------------------------------------------- #
        def read_pass():
            with CorpusStore(store_path, read_only=True) as reader:
                loaded = [reader.load_tree(fp) for fp in fingerprints]
            return loaded

        read_time, loaded = timed(read_pass)
        read_dps = len(trees) / max(read_time, 1e-9)
        print(f"cold read           : {read_dps:10.1f} docs/s")
        if [tree.fingerprint() for tree in loaded] != fingerprints:
            failures.append("cold read: reloaded fingerprints drifted "
                            "from the ingested ones")

        # ------------------------------------------------------------- #
        # Fingerprint-addressed serving: every request carries a
        # fingerprint; the engine resolves it against the store.  A fresh
        # engine + handle per pass keeps the result cache out of the
        # timing (this measures resolution + evaluation, not memoisation).
        # ------------------------------------------------------------- #
        query = queries[0]

        def fp_pass():
            engine = ExchangeEngine(compiled, result_cache=False)
            engine.attach_store(CorpusStore(store_path, read_only=True))
            return engine, [engine.certain_answers(fp, query).payload
                            for fp in fingerprints]

        fp_time, (engine, fp_answers) = timed(fp_pass)
        fp_eps = len(trees) / max(fp_time, 1e-9)
        print(f"fp-addressed eval   : {fp_eps:10.1f} evals/s")

        # Gate: fingerprint-addressed answers == inline-tree answers.
        oracle = ExchangeEngine(compiled, result_cache=False)
        inline_answers = [oracle.certain_answers(tree, query).payload
                          for tree in trees]
        if fp_answers != inline_answers:
            mismatches = sum(1 for a, b in zip(fp_answers, inline_answers)
                             if a != b)
            failures.append(f"parity: {mismatches} of {len(trees)} "
                            f"documents answer differently by fingerprint "
                            f"than inline")
        else:
            print(f"parity              : all {len(trees)} documents equal "
                  f"fp-addressed vs inline")

        # Gate: exact store accounting — a fully resolved pass has zero
        # misses, and an absent fingerprint is a typed error.
        stats = engine.stats_summary()
        if stats.store_misses != 0 or stats.store_hits < len(trees):
            failures.append(f"counters: store_hits={stats.store_hits} "
                            f"store_misses={stats.store_misses} after a "
                            f"fully resolved pass over {len(trees)} docs")
        try:
            engine.certain_answers("ab" * 32, query)
        except UnknownDocumentError as error:
            if error.fingerprint != "ab" * 32:
                failures.append("typed miss lost the fingerprint")
        else:
            failures.append("absent fingerprint did not raise "
                            "UnknownDocumentError")

        # ------------------------------------------------------------- #
        # Gate: plan-warm restart — persist the compiled setting, restore
        # into a fresh registry, first request compiles nothing.
        # ------------------------------------------------------------- #
        with CorpusStore(store_path) as writer:
            writer.put_setting(compiled, prewarm=True)
        registry = SettingRegistry(store=CorpusStore(store_path,
                                                     read_only=True))
        restored = registry.restore_from_store()
        answers = registry.shard(restored[0]).engine.certain_answers(
            fingerprints[0], query)
        registry_stats = registry.stats()
        if (registry_stats["compiled_misses"] != 0
                or registry_stats["prewarm_hits"] < 1):
            failures.append(
                f"restart: compiled_misses="
                f"{registry_stats['compiled_misses']} prewarm_hits="
                f"{registry_stats['prewarm_hits']} after restore")
        elif answers.payload != inline_answers[0]:
            failures.append("restart: restored registry answered "
                            "differently than the oracle")
        else:
            print(f"plan-warm restart   : {len(restored)} setting(s) "
                  f"restored, first request compiled nothing")

    _write_json(args.json, {
        "bench": "storage",
        "seed": args.seed,
        "trees": len(trees),
        "nodes": nodes,
        "repeat": args.repeat,
        "chunk_docs": args.chunk_docs,
        "ingest_dps": ingest_dps,
        "read_dps": read_dps,
        "fp_eps": fp_eps,
        "store_data_bytes": data_bytes,
        "bytes_per_node": bytes_per_node,
        "failures": failures,
    })
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
