"""E7 — Propositions 5.2 / 5.3: permutation languages and sibling reordering.

For a *fixed* content model the paper proves π(r) membership is polynomial in
|w| (Proposition 5.3) and reordering an unordered tree is polynomial
(Proposition 5.2); the series below should grow mildly with |w|.
"""

import pytest

from repro.exchange.ordering import order_word
from repro.regexlang import (in_permutation_language, parse_regex,
                             regex_to_nfa, semilinear_of)
from repro.xmlmodel import DTD, XMLTree
from repro.exchange import order_tree

_FIXED_REGEX = parse_regex("(a b)* c? (d e f)*")
_FIXED_SEMILINEAR = semilinear_of(_FIXED_REGEX)
_FIXED_NFA = regex_to_nfa(_FIXED_REGEX)


def _word(repeats: int):
    return (["a", "b"] * repeats) + ["c"] + (["d", "e", "f"] * repeats)


@pytest.mark.parametrize("repeats", [2, 8, 32])
def test_pi_membership_fixed_regex(benchmark, repeats):
    word = list(reversed(_word(repeats)))  # a permutation of an accepted word
    result = benchmark(lambda: in_permutation_language(word, _FIXED_REGEX,
                                                       _FIXED_SEMILINEAR))
    assert result is True


@pytest.mark.parametrize("repeats", [2, 8, 32])
def test_pi_non_membership_fixed_regex(benchmark, repeats):
    word = _word(repeats) + ["a"]  # one unbalanced `a`
    result = benchmark(lambda: in_permutation_language(word, _FIXED_REGEX,
                                                       _FIXED_SEMILINEAR))
    assert result is False


@pytest.mark.parametrize("repeats", [2, 8, 32])
def test_order_word_fixed_regex(benchmark, repeats):
    counts = {"a": repeats, "b": repeats, "c": 1,
              "d": repeats, "e": repeats, "f": repeats}
    word = benchmark(lambda: order_word(counts, _FIXED_NFA))
    assert word is not None and _FIXED_NFA.accepts(word)


@pytest.mark.parametrize("width", [4, 16, 48])
def test_order_tree_scaling(benchmark, width):
    dtd = DTD("r", {"r": "(B C)*", "B": "", "C": ""})
    tree = XMLTree("r", ordered=False)
    for _ in range(width):
        tree.add_child(tree.root, "B")
    for _ in range(width):
        tree.add_child(tree.root, "C")
    ordered = benchmark(lambda: order_tree(tree, dtd))
    assert dtd.conforms(ordered, ordered=True)
