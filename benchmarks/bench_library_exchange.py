"""E1 — Figures 1/2: the book→writer exchange at increasing source sizes.

Regenerates the paper's running example and measures the full tractable
pipeline (canonical pre-solution → chase → query evaluation).  The paper's
claim (Theorem 6.2 / Corollary 6.11) is that the pipeline is polynomial in the
source size; the reported series should therefore grow roughly linearly with
the number of (book, author) pairs.
"""

import pytest

from repro.exchange import canonical_solution, certain_answers
from repro.workloads import library


@pytest.mark.parametrize("n_books", [5, 20, 50])
def test_canonical_solution_scaling(benchmark, n_books):
    setting = library.library_setting()
    source = library.generate_source(n_books, authors_per_book=2, seed=1)

    result = benchmark(lambda: canonical_solution(setting, source))
    assert result.success
    # One writer subtree per (book, author) pair.
    assert len(result.tree.children(result.tree.root)) == 2 * n_books


@pytest.mark.parametrize("n_books", [5, 20, 50])
def test_certain_answers_scaling(benchmark, n_books):
    setting = library.library_setting()
    source = library.generate_source(n_books, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")

    outcome = benchmark(lambda: certain_answers(setting, source, query))
    assert outcome.has_solution
    assert len(outcome.answers) == 2


def test_figure_1_2_exact_reproduction(benchmark):
    """The exact Figure 1 (b) → Figure 2 (b) exchange."""
    setting = library.library_setting()
    source = library.figure_1_source()

    result = benchmark(lambda: canonical_solution(setting, source))
    labels = result.tree.children_labels(result.tree.root)
    assert labels == ["writer"] * 3
