"""E12 / E14 — Corollary 6.11: Clio-style tractable query answering at scale.

The certain-answer pipeline over nested-relational (univocal) target DTDs is
polynomial; both series below (company scenario and the synthetic scaling
setting) should grow smoothly with the source size.
"""

import pytest

from repro.exchange import canonical_solution, certain_answers, order_tree
from repro.workloads import nested_relational as nr


@pytest.mark.parametrize("n_departments", [2, 6, 12])
def test_company_exchange_scaling(benchmark, n_departments):
    setting = nr.company_setting()
    source = nr.generate_company_source(n_departments, employees_per_dept=3,
                                        projects_per_dept=2, seed=5)

    result = benchmark(lambda: canonical_solution(setting, source))
    assert result.success
    persons = [c for c in result.tree.children(result.tree.root)
               if result.tree.label(c) == "person"]
    assert len(persons) == 3 * n_departments


@pytest.mark.parametrize("n_departments", [2, 6, 12])
def test_company_certain_answers_scaling(benchmark, n_departments):
    setting = nr.company_setting()
    source = nr.generate_company_source(n_departments, employees_per_dept=3,
                                        projects_per_dept=2, seed=5)
    query = nr.query_projects_of("Dept-0")

    outcome = benchmark(lambda: certain_answers(setting, source, query))
    assert outcome.has_solution and len(outcome.answers) == 2


@pytest.mark.parametrize("fanout", [2, 4, 8])
def test_synthetic_scaling_setting(benchmark, fanout):
    setting = nr.scaling_setting(2, branching=2, n_stds=4)
    source = nr.scaling_source(setting, fanout=fanout)

    def pipeline():
        result = canonical_solution(setting, source)
        ordered = order_tree(result.tree, setting.target_dtd)
        return result, ordered

    result, ordered = benchmark(pipeline)
    assert result.success
    assert setting.target_dtd.conforms(ordered)
