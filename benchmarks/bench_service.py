"""E16 — the serving layer: mixed-setting traffic through one async service.

Drives generated traffic for **several distinct settings** through a single
:class:`repro.service.AsyncExchangeService` and reports what a serving
deployment cares about: request throughput, await-side latency percentiles,
result-cache and compiled-shard hit rates — plus deterministic gates:

* **multi-setting**  — the workload must span >= 2 distinct fingerprints;
* **parity**         — every service answer must equal a serial, per-setting
  :class:`repro.ExchangeEngine` run of the same request (the serving layer
  may never change payloads);
* **isolation/eviction** — a small per-setting ``result_cache_maxsize``
  must produce evictions on a repeat pass while leaving payloads unchanged;
* **routing**        — no request may be served by a shard other than its
  fingerprint's.

Two further traffic modes exercise the governed-serving guarantees:

* ``--pipeline`` — drives a slow-first, fast-behind request stream over one
  live JSON-lines connection twice: once **pipelined** (all requests on the
  wire up front, replies collected in completion order) and once
  **serialized** (send → wait → send, the arrival-order schedule an
  un-pipelined server forces).  Latency is measured from workload start, so
  the serialized pass charges every fast request for the slow one blocking
  the line.  Gates: pipelined p99 strictly beats serialized p99, and every
  payload matches a direct :class:`~repro.ExchangeEngine` run.
* ``--quota`` — replays an over-quota same-setting batch under
  ``QuotaPolicy(max_in_flight=N)`` several times.  Gates: the rejection
  pattern is identical on every run (admission is deterministic, in
  submission order), rejected slots carry ``QuotaExceededError`` and
  nothing else, admitted neighbours match direct engine results, and all
  in-flight slots drain back to zero.
* ``--workers K`` — the shard-host mode: the same mixed traffic through
  ``executor="host"`` at 1 and at K worker processes, result caches off so
  every repeat pays real compute.  Gates: both passes are **bit-identical**
  to the single-process serial oracle (the parity check compares the exact
  ``(ok, payload)`` views, not summaries), every worker owns at least one
  fingerprint (a scaling claim over an idle worker would be vacuous), no
  worker restarted mid-bench, and — on machines with >= 2 cores — the
  K-worker pass clears ``--scale-min`` (default 1.6x) the 1-worker
  throughput.  On a single-core machine the scaling gate prints a skip
  note and does not fail: there is no parallel hardware to measure.

Usage::

    python benchmarks/bench_service.py --generated 8 --seed 7 \\
        [--settings 3] [--executor thread] [--parallel 4] \\
        [--maxsize 2] [--pipeline] [--quota] [--workers 2] [--json PATH]

``--generated N`` sizes the per-setting request stream (N certain-answers
requests plus one consistency request per setting, interleaved across
settings into one mixed batch).  ``--json PATH`` writes the full report as
machine-readable JSON — the ``BENCH_*.json`` perf-trajectory artifact
(``benchmarks/compare_bench.py`` diffs fresh runs against the committed
baseline; ``--pipeline``/``--quota``/``--workers`` sections are
informational, not baselined — the workers mode gates in-run instead,
because its scaling ratio is relative to the same machine and run).
"""

import argparse
import asyncio
import json
import math
import os
import sys
import time

from repro import ExchangeEngine
from repro.service import (AsyncExchangeService, QuotaExceededError,
                           QuotaPolicy, SettingRegistry,
                           certain_answers_request, consistency_request)
from repro.service.client import ServiceClient
from repro.service.protocol import tree_to_wire
from repro.service.server import serve_in_background
from repro.workloads import library
from repro.workloads.generated import generated_scenarios


def percentile(samples, q):
    """The q-th percentile (0..100) of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def build_traffic(scenarios, per_setting):
    """One consistency + ``per_setting`` certain-answers requests per
    scenario, interleaved round-robin into a mixed-setting stream."""
    per_scenario = []
    for scenario in scenarios:
        fingerprint = scenario.setting.fingerprint()
        stream = [consistency_request(fingerprint)]
        trees, queries = scenario.source_trees, scenario.queries
        for index in range(per_setting):
            stream.append(certain_answers_request(
                fingerprint, trees[index % len(trees)],
                queries[index % len(queries)]))
        per_scenario.append(stream)
    mixed = []
    for position in range(max(len(stream) for stream in per_scenario)):
        for stream in per_scenario:
            if position < len(stream):
                mixed.append(stream[position])
    return mixed


def serial_reference(scenarios, requests):
    """The parity baseline: each request served by a fresh, serial,
    per-setting engine — no service, no router, no shared state."""
    engines = {}
    for scenario in scenarios:
        engines[scenario.setting.fingerprint()] = \
            ExchangeEngine(scenario.setting)
    reference = []
    for request in requests:
        engine = engines[request.fingerprint]
        if request.op == "consistency":
            result = engine.check_consistency(request.strategy)
        else:
            result = engine.certain_answers(request.tree, request.query,
                                            request.variable_order)
        reference.append((result.ok, result.payload))
    return reference


async def run_service(args, requests):
    """The measured passes on one service: batch, warm gather, stats."""
    service = AsyncExchangeService(executor=args.executor,
                                   parallel=args.parallel)
    async with service:
        for scenario in args.scenarios:
            service.register(scenario.setting)

        begun = time.perf_counter()
        slots = await service.batch(requests)
        batch_elapsed = time.perf_counter() - begun

        # Warm per-request latencies: each request awaited individually
        # (concurrently), timed from the await side.
        async def timed(request):
            started = time.perf_counter()
            await service.submit(request)
            return time.perf_counter() - started

        begun = time.perf_counter()
        latencies = await asyncio.gather(*(timed(r) for r in requests))
        gather_elapsed = time.perf_counter() - begun
        stats = service.stats()
    return slots, batch_elapsed, latencies, gather_elapsed, stats


async def run_eviction_pass(args, requests):
    """Repeat the stream under a tiny per-setting cache: payloads must hold
    and the bounded caches must actually evict."""
    service = AsyncExchangeService(executor=args.executor,
                                   parallel=args.parallel,
                                   result_cache_maxsize=args.maxsize)
    async with service:
        for scenario in args.scenarios:
            service.register(scenario.setting)
        first = await service.batch(requests)
        second = await service.batch(requests)
        stats = service.stats()
    evictions = sum(shard["result_cache_evictions"]
                    for shard in stats["shards"].values())
    views = [[(slot.ok, slot.result.payload if slot.result else None)
              for slot in pass_] for pass_ in (first, second)]
    return views, evictions, stats


def build_pipeline_stream(fingerprint, slow_tree, fast_count):
    """One slow solve *first*, ``fast_count`` cheap consistency requests
    behind it — the pathological stream for an arrival-order server."""
    stream = [{"op": "solve", "fingerprint": fingerprint,
               "tree": tree_to_wire(slow_tree)}]
    stream += [{"op": "consistency", "fingerprint": fingerprint}
               for _ in range(fast_count)]
    return stream


def run_pipeline_mode(args):
    """The --pipeline gate: completion-order replies must beat the
    arrival-order schedule on slow-first interleaved traffic."""
    setting = library.library_setting()
    fingerprint = setting.fingerprint()
    slow_tree = library.generate_source(args.slow_books, authors_per_book=3,
                                        seed=args.seed)
    stream = build_pipeline_stream(fingerprint, slow_tree, args.fast)
    direct = ExchangeEngine(setting)
    expected_consistent = direct.check_consistency().payload
    expected_solution = direct.solve(slow_tree).payload

    def run_pass(pipelined):
        """Boot a fresh, identically-warmed server; replay the stream."""
        port, _, join = serve_in_background(executor=args.executor,
                                            parallel=args.parallel)
        with ServiceClient("127.0.0.1", port, timeout=300.0) as client:
            assert client.register(setting, prewarm=True) == fingerprint
            client.check_consistency(fingerprint)   # warm the fast path
            begun = time.perf_counter()
            if pipelined:
                ids = [client.submit(message) for message in stream]
                order, latencies, replies = [], {}, {}
                while client.pending():
                    request_id, reply = client.collect_any()
                    latencies[request_id] = time.perf_counter() - begun
                    order.append(request_id)
                    replies[request_id] = reply
                latencies = [latencies[i] for i in ids]
                replies = [replies[i] for i in ids]
                completion = [ids.index(i) for i in order]
            else:
                latencies, replies = [], []
                for message in stream:
                    reply = client.collect(client.submit(message),
                                           raise_errors=False)
                    latencies.append(time.perf_counter() - begun)
                    replies.append(reply)
                completion = list(range(len(stream)))
            elapsed = time.perf_counter() - begun
            client.shutdown()
        join()
        return latencies, replies, completion, elapsed

    failures = []
    serialized_lat, serialized_replies, _, serialized_elapsed = \
        run_pass(pipelined=False)
    pipelined_lat, pipelined_replies, completion, pipelined_elapsed = \
        run_pass(pipelined=True)

    for label, replies in (("serialized", serialized_replies),
                           ("pipelined", pipelined_replies)):
        bad = [reply for reply in replies if not reply.get("ok")]
        if bad:
            failures.append(f"pipeline/{label}: {len(bad)} request(s) "
                            f"failed: {bad[0]}")
            continue
        if any(reply["consistent"] is not expected_consistent
               for reply in replies[1:]):
            failures.append(f"pipeline/{label}: consistency parity broken")
        solution = replies[0].get("solution")
        if solution is None or not expected_solution.equals(
                _tree_from_wire(solution), respect_order=False):
            failures.append(f"pipeline/{label}: solve parity broken")

    p99 = {"pipelined": percentile(pipelined_lat, 99) * 1e3,
           "serialized": percentile(serialized_lat, 99) * 1e3}
    p50 = {"pipelined": percentile(pipelined_lat, 50) * 1e3,
           "serialized": percentile(serialized_lat, 50) * 1e3}
    overtakes = sum(1 for position, submitted
                    in enumerate(completion) if submitted > position)
    print(f"pipeline mode       : 1 slow solve ({args.slow_books} books) + "
          f"{args.fast} fast requests on one connection")
    print(f"  serialized        : p50 {p50['serialized']:8.2f} ms   "
          f"p99 {p99['serialized']:8.2f} ms   "
          f"({serialized_elapsed * 1e3:.1f} ms total)")
    print(f"  pipelined         : p50 {p50['pipelined']:8.2f} ms   "
          f"p99 {p99['pipelined']:8.2f} ms   "
          f"({pipelined_elapsed * 1e3:.1f} ms total, "
          f"{overtakes} replies overtook)")
    if not p99["pipelined"] < p99["serialized"]:
        failures.append(
            f"pipeline: pipelined p99 {p99['pipelined']:.2f} ms is not "
            f"strictly better than serialized p99 "
            f"{p99['serialized']:.2f} ms")
    if completion and completion[0] == 0:
        failures.append("pipeline: the slow request still completed first — "
                        "replies were not written in completion order")
    return {"slow_books": args.slow_books, "fast_requests": args.fast,
            "p50_ms": p50, "p99_ms": p99,
            "serialized_elapsed_s": serialized_elapsed,
            "pipelined_elapsed_s": pipelined_elapsed,
            "overtaking_replies": overtakes}, failures


def _tree_from_wire(wire):
    from repro.service.protocol import tree_from_wire
    return tree_from_wire(wire, ordered=False)


def run_quota_mode(args):
    """The --quota gate: deterministic, typed, neighbour-safe rejections."""
    scenario = generated_scenarios(1, args.seed)[0]
    setting = scenario.setting
    fingerprint = setting.fingerprint()
    tree, query = scenario.source_trees[0], scenario.queries[0]
    direct = ExchangeEngine(setting)
    expected = direct.certain_answers(tree, query).payload
    total = args.quota_batch
    limit = args.max_in_flight

    async def replay():
        service = AsyncExchangeService(
            executor=args.executor, parallel=args.parallel,
            quota=QuotaPolicy(max_in_flight=limit))
        async with service:
            service.register(setting)
            requests = [certain_answers_request(fingerprint, tree, query)
                        for _ in range(total)]
            patterns = []
            for _ in range(args.quota_repeats):
                slots = await service.batch(requests)
                patterns.append([slot.rejected for slot in slots])
                for slot in slots:
                    if slot.rejected:
                        if not isinstance(slot.error, QuotaExceededError):
                            return patterns, "rejection is not typed", None
                    elif not slot.ok or slot.result.payload != expected:
                        return patterns, "admitted neighbour corrupted", None
            # Await-side: over-quota single submits reject as exceptions.
            outcomes = await asyncio.gather(
                *(service.certain_answers(fingerprint, tree, query)
                  for _ in range(limit + 1)),
                return_exceptions=True)
            stats = service.stats()
        return patterns, None, (outcomes, stats)

    patterns, error, extra = asyncio.run(replay())
    failures = []
    if error:
        failures.append(f"quota: {error}")
    expected_pattern = [False] * limit + [True] * (total - limit)
    if any(pattern != expected_pattern for pattern in patterns):
        failures.append(f"quota: rejection pattern is not deterministic "
                        f"in submission order: {patterns}")
    rejected = sum(sum(pattern) for pattern in patterns)
    print(f"quota mode          : max_in_flight={limit}, "
          f"{total}-request batch x{args.quota_repeats}: "
          f"{rejected} deterministic rejections "
          f"(first {limit} slots admitted every run)")
    if extra is not None:
        outcomes, stats = extra
        raised = [o for o in outcomes
                  if isinstance(o, QuotaExceededError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        print(f"  await-side        : {len(served)} served / "
              f"{len(raised)} rejected of {limit + 1} concurrent submits")
        if not raised:
            failures.append("quota: concurrent submits were never rejected "
                            "await-side")
        if any(not result.ok or result.payload != expected
               for result in served):
            failures.append("quota: a served concurrent submit lost parity")
        if stats["registry"]["in_flight"] != 0:
            failures.append("quota: in-flight slots were not released")
        if stats["registry"]["quota_rejections"] < rejected + len(raised):
            failures.append("quota: rejections are under-counted in stats")
    return {"max_in_flight": limit, "batch": total,
            "repeats": args.quota_repeats, "rejected_per_batch":
            total - limit, "deterministic": not failures}, failures


def _owning_worker(fingerprint, workers):
    """Mirror of ``ShardHost.worker_for``: the stable fingerprint route."""
    return int(fingerprint[:16], 16) % workers


def run_workers_mode(args):
    """The --workers gate: host-executor scaling with a single-process
    parity oracle (see module docs)."""
    workers = args.workers
    # A scaling claim needs every worker busy: grow the scenario count
    # deterministically (same seed, longer prefix) until the fingerprints
    # cover all K workers.  Routing is a stable hash, so this terminates
    # almost immediately in practice.
    scenarios = list(args.scenarios)
    count = len(scenarios)
    while len({_owning_worker(s.setting.fingerprint(), workers)
               for s in scenarios}) < workers and count < workers + 16:
        count += 1
        scenarios = generated_scenarios(count, args.seed)
    assignment = {}
    for scenario in scenarios:
        fingerprint = scenario.setting.fingerprint()
        assignment.setdefault(_owning_worker(fingerprint, workers),
                              []).append(fingerprint[:12])
    requests = build_traffic(scenarios, args.generated)
    reference = serial_reference(scenarios, requests)

    async def host_pass(worker_count):
        """One measured pass: caches off, plans prewarmed, R timed repeats
        of the mixed stream through ``worker_count`` worker processes."""
        service = AsyncExchangeService(
            registry=SettingRegistry(result_cache=False),
            executor="host", parallel=args.parallel, workers=worker_count)
        async with service:
            for scenario in scenarios:
                service.register(scenario.setting, prewarm=True)
            await service.batch(requests)       # warm plans and pipes
            begun = time.perf_counter()
            for _ in range(args.worker_repeats):
                slots = await service.batch(requests)
            elapsed = time.perf_counter() - begun
            stats = service.stats()
        view = [(slot.ok, slot.result.payload if slot.result else None)
                for slot in slots]
        return view, elapsed, stats

    failures = []
    results = {}
    for worker_count in (1, workers):
        view, elapsed, stats = asyncio.run(host_pass(worker_count))
        throughput = (len(requests) * args.worker_repeats
                      / max(elapsed, 1e-9))
        results[worker_count] = (view, throughput, stats)
        restarts = stats["host"]["worker_restarts"]
        print(f"host x{worker_count:<2d} workers   : "
              f"{throughput:8.1f} req/s ({elapsed * 1e3:.1f} ms for "
              f"{args.worker_repeats}x{len(requests)} requests, "
              f"{restarts} restarts)")
        # Parity oracle: the multi-process serving layer may never change
        # a payload — the views must be *bit-identical* to the serial,
        # single-process, per-setting engines.
        if view != reference:
            mismatches = sum(1 for ours, theirs in zip(view, reference)
                             if ours != theirs)
            failures.append(f"workers: {worker_count}-worker pass differs "
                            f"from the single-process oracle on "
                            f"{mismatches} request(s)")
        if restarts:
            failures.append(f"workers: {restarts} worker restart(s) during "
                            f"the {worker_count}-worker pass")
    if len(assignment) < workers:
        failures.append(f"workers: only {len(assignment)} of {workers} "
                        f"workers own a fingerprint — the workload never "
                        f"balanced, the scaling number is meaningless")

    scaling = results[workers][1] / max(results[1][1], 1e-9)
    cores = os.cpu_count() or 1
    gate = "enforced" if (workers >= 2 and cores >= 2) else "skipped"
    print(f"  scaling 1->{workers}      : {scaling:.2f}x "
          f"(gate >= {args.scale_min:.2f}x {gate}; {cores} core(s))")
    if gate == "enforced" and scaling < args.scale_min:
        failures.append(f"workers: 1->{workers} scaling {scaling:.2f}x is "
                        f"below the {args.scale_min:.2f}x gate")
    elif gate == "skipped":
        print(f"  note              : single-core machine — the scaling "
              f"gate needs parallel hardware and is skipped here; it runs "
              f"on multi-core CI")
    return {"workers": workers, "repeats": args.worker_repeats,
            "requests": len(requests), "settings": len(scenarios),
            "assignment": {str(k): v for k, v in sorted(assignment.items())},
            "throughput_rps": {str(k): results[k][1] for k in results},
            "scaling_x": scaling, "scale_min": args.scale_min,
            "scale_gate": gate, "cores": cores}, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generated", type=int, default=8, metavar="N",
                        help="certain-answers requests per setting")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--settings", type=int, default=3,
                        help="number of distinct generated settings")
    parser.add_argument("--executor", default="thread",
                        choices=("serial", "thread", "process", "host"))
    parser.add_argument("--parallel", type=int, default=4)
    parser.add_argument("--maxsize", type=int, default=2,
                        help="per-setting result-cache bound for the "
                             "eviction pass")
    parser.add_argument("--pipeline", action="store_true",
                        help="also run the pipelined-vs-serialized "
                             "connection gate")
    parser.add_argument("--slow-books", type=int, default=500,
                        help="size of the slow solve in the pipeline gate")
    parser.add_argument("--fast", type=int, default=150,
                        help="fast requests behind the slow one in the "
                             "pipeline gate (>= 100 keeps the single slow "
                             "sample out of the p99)")
    parser.add_argument("--quota", action="store_true",
                        help="also run the admission-control gate")
    parser.add_argument("--max-in-flight", type=int, default=2,
                        help="per-setting in-flight quota for --quota")
    parser.add_argument("--quota-batch", type=int, default=8,
                        help="same-setting batch size for --quota")
    parser.add_argument("--quota-repeats", type=int, default=3,
                        help="how often --quota replays the batch")
    parser.add_argument("--workers", type=int, default=None, metavar="K",
                        help="also run the shard-host scaling gate: 1 vs K "
                             "worker processes with a single-process "
                             "parity oracle")
    parser.add_argument("--worker-repeats", type=int, default=3,
                        help="timed replays of the stream per --workers "
                             "pass (caches are off, every repeat computes)")
    parser.add_argument("--scale-min", type=float, default=1.6,
                        help="minimum 1->K throughput ratio for --workers "
                             "on multi-core machines")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="enable tracing and append every finished "
                             "span to PATH as JSON lines (render with "
                             "python -m repro.obs.report PATH)")
    args = parser.parse_args(argv)
    if args.pipeline and args.fast < 100:
        parser.error("--fast must be >= 100 so the p99 reflects the fast "
                     "requests, not the one slow sample")
    if args.quota and not 0 < args.max_in_flight < args.quota_batch:
        parser.error("--quota needs 0 < --max-in-flight < --quota-batch "
                     "(otherwise nothing is ever rejected)")
    if args.settings < 2:
        parser.error("--settings must be >= 2 (the point is mixed traffic)")
    if args.workers is not None and args.workers < 2:
        parser.error("--workers must be >= 2 (scaling from 1 to 1 worker "
                     "measures nothing)")

    if args.trace is not None:
        from repro.obs.trace import configure as obs_configure
        obs_configure(trace_path=args.trace)
        print(f"tracing enabled     : spans -> {args.trace}")

    begun = time.perf_counter()
    args.scenarios = generated_scenarios(args.settings, args.seed)
    fingerprints = [s.setting.fingerprint() for s in args.scenarios]
    requests = build_traffic(args.scenarios, args.generated)
    print(f"traffic: {len(requests)} requests over "
          f"{len(set(fingerprints))} distinct settings "
          f"(seed {args.seed}, generated in "
          f"{time.perf_counter() - begun:.2f} s)")

    failures = []
    if len(set(fingerprints)) < 2:
        failures.append("fewer than 2 distinct settings in the workload")

    slots, batch_elapsed, latencies, gather_elapsed, stats = \
        asyncio.run(run_service(args, requests))

    n = len(requests)
    throughput = n / max(batch_elapsed, 1e-9)
    print(f"mixed batch ({args.executor} x{args.parallel}) : "
          f"{throughput:8.1f} req/s ({batch_elapsed * 1e3:.1f} ms total)")
    lat_ms = {f"p{q}": percentile(latencies, q) * 1e3 for q in (50, 90, 99)}
    print(f"warm await latency  : p50 {lat_ms['p50']:6.2f} ms   "
          f"p90 {lat_ms['p90']:6.2f} ms   p99 {lat_ms['p99']:6.2f} ms "
          f"({n / max(gather_elapsed, 1e-9):.1f} req/s gathered)")

    registry_stats = stats["registry"]
    shard_hits = registry_stats["compiled_hits"]
    shard_misses = registry_stats["compiled_misses"]
    shard_rate = shard_hits / max(shard_hits + shard_misses, 1)
    cache_hits = sum(s["result_cache_hits"] for s in stats["shards"].values())
    cache_misses = sum(s["result_cache_misses"]
                       for s in stats["shards"].values())
    cache_rate = cache_hits / max(cache_hits + cache_misses, 1)
    print(f"shard routing       : {shard_hits} hits / {shard_misses} "
          f"compiles ({shard_rate:.0%} hit rate, "
          f"{registry_stats['compiled_entries']} shards)")
    print(f"result cache        : {cache_hits} hits / {cache_misses} misses "
          f"({cache_rate:.0%} hit rate)")
    plan_hits = registry_stats.get("plan_cache_hits", 0)
    plan_misses = registry_stats.get("plan_cache_misses", 0)
    plan_rate = plan_hits / max(plan_hits + plan_misses, 1)
    print(f"plan cache          : {plan_hits} hits / {plan_misses} "
          f"compilations ({plan_rate:.0%} hit rate across shards)")
    # Gate (deterministic): each shard compiles a query's plan at most once
    # — the second evaluation of any query on a shard must be a hit.  LRU
    # evictions legitimately force recompiles, so they don't count against
    # the gate (this workload never evicts plans, but the arithmetic stays
    # honest if a future run does).
    for fingerprint, shard_stats in stats["shards"].items():
        budget = (shard_stats["plan_cache_entries"]
                  + shard_stats["plan_cache_evictions"])
        if shard_stats["plan_cache_misses"] > budget:
            failures.append(
                f"plan cache: shard {fingerprint[:12]} recompiled a plan "
                f"({shard_stats['plan_cache_misses']} misses for "
                f"{budget} entries+evictions)")

    # Gate: per-shard results identical to serial per-setting engines.
    failed = [slot for slot in slots if slot.failed]
    if failed:
        failures.append(f"{len(failed)} request(s) failed in the batch: "
                        f"{failed[0].error!r}")
    else:
        reference = serial_reference(args.scenarios, requests)
        service_view = [(slot.ok, slot.result.payload) for slot in slots]
        if service_view != reference:
            mismatches = sum(1 for ours, theirs
                             in zip(service_view, reference)
                             if ours != theirs)
            failures.append(f"parity: {mismatches} request(s) differ from "
                            f"serial per-setting engines")
        else:
            print(f"parity              : all {n} results equal serial "
                  f"per-setting engine runs")
        if any(slot.fingerprint != request.fingerprint
               for slot, request in zip(slots, requests)):
            failures.append("routing: a request was served by a foreign shard")

    # Gate: bounded caches evict without changing payloads.
    views, evictions, eviction_stats = \
        asyncio.run(run_eviction_pass(args, requests))
    print(f"eviction pass       : {evictions} evictions under "
          f"maxsize={args.maxsize} "
          f"(entries <= {args.maxsize} per shard)")
    if evictions <= 0:
        failures.append(f"eviction: maxsize={args.maxsize} produced no "
                        f"evictions on a repeat pass")
    if views[0] != views[1]:
        failures.append("eviction: repeat pass changed payloads")
    if not failed and views[0] != [
            (slot.ok, slot.result.payload) for slot in slots]:
        failures.append("eviction: bounded cache changed payloads vs "
                        "unbounded service")

    pipeline_report = quota_report = workers_report = None
    if args.pipeline:
        pipeline_report, pipeline_failures = run_pipeline_mode(args)
        failures.extend(pipeline_failures)
    if args.quota:
        quota_report, quota_failures = run_quota_mode(args)
        failures.extend(quota_failures)
    if args.workers is not None:
        workers_report, workers_failures = run_workers_mode(args)
        failures.extend(workers_failures)

    report = {
        "bench": "service",
        "seed": args.seed,
        "settings": len(set(fingerprints)),
        "fingerprints": sorted(fp[:16] for fp in set(fingerprints)),
        "requests": n,
        "executor": args.executor,
        "parallel": args.parallel,
        "throughput_rps": throughput,
        "batch_elapsed_s": batch_elapsed,
        "latency_ms": lat_ms,
        "shard_hit_rate": shard_rate,
        "result_cache_hit_rate": cache_rate,
        "result_cache_hits": cache_hits,
        "result_cache_misses": cache_misses,
        "plan_cache_hit_rate": plan_rate,
        "plan_cache_hits": plan_hits,
        "plan_cache_misses": plan_misses,
        "eviction_maxsize": args.maxsize,
        "evictions": evictions,
        "failures": failures,
    }
    if pipeline_report is not None:
        report["pipeline"] = pipeline_report
    if quota_report is not None:
        report["quota"] = quota_report
    if workers_report is not None:
        report["workers"] = workers_report
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json report         : {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
