"""E16 — the serving layer: mixed-setting traffic through one async service.

Drives generated traffic for **several distinct settings** through a single
:class:`repro.service.AsyncExchangeService` and reports what a serving
deployment cares about: request throughput, await-side latency percentiles,
result-cache and compiled-shard hit rates — plus deterministic gates:

* **multi-setting**  — the workload must span >= 2 distinct fingerprints;
* **parity**         — every service answer must equal a serial, per-setting
  :class:`repro.ExchangeEngine` run of the same request (the serving layer
  may never change payloads);
* **isolation/eviction** — a small per-setting ``result_cache_maxsize``
  must produce evictions on a repeat pass while leaving payloads unchanged;
* **routing**        — no request may be served by a shard other than its
  fingerprint's.

Usage::

    python benchmarks/bench_service.py --generated 8 --seed 7 \\
        [--settings 3] [--executor thread] [--parallel 4] \\
        [--maxsize 2] [--json PATH]

``--generated N`` sizes the per-setting request stream (N certain-answers
requests plus one consistency request per setting, interleaved across
settings into one mixed batch).  ``--json PATH`` writes the full report as
machine-readable JSON — the ``BENCH_*.json`` perf-trajectory artifact.
"""

import argparse
import asyncio
import json
import math
import sys
import time

from repro import ExchangeEngine
from repro.service import (AsyncExchangeService, certain_answers_request,
                           consistency_request)
from repro.workloads.generated import generated_scenarios


def percentile(samples, q):
    """The q-th percentile (0..100) of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def build_traffic(scenarios, per_setting):
    """One consistency + ``per_setting`` certain-answers requests per
    scenario, interleaved round-robin into a mixed-setting stream."""
    per_scenario = []
    for scenario in scenarios:
        fingerprint = scenario.setting.fingerprint()
        stream = [consistency_request(fingerprint)]
        trees, queries = scenario.source_trees, scenario.queries
        for index in range(per_setting):
            stream.append(certain_answers_request(
                fingerprint, trees[index % len(trees)],
                queries[index % len(queries)]))
        per_scenario.append(stream)
    mixed = []
    for position in range(max(len(stream) for stream in per_scenario)):
        for stream in per_scenario:
            if position < len(stream):
                mixed.append(stream[position])
    return mixed


def serial_reference(scenarios, requests):
    """The parity baseline: each request served by a fresh, serial,
    per-setting engine — no service, no router, no shared state."""
    engines = {}
    for scenario in scenarios:
        engines[scenario.setting.fingerprint()] = \
            ExchangeEngine(scenario.setting)
    reference = []
    for request in requests:
        engine = engines[request.fingerprint]
        if request.op == "consistency":
            result = engine.check_consistency(request.strategy)
        else:
            result = engine.certain_answers(request.tree, request.query,
                                            request.variable_order)
        reference.append((result.ok, result.payload))
    return reference


async def run_service(args, requests):
    """The measured passes on one service: batch, warm gather, stats."""
    service = AsyncExchangeService(executor=args.executor,
                                   parallel=args.parallel)
    async with service:
        for scenario in args.scenarios:
            service.register(scenario.setting)

        begun = time.perf_counter()
        slots = await service.batch(requests)
        batch_elapsed = time.perf_counter() - begun

        # Warm per-request latencies: each request awaited individually
        # (concurrently), timed from the await side.
        async def timed(request):
            started = time.perf_counter()
            await service.submit(request)
            return time.perf_counter() - started

        begun = time.perf_counter()
        latencies = await asyncio.gather(*(timed(r) for r in requests))
        gather_elapsed = time.perf_counter() - begun
        stats = service.stats()
    return slots, batch_elapsed, latencies, gather_elapsed, stats


async def run_eviction_pass(args, requests):
    """Repeat the stream under a tiny per-setting cache: payloads must hold
    and the bounded caches must actually evict."""
    service = AsyncExchangeService(executor=args.executor,
                                   parallel=args.parallel,
                                   result_cache_maxsize=args.maxsize)
    async with service:
        for scenario in args.scenarios:
            service.register(scenario.setting)
        first = await service.batch(requests)
        second = await service.batch(requests)
        stats = service.stats()
    evictions = sum(shard["result_cache_evictions"]
                    for shard in stats["shards"].values())
    views = [[(slot.ok, slot.result.payload if slot.result else None)
              for slot in pass_] for pass_ in (first, second)]
    return views, evictions, stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--generated", type=int, default=8, metavar="N",
                        help="certain-answers requests per setting")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--settings", type=int, default=3,
                        help="number of distinct generated settings")
    parser.add_argument("--executor", default="thread",
                        choices=("serial", "thread", "process"))
    parser.add_argument("--parallel", type=int, default=4)
    parser.add_argument("--maxsize", type=int, default=2,
                        help="per-setting result-cache bound for the "
                             "eviction pass")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)
    if args.settings < 2:
        parser.error("--settings must be >= 2 (the point is mixed traffic)")

    begun = time.perf_counter()
    args.scenarios = generated_scenarios(args.settings, args.seed)
    fingerprints = [s.setting.fingerprint() for s in args.scenarios]
    requests = build_traffic(args.scenarios, args.generated)
    print(f"traffic: {len(requests)} requests over "
          f"{len(set(fingerprints))} distinct settings "
          f"(seed {args.seed}, generated in "
          f"{time.perf_counter() - begun:.2f} s)")

    failures = []
    if len(set(fingerprints)) < 2:
        failures.append("fewer than 2 distinct settings in the workload")

    slots, batch_elapsed, latencies, gather_elapsed, stats = \
        asyncio.run(run_service(args, requests))

    n = len(requests)
    throughput = n / max(batch_elapsed, 1e-9)
    print(f"mixed batch ({args.executor} x{args.parallel}) : "
          f"{throughput:8.1f} req/s ({batch_elapsed * 1e3:.1f} ms total)")
    lat_ms = {f"p{q}": percentile(latencies, q) * 1e3 for q in (50, 90, 99)}
    print(f"warm await latency  : p50 {lat_ms['p50']:6.2f} ms   "
          f"p90 {lat_ms['p90']:6.2f} ms   p99 {lat_ms['p99']:6.2f} ms "
          f"({n / max(gather_elapsed, 1e-9):.1f} req/s gathered)")

    registry_stats = stats["registry"]
    shard_hits = registry_stats["compiled_hits"]
    shard_misses = registry_stats["compiled_misses"]
    shard_rate = shard_hits / max(shard_hits + shard_misses, 1)
    cache_hits = sum(s["result_cache_hits"] for s in stats["shards"].values())
    cache_misses = sum(s["result_cache_misses"]
                       for s in stats["shards"].values())
    cache_rate = cache_hits / max(cache_hits + cache_misses, 1)
    print(f"shard routing       : {shard_hits} hits / {shard_misses} "
          f"compiles ({shard_rate:.0%} hit rate, "
          f"{registry_stats['compiled_entries']} shards)")
    print(f"result cache        : {cache_hits} hits / {cache_misses} misses "
          f"({cache_rate:.0%} hit rate)")

    # Gate: per-shard results identical to serial per-setting engines.
    failed = [slot for slot in slots if slot.failed]
    if failed:
        failures.append(f"{len(failed)} request(s) failed in the batch: "
                        f"{failed[0].error!r}")
    else:
        reference = serial_reference(args.scenarios, requests)
        service_view = [(slot.ok, slot.result.payload) for slot in slots]
        if service_view != reference:
            mismatches = sum(1 for ours, theirs
                             in zip(service_view, reference)
                             if ours != theirs)
            failures.append(f"parity: {mismatches} request(s) differ from "
                            f"serial per-setting engines")
        else:
            print(f"parity              : all {n} results equal serial "
                  f"per-setting engine runs")
        if any(slot.fingerprint != request.fingerprint
               for slot, request in zip(slots, requests)):
            failures.append("routing: a request was served by a foreign shard")

    # Gate: bounded caches evict without changing payloads.
    views, evictions, eviction_stats = \
        asyncio.run(run_eviction_pass(args, requests))
    print(f"eviction pass       : {evictions} evictions under "
          f"maxsize={args.maxsize} "
          f"(entries <= {args.maxsize} per shard)")
    if evictions <= 0:
        failures.append(f"eviction: maxsize={args.maxsize} produced no "
                        f"evictions on a repeat pass")
    if views[0] != views[1]:
        failures.append("eviction: repeat pass changed payloads")
    if not failed and views[0] != [
            (slot.ok, slot.result.payload) for slot in slots]:
        failures.append("eviction: bounded cache changed payloads vs "
                        "unbounded service")

    report = {
        "bench": "service",
        "seed": args.seed,
        "settings": len(set(fingerprints)),
        "fingerprints": sorted(fp[:16] for fp in set(fingerprints)),
        "requests": n,
        "executor": args.executor,
        "parallel": args.parallel,
        "throughput_rps": throughput,
        "batch_elapsed_s": batch_elapsed,
        "latency_ms": lat_ms,
        "shard_hit_rate": shard_rate,
        "result_cache_hit_rate": cache_rate,
        "result_cache_hits": cache_hits,
        "result_cache_misses": cache_misses,
        "eviction_maxsize": args.maxsize,
        "evictions": evictions,
        "failures": failures,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"json report         : {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
