"""E3 / E4 / E5 — the consistency problem.

* E5 (Theorem 4.5): the nested-relational check on settings of growing DTD
  size ``n`` and growing dependency size ``m`` — the time should scale roughly
  like ``n·m²`` (linear in the DTD series, quadratic-ish in the STD series).
* E3 (Theorem 4.1): the general procedure on the Section 4 example and on the
  nested-relational settings (much more expensive than the fast path).
* E4 (Proposition 4.4): consistency of 3-SAT-encoded instances — exponential
  in the number of variables, and the answer tracks satisfiability.
"""

import pytest

from repro.exchange import (DataExchangeSetting, check_consistency,
                            check_consistency_general,
                            check_consistency_nested_relational, std)
from repro.reductions import proposition_4_4
from repro.reductions.sat import dpll_satisfiable, random_3cnf
from repro.workloads import nested_relational as nr
from repro.xmlmodel import DTD


# ----------------------------- E5: n sweep ----------------------------- #

@pytest.mark.parametrize("levels", [1, 2, 3])
def test_nested_relational_consistency_dtd_size_sweep(benchmark, levels):
    setting = nr.scaling_setting(levels, branching=2, n_stds=4)
    outcome = benchmark(lambda: check_consistency_nested_relational(setting))
    assert outcome.consistent


# ----------------------------- E5: m sweep ----------------------------- #

@pytest.mark.parametrize("n_stds", [2, 8, 16])
def test_nested_relational_consistency_std_size_sweep(benchmark, n_stds):
    setting = nr.scaling_setting(2, branching=2, n_stds=n_stds)
    outcome = benchmark(lambda: check_consistency_nested_relational(setting))
    assert outcome.consistent


# ----------------------------- E3: general ----------------------------- #

def _section_4_setting(consistent: bool) -> DataExchangeSetting:
    source_dtd = DTD("rs", {"rs": ""})
    if consistent:
        target_dtd = DTD("r", {"r": "l1 | l2", "l1": "l2?", "l2": ""}, {"l2": ["a"]})
    else:
        target_dtd = DTD("r", {"r": "l1 | l2", "l1": "", "l2": ""}, {"l2": ["a"]})
    return DataExchangeSetting(source_dtd, target_dtd,
                               [std("r[l1[l2(@a=x)]]", "rs")])


@pytest.mark.parametrize("consistent", [True, False])
def test_general_consistency_section_4_example(benchmark, consistent):
    setting = _section_4_setting(consistent)
    result = benchmark(lambda: check_consistency_general(setting))
    assert result.consistent is consistent


def test_general_consistency_on_clio_setting(benchmark):
    setting = nr.company_setting()
    result = benchmark(lambda: check_consistency(setting, method="general"))
    assert result.consistent


def test_fast_path_vs_general_gap(benchmark):
    """The headline comparison: the Theorem 4.5 fast path on the same setting
    the general procedure was benchmarked on above."""
    setting = nr.company_setting()
    result = benchmark(lambda: check_consistency(setting, method="nested-relational"))
    assert result.consistent


def test_warm_engine_general_consistency(benchmark):
    """The general procedure served from a compiled setting: skeleton
    enumeration, goal-search memo and erased patterns are all reused, so
    repeated checks cost a fraction of the cold calls above."""
    engine = nr.company_engine()
    engine.check_consistency(strategy="general")   # warm the caches
    result = benchmark(lambda: engine.check_consistency(strategy="general"))
    assert result.ok
    assert engine.stats["rule_cache_misses"] == 0


# ----------------------------- E4: SAT-encoded ----------------------------- #

@pytest.mark.parametrize("n_variables", [3, 4])
def test_consistency_of_sat_instances(benchmark, n_variables):
    formula = random_3cnf(n_variables, n_clauses=2 * n_variables, seed=7)
    setting = proposition_4_4.consistency_instance(formula)
    expected = dpll_satisfiable(formula) is not None
    result = benchmark(lambda: check_consistency(setting))
    assert result.consistent is expected
