"""Benchmark harness configuration (pytest-benchmark)."""

import pytest


def pytest_collection_modifyitems(items):
    """Keep the per-experiment ordering stable in the report."""
    items.sort(key=lambda item: item.nodeid)
