"""E2 — DTD machinery: conformance checking and Lemma 2.2 trimming."""

import pytest

from repro.workloads import library
from repro.xmlmodel import DTD


@pytest.mark.parametrize("n_books", [10, 50, 200])
def test_conformance_check_scaling(benchmark, n_books):
    dtd = library.source_dtd()
    source = library.generate_source(n_books, authors_per_book=3, seed=2)
    assert benchmark(lambda: dtd.conforms(source)) is True


@pytest.mark.parametrize("n_dead_types", [2, 6, 10])
def test_lemma_2_2_trimming(benchmark, n_dead_types):
    """Trimming a DTD with an increasing number of unusable element types."""
    rules = {"r": "a* " + " ".join(f"(dead{i} | EPSILON)" for i in range(n_dead_types)),
             "a": ""}
    for i in range(n_dead_types):
        rules[f"dead{i}"] = f"dead{i}"
    trimmed = benchmark(lambda: DTD("r", rules).trimmed())
    assert trimmed.element_types == {"r", "a"}
    assert trimmed.is_consistent()
