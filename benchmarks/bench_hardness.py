"""E9 / E13 / E8 — the tractable / intractable gap of the dichotomy.

* E9 (Theorem 5.11, STD(_, //)): building T_θ, building the proof's solution
  from a satisfying assignment and verifying it — polynomial in |θ| — while
  the underlying decision problem is coNP-complete.
* E13 (Lemma 6.20, c(r) ≥ 2): the same for the dichotomy gadget.
* E8 (Theorem 5.5): brute-force certain answers (the coNP baseline) versus the
  canonical-solution algorithm on a tiny tractable setting — the naive
  enumeration examines exponentially many candidate trees, the canonical
  pipeline stays polynomial.
"""

import pytest

from repro.exchange import (DataExchangeSetting, certain_answers,
                            naive_certain_answers, std)
from repro.patterns import parse_pattern, pattern_query
from repro.reductions import lemma_6_20, theorem_5_11
from repro.reductions.sat import dpll_satisfiable, random_3cnf
from repro.xmlmodel import DTD, XMLTree


# ----------------------- E9: Theorem 5.11 gadget ----------------------- #

@pytest.mark.parametrize("n_clauses", [4, 10, 20])
def test_theorem_5_11_gadget_roundtrip(benchmark, n_clauses):
    formula = random_3cnf(n_variables=max(3, n_clauses // 2),
                          n_clauses=n_clauses, seed=11)
    gadget = theorem_5_11.build_gadget()
    assignment = dpll_satisfiable(formula)
    if assignment is None:  # pragma: no cover - random instances are almost surely SAT
        pytest.skip("random instance unexpectedly unsatisfiable")

    def roundtrip():
        source = theorem_5_11.encode_formula(formula)
        solution = theorem_5_11.solution_from_assignment(formula, assignment)
        ok = gadget.setting.is_unordered_solution(source, solution)
        return ok, gadget.query.holds(solution)

    ok, query_holds = benchmark(roundtrip)
    assert ok and not query_holds   # certain(Q, T_θ) = false, as θ is satisfiable


# ----------------------- E13: Lemma 6.20 gadget ----------------------- #

@pytest.mark.parametrize("n_clauses", [4, 10, 20])
def test_lemma_6_20_gadget_roundtrip(benchmark, n_clauses):
    formula = random_3cnf(n_variables=max(3, n_clauses // 2),
                          n_clauses=n_clauses, seed=13)
    gadget = lemma_6_20.build_gadget("a | a a b*")
    assignment = dpll_satisfiable(formula)
    if assignment is None:  # pragma: no cover
        pytest.skip("random instance unexpectedly unsatisfiable")

    def roundtrip():
        source = lemma_6_20.encode_formula(gadget, formula)
        solution = lemma_6_20.solution_from_assignment(gadget, formula, assignment)
        ok = gadget.setting.is_unordered_solution(source, solution)
        return ok, gadget.query.holds(solution)

    ok, query_holds = benchmark(roundtrip)
    assert ok and not query_holds


# ------------------- E8: naive baseline vs canonical ------------------- #

def _tiny_setting():
    source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
    target_dtd = DTD("r", {"r": "B* C?", "B": "", "C": ""},
                     {"B": ["m"], "C": ["n"]})
    return DataExchangeSetting(source_dtd, target_dtd,
                               [std("r[B(@m=x)]", "A(@a=x)")])


def _tiny_source(n_values: int) -> XMLTree:
    tree = XMLTree("r", ordered=True)
    for i in range(n_values):
        tree.add_child(tree.root, "A", {"a": str(i)})
    return tree


@pytest.mark.parametrize("n_values", [1, 2])
def test_naive_certain_answers_baseline(benchmark, n_values):
    setting = _tiny_setting()
    source = _tiny_source(n_values)
    query = pattern_query(parse_pattern("r[B(@m=x)]"))
    result = benchmark(lambda: naive_certain_answers(setting, source, query,
                                                     max_repeat=n_values))
    assert result.has_solution
    assert result.answers == {(str(i),) for i in range(n_values)}


@pytest.mark.parametrize("n_values", [1, 2])
def test_canonical_certain_answers_same_instances(benchmark, n_values):
    setting = _tiny_setting()
    source = _tiny_source(n_values)
    query = pattern_query(parse_pattern("r[B(@m=x)]"))
    outcome = benchmark(lambda: certain_answers(setting, source, query))
    assert outcome.answers == {(str(i),) for i in range(n_values)}
