"""Governed concurrent serving: pipelining, quotas, prewarming.

Covers the three serving-layer guarantees PR 4 introduced:

* **pipelining** — over one live connection, replies come back in
  *completion* order matched by id, so fast requests overtake a slow one
  submitted ahead of them; lock-step clients and pipelined servers (and
  vice versa) interoperate because reply matching is id-based on both
  sides;
* **quotas** — over-quota work is rejected deterministically with a typed
  :class:`QuotaExceededError`, await-side and over the wire, without
  touching admitted neighbours in the same batch or connection;
* **prewarming** — ``register(..., prewarm=True)`` compiles ahead, so the
  first request is a ``compiled_hits`` and ``compiled_misses`` stays 0.
"""

import asyncio
import socket
import threading
import time

import pytest

from repro import ExchangeEngine
from repro.service import (AsyncExchangeService, QuotaExceededError,
                           QuotaPolicy, SettingRegistry,
                           certain_answers_request, consistency_request)
from repro.service.client import ServiceClient
from repro.service.protocol import decode_line, encode_line
from repro.service.server import serve_in_background
from repro.workloads import library


@pytest.fixture
def library_pair(library_setting):
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    return library_setting, tree, query


def run_server_in_thread(service_kwargs):
    """The shared embedded-server helper, with test-sized timeouts."""
    port, server, join = serve_in_background(**service_kwargs)
    return port, server, lambda: join(timeout=30)


class TestPipelinedConnection:
    def test_fast_requests_overtake_a_slow_one(self, library_pair):
        """One connection, slow request first: its reply arrives *last*
        because the per-line tasks complete out of submission order."""
        setting, tree, query = library_pair
        # The slow request is a heavy solve (~50 ms — big enough that GIL
        # scheduling on a single-core box cannot let it finish before the
        # loop has served every ping); the fast ones are pings.
        slow_tree = library.generate_source(250, authors_per_book=3, seed=3)
        port, _, join = run_server_in_thread(
            dict(executor="thread", parallel=4))
        with ServiceClient("127.0.0.1", port) as client:
            fingerprint = client.register(setting, prewarm=True)
            # Warm the consistency result so the fast path is trivial.
            assert client.check_consistency(fingerprint) is True

            slow_id = client.submit({"op": "solve",
                                     "fingerprint": fingerprint,
                                     "tree": tree_wire(slow_tree)})
            fast_ids = [client.submit({"op": "ping"}) for _ in range(4)]

            completion_order = []
            while client.pending():
                request_id, reply = client.collect_any()
                assert reply["ok"], reply
                completion_order.append(request_id)

            assert set(completion_order) == {slow_id, *fast_ids}
            # Every ping overtook the slow solve submitted before them.
            assert completion_order[-1] == slow_id
            assert completion_order[:4] == fast_ids
            assert client.shutdown()
        join()

    def test_pipeline_helper_keeps_submission_order(self, library_pair):
        setting, tree, query = library_pair
        port, _, join = run_server_in_thread(
            dict(executor="thread", parallel=2))
        with ServiceClient("127.0.0.1", port) as client:
            fingerprint = client.register(setting)
            replies = client.pipeline([
                {"op": "solve", "fingerprint": fingerprint,
                 "tree": tree_wire(tree)},
                {"op": "ping"},
                {"op": "consistency", "fingerprint": fingerprint},
            ])
            assert [reply["op"] for reply in replies] == \
                ["solve", "ping", "consistency"]
            assert replies[0]["result_ok"] is True
            assert replies[2]["consistent"] is True
            assert client.shutdown()
        join()

    def test_pipeline_error_slots_do_not_poison_neighbours(self,
                                                           library_pair):
        setting, tree, query = library_pair
        port, _, join = run_server_in_thread(dict(executor="thread"))
        with ServiceClient("127.0.0.1", port) as client:
            fingerprint = client.register(setting)
            replies = client.pipeline([
                {"op": "ping"},
                {"op": "consistency", "fingerprint": "f" * 64},  # unknown
                {"op": "consistency", "fingerprint": fingerprint},
            ], return_exceptions=True)
            assert replies[0]["pong"] is True
            assert isinstance(replies[1], KeyError)  # UnknownSettingError
            assert replies[2]["consistent"] is True
            # Without return_exceptions, the error is raised *after* the
            # batch drained — the connection stays usable.
            with pytest.raises(KeyError):
                client.pipeline([{"op": "consistency",
                                  "fingerprint": "f" * 64}])
            assert client.ping()
            assert client.shutdown()
        join()

    def test_double_pipelined_shutdown_still_shuts_down(self):
        """Regression: two pipelined shutdowns in one TCP segment must not
        deadlock awaiting each other — both get replies, the server exits."""
        port, _, join = run_server_in_thread(dict(executor="thread"))
        sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        reader = sock.makefile("rb")
        try:
            sock.sendall(encode_line({"op": "shutdown", "id": 1}) +
                         encode_line({"op": "shutdown", "id": 2}))
            replies = [decode_line(reader.readline()),
                       decode_line(reader.readline())]
            assert {reply["id"] for reply in replies} == {1, 2}
            assert all(reply["bye"] for reply in replies)
        finally:
            reader.close()
            sock.close()
        join()

    def test_collect_unknown_or_collected_id_fails_fast(self):
        """collect() of a never-submitted or already-collected id raises
        immediately instead of blocking on a reply that cannot arrive."""
        port, _, join = run_server_in_thread(dict(executor="thread"))
        with ServiceClient("127.0.0.1", port) as client:
            request_id = client.submit({"op": "ping"})
            assert client.collect(request_id)["pong"] is True
            with pytest.raises(RuntimeError, match="not outstanding"):
                client.collect(request_id)
            with pytest.raises(RuntimeError, match="not outstanding"):
                client.collect(999)
            assert client.pending() == 0
            assert client.shutdown()
        join()

    def test_new_client_against_arrival_order_server(self, library_pair):
        """Bugfix interop: a server replying strictly in arrival order
        (the PR-3 behaviour) still satisfies the id-demuxing client."""
        setting, _, _ = library_pair

        def arrival_order_server(sock: socket.socket) -> None:
            connection, _ = sock.accept()
            reader = connection.makefile("rb")
            # Read TWO pipelined requests first, then answer them in
            # arrival order — the old per-line-await loop's schedule.
            lines = [reader.readline(), reader.readline()]
            for line in lines:
                message = decode_line(line)
                connection.sendall(encode_line(
                    {"ok": True, "op": message["op"], "pong": True,
                     "id": message["id"]}))
            reader.close()
            connection.close()

        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        thread = threading.Thread(target=arrival_order_server,
                                  args=(listener,), daemon=True)
        thread.start()
        client = ServiceClient("127.0.0.1", port)
        try:
            first = client.submit({"op": "ping"})
            second = client.submit({"op": "ping"})
            # Collect in reverse submission order: the reply to ``first``
            # arrives while waiting for ``second`` and must be parked, not
            # treated as a protocol error.
            assert client.collect(second)["id"] == second
            assert client.collect(first)["id"] == first
        finally:
            client.close()
            listener.close()
        thread.join(timeout=10)

    def test_out_of_completion_order_server_with_lockstep_flow(self):
        """The reverse interop: a pipelined (completion-order) server stub
        never breaks the lock-step ``request()`` path, because every reply
        is matched by id."""
        def completion_order_server(sock: socket.socket) -> None:
            connection, _ = sock.accept()
            reader = connection.makefile("rb")
            lines = [reader.readline(), reader.readline()]
            # Reply to the *second* request first (completion order of a
            # pipelined server with a slow first request).
            for line in reversed(lines):
                message = decode_line(line)
                connection.sendall(encode_line(
                    {"ok": True, "op": message["op"], "pong": True,
                     "id": message["id"]}))
            reader.close()
            connection.close()

        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        thread = threading.Thread(target=completion_order_server,
                                  args=(listener,), daemon=True)
        thread.start()
        client = ServiceClient("127.0.0.1", port)
        try:
            first = client.submit({"op": "ping"})
            second = client.submit({"op": "ping"})
            assert client.collect(first)["id"] == first
            assert client.collect(second)["id"] == second
        finally:
            client.close()
            listener.close()
        thread.join(timeout=10)


class TestQuota:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            QuotaPolicy(max_in_flight=0)
        with pytest.raises(ValueError, match="max_registered"):
            QuotaPolicy(max_registered=-1)

    def test_registration_quota_is_typed_and_idempotent(
            self, library_setting, company_setting):
        registry = SettingRegistry(quota=QuotaPolicy(max_registered=1))
        fingerprint = registry.register(library_setting)
        # Re-registering the same setting is a no-op, never a rejection.
        assert registry.register(library.library_setting()) == fingerprint
        with pytest.raises(QuotaExceededError, match="registration quota"):
            registry.register(company_setting)
        assert registry.stats()["quota_rejections"] == 1
        assert len(registry) == 1

    def test_batch_rejections_are_deterministic_and_isolated(
            self, library_pair):
        """With max_in_flight=2, a 4-request same-setting batch admits the
        first two slots and rejects the last two — every run, with typed
        error slots and untouched neighbours."""
        setting, tree, query = library_pair
        direct = ExchangeEngine(setting)

        async def scenario():
            async with AsyncExchangeService(
                    executor="thread", parallel=4,
                    quota=QuotaPolicy(max_in_flight=2)) as service:
                fingerprint = service.register(setting)
                requests = [
                    certain_answers_request(fingerprint, tree, query),
                    consistency_request(fingerprint),
                    consistency_request(fingerprint),
                    certain_answers_request(fingerprint, tree, query),
                ]
                batches = [await service.batch(requests) for _ in range(3)]
                return batches, service.stats()

        batches, stats = asyncio.run(scenario())
        for slots in batches:
            assert [slot.rejected for slot in slots] == \
                [False, False, True, True]
            assert isinstance(slots[2].error, QuotaExceededError)
            assert slots[3].error.kind == "in_flight"
            assert slots[0].result.payload == \
                direct.certain_answers(tree, query).payload
            assert slots[1].result.payload is True
        assert stats["registry"]["quota_rejections"] == 6
        assert stats["registry"]["in_flight"] == 0  # all slots released
        # ... released exactly once each: an over-release would raise (and
        # count) in quota_release rather than silently absorb.
        assert stats["registry"]["quota_release_underflow"] == 0

    def test_unbalanced_quota_release_is_loud(self, library_setting):
        """Regression: quota_release used to absorb over-release silently
        (popping an absent entry), masking acquire/release imbalance bugs
        in callers.  It now raises and counts the underflow."""
        registry = SettingRegistry(quota=QuotaPolicy(max_in_flight=2))
        fingerprint = registry.register(library_setting)
        registry.quota_acquire(fingerprint)
        registry.quota_release(fingerprint)
        with pytest.raises(RuntimeError, match="without a matching"):
            registry.quota_release(fingerprint)
        assert registry.stats()["quota_release_underflow"] == 1
        # The count itself never went negative: balance still works.
        registry.quota_acquire(fingerprint)
        assert registry.in_flight(fingerprint) == 1
        registry.quota_release(fingerprint)
        assert registry.in_flight(fingerprint) == 0

    def test_await_side_rejection_under_concurrency(self, library_pair):
        """Two concurrent submits under max_in_flight=1: exactly one is
        served, the other raises QuotaExceededError await-side."""
        setting, tree, query = library_pair

        async def scenario():
            async with AsyncExchangeService(
                    executor="thread", parallel=2,
                    quota=QuotaPolicy(max_in_flight=1)) as service:
                fingerprint = service.register(setting)
                outcomes = await asyncio.gather(
                    service.certain_answers(fingerprint, tree, query),
                    service.certain_answers(fingerprint, tree, query),
                    return_exceptions=True)
                # Slots are released once requests settle: afterwards the
                # same request is admitted again.
                after = await service.certain_answers(fingerprint, tree,
                                                      query)
                return outcomes, after

        outcomes, after = asyncio.run(scenario())
        errors = [o for o in outcomes if isinstance(o, QuotaExceededError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert len(errors) == 1 and len(served) == 1
        assert after.ok

    def test_quota_exceeded_crosses_the_wire_typed(self, library_setting,
                                                   company_setting):
        port, _, join = run_server_in_thread(
            dict(executor="thread",
                 quota=QuotaPolicy(max_registered=1)))
        with ServiceClient("127.0.0.1", port) as client:
            assert client.register(library_setting)
            with pytest.raises(QuotaExceededError,
                               match="registration quota"):
                client.register(company_setting)
            # The rejection did not poison the connection or the
            # registered neighbour.
            assert client.ping()
            assert client.check_consistency(
                library_setting.fingerprint()) is True
            assert client.shutdown()
        join()

    def test_bounds_on_both_registry_and_service_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            AsyncExchangeService(registry=SettingRegistry(),
                                 quota=QuotaPolicy(max_in_flight=1))
        with pytest.raises(ValueError, match="not both"):
            SettingRegistry(max_compiled=2,
                            quota=QuotaPolicy(max_compiled=2))

    def test_quota_max_compiled_feeds_the_lru(self, library_setting,
                                              company_setting,
                                              figure_6_setting):
        registry = SettingRegistry(quota=QuotaPolicy(max_compiled=2))
        assert registry.max_compiled == 2
        keys = [registry.register(s) for s in
                (library_setting, company_setting, figure_6_setting)]
        for key in keys:
            registry.shard(key)
        assert registry.stats()["compiled_evictions"] == 1


class TestPrewarm:
    def test_registry_prewarm_means_no_first_request_miss(
            self, library_pair):
        setting, tree, query = library_pair
        registry = SettingRegistry()
        fingerprint = registry.register(setting, prewarm=True)
        stats = registry.stats()
        assert stats["prewarm_compiles"] == 1
        assert stats["compiled_misses"] == 0
        shard = registry.shard(fingerprint)  # the first "request"
        assert shard.prewarmed
        stats = registry.stats()
        assert stats["compiled_misses"] == 0
        assert stats["compiled_hits"] == 1
        # Prewarming an already-warm setting is a cheap no-op.
        assert registry.prewarm(fingerprint) is False
        assert registry.stats()["prewarm_hits"] == 1

    def test_service_prewarm_runs_off_loop(self, library_pair):
        setting, tree, query = library_pair

        async def scenario():
            async with AsyncExchangeService(parallel=2) as service:
                fingerprint = service.register(setting)
                compiled_now = await service.prewarm(fingerprint)
                result = await service.certain_answers(fingerprint, tree,
                                                       query)
                return compiled_now, result, service.stats()

        compiled_now, result, stats = asyncio.run(scenario())
        assert compiled_now is True
        assert result.ok
        assert stats["registry"]["compiled_misses"] == 0
        assert stats["registry"]["prewarm_compiles"] == 1
        assert stats["shards"][library.library_setting().fingerprint()][
            "prewarmed"] is True

    def test_server_background_prewarm(self, library_pair):
        """register(prewarm=True) over the wire: the background warm task
        compiles the shard, so the first request is a compiled hit."""
        setting, tree, _ = library_pair
        port, _, join = run_server_in_thread(dict(executor="thread"))
        with ServiceClient("127.0.0.1", port) as client:
            fingerprint = client.register(setting, prewarm=True)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                registry = client.stats()["registry"]
                if registry["prewarm_compiles"] == 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("background prewarm never completed")
            answers = client.certain_answers(
                fingerprint, tree,
                "bib[writer(@name=w)[work(@title='Book-0')]]")
            assert answers == {("Author-1",), ("Author-2",)}
            registry = client.stats()["registry"]
            assert registry["compiled_misses"] == 0
            assert registry["compiled_hits"] >= 1
            assert client.shutdown()
        join()

    def test_concurrent_lazy_compiles_collapse(self, library_pair):
        """Two threads requesting the same cold setting compile it once —
        the per-fingerprint latch collapses the duplicate."""
        setting, tree, query = library_pair
        registry = SettingRegistry()
        fingerprint = registry.register(setting)
        shards = []
        barrier = threading.Barrier(2)

        def fetch() -> None:
            barrier.wait()
            shards.append(registry.shard(fingerprint))

        threads = [threading.Thread(target=fetch) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(shards) == 2
        assert shards[0] is shards[1]
        stats = registry.stats()
        assert stats["compiled_hits"] + stats["compiled_misses"] == 2
        assert stats["compiled_misses"] == 1


def tree_wire(tree):
    from repro.service.protocol import tree_to_wire
    return tree_to_wire(tree)
