"""The structural-join evaluator: adversarial parity, strategy routing,
bind caching and the accounting/plumbing the tentpole added around it.

The generated property sweep (tests/test_properties_generated.py) forces
both strategies across hundreds of scenarios, but its queries are linear
root-down paths — no ``//``, no wildcard.  This file attacks exactly the
shapes the sweep cannot reach: nested descendant chains, descendant arms
under branching nodes, wildcard ops seeded from attribute tables, empty
``nodes_by_label`` seeds, and union arms of mixed selectivity — each
checked for *ordered* row parity (downstream null allocation depends on
row order, not only the row set) plus interpreter agreement.
"""

import pickle
import random

import pytest

from repro import ExchangeEngine, XMLTree
from repro.engine.stats import CacheStats
from repro.exchange import canonical_solution
from repro.generators import generate_scenario
from repro.patterns import (assignment_key, compile_pattern, compile_query,
                            descendant, match_anywhere, node, pattern_query,
                            union_query, wildcard)
from repro.patterns.plan import _pick_strategy
from repro.storage.encoding import (decode_document, decode_intervals,
                                    encode_document)
from repro.workloads import library


def _random_tree(seed: int, size: int = 60) -> XMLTree:
    """A skewed random tree: 'row' is everywhere, 'book'/'author' are rare
    (selective seeds), 'shelf' sits mid-frequency, some nodes carry
    attributes shared across labels (wildcard-seed fodder)."""
    rng = random.Random(seed)
    tree = XMLTree("db", ordered=False)
    nodes = [tree.root]
    for _ in range(size):
        parent = rng.choice(nodes)
        label = rng.choices(["row", "shelf", "book", "author", "misc"],
                            weights=[10, 4, 2, 2, 3])[0]
        child = tree.add_child(parent, label)
        if rng.random() < 0.5:
            tree.set_attribute(child, "name",
                               rng.choice(["A", "B", "C"]))
        if rng.random() < 0.3:
            tree.set_attribute(child, "aff", rng.choice(["U", "V"]))
        nodes.append(child)
    return tree


#: The shapes the generated sweep cannot produce.
ADVERSARIAL_PATTERNS = [
    # Nested // chain (collapses to one staircase with a depth floor).
    descendant(descendant(node("author", {"name": "$n"}))),
    # // chain as the child of a selective node.
    node("db", None, descendant(node("author", {"name": "$n"}))),
    node("shelf", None, descendant(node("book", None,
                                        node("author", {"name": "$n"})))),
    # Wildcard with tests: seeded from the smallest attribute table.
    wildcard({"name": "$n", "aff": "$a"}),
    # Wildcard root whose // child shares a variable (join across arms).
    wildcard({"name": "$n"}, descendant(wildcard({"name": "$n"}))),
    # Bare wildcard with a child-span merge join below it.
    wildcard(None, node("author", {"name": "$n"})),
    # Empty nodes_by_label seed: the label occurs nowhere.
    node("zz", {"name": "$n"}),
    descendant(node("zz")),
    # Mixed-selectivity branching: rare arm + ubiquitous arm at one node.
    node("db", None, descendant(node("book")), descendant(node("row"))),
]


class TestAdversarialParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_join_equals_recurrence_rowwise(self, seed, monkeypatch):
        tree = _random_tree(seed)
        frozen = tree.freeze()
        for pattern in ADVERSARIAL_PATTERNS:
            plan = compile_pattern(pattern)
            monkeypatch.setenv("REPRO_EVAL_STRATEGY", "join")
            joined = plan.matches(frozen)
            monkeypatch.setenv("REPRO_EVAL_STRATEGY", "recurrence")
            recurred = plan.matches(frozen)
            monkeypatch.delenv("REPRO_EVAL_STRATEGY")
            # Ordered tuple equality: bit-identical rows, bit-identical order.
            assert joined == recurred, f"seed={seed} pattern={pattern}"
            interpreted = sorted(map(assignment_key,
                                     match_anywhere(tree, pattern)))
            planned = sorted(map(assignment_key, plan.assignments(frozen)))
            assert planned == interpreted, f"seed={seed} pattern={pattern}"

    def test_union_arms_of_mixed_selectivity(self, monkeypatch):
        tree = _random_tree(99, size=120)
        frozen = tree.freeze()
        query = union_query(
            pattern_query(descendant(node("author", {"name": "$n"}))),
            pattern_query(descendant(node("row", {"name": "$n"}))),
        )
        plan = compile_query(query)
        monkeypatch.setenv("REPRO_EVAL_STRATEGY", "join")
        joined = plan.rows(frozen)
        monkeypatch.setenv("REPRO_EVAL_STRATEGY", "recurrence")
        recurred = plan.rows(frozen)
        monkeypatch.delenv("REPRO_EVAL_STRATEGY")
        assert joined == recurred
        # Under "auto" the arms may route differently; answers must not care.
        stats = CacheStats()
        auto_rows = plan.rows(frozen, stats=stats)
        assert auto_rows == joined
        assert (stats.counts("plan_join_runs")
                + stats.counts("plan_recurrence_runs")) == 2  # one per arm

    def test_rare_label_on_wide_tree_routes_to_join(self):
        tree = XMLTree("db", ordered=False)
        for _ in range(400):
            tree.add_child(tree.root, "row")
        shelf = tree.add_child(tree.root, "shelf")
        book = tree.add_child(shelf, "book")
        tree.set_attribute(tree.add_child(book, "author"), "name", "A")
        frozen = tree.freeze()
        plan = compile_pattern(
            node("shelf", None, node("book", None,
                                     node("author", {"name": "$n"}))))
        assert _pick_strategy(plan._bound_ops(frozen), frozen) == "join"
        stats = CacheStats()
        rows = plan.matches(frozen, stats=stats)
        assert stats.counts("plan_join_runs") == 1
        assert stats.counts("plan_recurrence_runs") == 0
        assert [row[plan.slot_of("n")] for row in rows] == ["A"]

    def test_wildcard_heavy_pattern_routes_to_recurrence(self):
        tree = _random_tree(3)
        frozen = tree.freeze()
        plan = compile_pattern(wildcard(None, wildcard()))
        assert _pick_strategy(plan._bound_ops(frozen), frozen) == "recurrence"

    def test_invalid_strategy_override_raises(self, monkeypatch):
        plan = compile_pattern(node("db"))
        frozen = XMLTree("db").freeze()
        monkeypatch.setenv("REPRO_EVAL_STRATEGY", "quantum")
        with pytest.raises(ValueError, match="REPRO_EVAL_STRATEGY"):
            plan.matches(frozen)


class TestBindCache:
    def test_resolution_cached_per_snapshot(self):
        plan = compile_pattern(node("db", None, node("book", {"title": "$t"})))
        frozen = _random_tree(1).freeze()
        first = plan._bound_ops(frozen)
        assert plan._bound_ops(frozen) is first  # cached, not re-resolved
        other = _random_tree(2).freeze()
        assert plan._bound_ops(other) is not first
        assert len(plan._bind_cache) == 2

    def test_bind_cache_entries_die_with_the_snapshot(self):
        plan = compile_pattern(node("db"))
        frozen = _random_tree(1).freeze()
        plan._bound_ops(frozen)
        assert len(plan._bind_cache) == 1
        del frozen
        assert len(plan._bind_cache) == 0  # weakly keyed

    def test_pickle_drops_bind_cache_keeps_join_ops(self):
        plan = compile_pattern(
            node("db", None, descendant(node("author", {"name": "$n"}))))
        tree = _random_tree(4)
        frozen = tree.freeze()
        before = plan.matches(frozen)
        clone = pickle.loads(pickle.dumps(plan))
        assert len(clone._bind_cache) == 0
        assert clone.join_ops == plan.join_ops
        assert clone.matches(frozen) == before


class TestEngineAccounting:
    def test_engine_result_cache_carries_strategy_counters(self):
        engine = ExchangeEngine(library.library_setting())
        tree = library.figure_1_source()
        query = library.query_writer_of("Computational Complexity")
        result = engine.certain_answers(tree, query)
        assert result.ok
        assert "plan_join_runs" in result.cache
        assert "plan_recurrence_runs" in result.cache
        runs = (result.cache["plan_join_runs"]
                + result.cache["plan_recurrence_runs"])
        assert runs > 0  # STD source plans + the query's atoms all counted
        summary = engine.stats_summary()
        assert summary.plan_join_runs == result.cache["plan_join_runs"]
        assert summary.plan_recurrence_runs == \
            result.cache["plan_recurrence_runs"]

    def test_generated_scenario_counters_accumulate(self):
        scenario = generate_scenario(7)
        engine = ExchangeEngine(scenario.setting)
        for tree in scenario.source_trees:
            for query in scenario.queries:
                engine.certain_answers(tree, query)
        stats = engine.stats
        assert stats["plan_join_runs"] + stats["plan_recurrence_runs"] > 0
        # Counters only ever come from CacheStats events: both keys exist
        # even when one strategy never fired.
        assert set(["plan_join_runs", "plan_recurrence_runs"]) <= set(stats)


class TestPrePostPlane:
    def test_pre_post_cached_and_characterises_ancestry(self):
        tree = _random_tree(11)
        frozen = tree.freeze()
        pre, post = frozen.pre_post()
        assert frozen.pre_post() is frozen._pre_post  # computed once
        assert sorted(pre) == list(range(frozen.n))
        assert sorted(post) == list(range(frozen.n))
        depths = frozen.depths()
        sizes = frozen.subtree_sizes()
        assert sizes[0] == frozen.n and depths[0] == 0
        # pre/post plane vs the parent chain, exhaustively.
        def ancestors(pos):
            chain = set()
            while frozen.parent(pos) is not None:
                pos = frozen.parent(pos)
                chain.add(pos)
            return chain
        for w in range(frozen.n):
            plane = {v for v in range(frozen.n)
                     if pre[v] < pre[w] and post[v] > post[w]}
            assert plane == ancestors(w), f"node {w}"
        # Descendant intervals: exactly size[v]-1 proper descendants.
        for v in range(frozen.n):
            in_interval = sum(1 for w in range(frozen.n)
                              if pre[v] < pre[w] < pre[v] + sizes[v])
            assert in_interval == sizes[v] - 1

    def test_storage_roundtrip_seeds_the_plane(self):
        frozen = _random_tree(12).freeze()
        record = memoryview(encode_document(frozen))
        decoded = decode_document(record)
        assert decoded._pre_post is not None  # seeded, not lazily re-derived
        assert decoded._pre_post == frozen.pre_post()
        assert decode_intervals(record) == frozen.pre_post()


class TestFrozenConformance:
    def test_matches_tree_walk_on_conforming_and_violating_trees(self):
        dtd = library.target_dtd()
        solved = canonical_solution(library.library_setting(),
                                    library.figure_1_source())
        assert solved.success
        good = solved.tree
        assert dtd.conformance_violations_frozen(good.freeze(),
                                                 ordered=False) == []
        assert dtd.conformance_violations(good, ordered=False) == []
        # Break it two ways: an alien attribute and an alien child.
        bad = good.copy()
        some_node = next(iter(bad.nodes()))
        bad.set_attribute(some_node, "alien", "x")
        bad.add_child(bad.root, "martian")
        tree_walk = dtd.conformance_violations(bad, ordered=False)
        frozen_walk = dtd.conformance_violations_frozen(bad.freeze(),
                                                        ordered=False)
        # Same violations (message order groups by label in the frozen walk).
        assert sorted(tree_walk) == sorted(frozen_walk)
        assert frozen_walk  # actually caught something

    def test_chase_result_carries_frozen_and_pickle_drops_it(self):
        solved = canonical_solution(library.library_setting(),
                                    library.figure_1_source())
        assert solved.success
        assert solved.frozen is not None
        assert solved.frozen.fingerprint() == solved.tree.fingerprint()
        clone = pickle.loads(pickle.dumps(solved))
        assert clone.frozen is None  # a cache, not part of the identity
        assert clone.tree.fingerprint() == solved.tree.fingerprint()
