"""Tests for Parikh images, π(r) membership and min_ext (Prop 5.3, Section 6.1)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.regexlang import (in_permutation_language, minimal_extensions,
                             parse_regex, parikh_vector, regex_to_nfa,
                             semilinear_of)


class TestParikhVector:
    def test_counts(self):
        assert parikh_vector("aabac") == {"a": 3, "b": 1, "c": 1}
        assert parikh_vector([]) == {}


class TestPermutationLanguage:
    @pytest.mark.parametrize("pattern, word, expected", [
        ("(a b)*", "ab", True),
        ("(a b)*", "ba", True),          # permutations count (paper's π((ab)*))
        ("(a b)*", "aab", False),        # counts must balance
        ("(a b)*", "aabb", True),
        ("(a b c)*", "cba", True),
        ("a | a a b*", "aa", True),
        ("a | a a b*", "ab", False),
        ("a | a a b*", "aabbb", True),
        ("b c+ d* e?", "cb", True),
        ("b c+ d* e?", "b", False),
        ("(B C)*", "BB", False),         # Example 6.13
        ("(B C)*", "BCCB", True),
    ])
    def test_membership(self, pattern, word, expected):
        assert in_permutation_language(list(word), parse_regex(pattern)) is expected

    def test_anbn_shape(self):
        # π((ab)*) contains exactly the words with equally many a's and b's.
        expr = parse_regex("(a b)*")
        sl = semilinear_of(expr)
        for n_a in range(4):
            for n_b in range(4):
                assert sl.contains({"a": n_a, "b": n_b}) is (n_a == n_b)

    def test_reuse_of_precomputed_semilinear(self):
        expr = parse_regex("(a b)* c")
        sl = semilinear_of(expr)
        assert in_permutation_language(["c", "b", "a"], expr, sl)
        assert not in_permutation_language(["c", "c"], expr, sl)


class TestCoverabilityAndMinExt:
    def test_min_ext_paper_example(self):
        # min_ext(b, (bbc)*) = {bbc} up to permutation (a single count vector).
        result = minimal_extensions(["b"], parse_regex("(b b c)*"))
        assert result == [{"b": 2, "c": 1}]

    def test_min_ext_empty_when_unreachable(self):
        # min_ext(bb, b c+) = ∅ (the paper's motivating example for rep).
        assert minimal_extensions(["b", "b"], parse_regex("b c+")) == []

    def test_min_ext_multiple_incomparable(self):
        result = minimal_extensions([], parse_regex("a a | b"))
        as_sets = {tuple(sorted(v.items())) for v in result}
        assert as_sets == {(("a", 2),), (("b", 1),)}

    def test_min_ext_of_empty_word(self):
        result = minimal_extensions([], parse_regex("(B C)*"))
        assert result == [{}]

    def test_coverable(self):
        sl = semilinear_of(parse_regex("(a b)*"))
        assert sl.coverable({"a": 3})
        assert not sl.coverable({"a": 1}, forbidden=["b"])
        sl2 = semilinear_of(parse_regex("a b?"))
        assert not sl2.coverable({"a": 2})

    def test_symbol_count_unbounded(self):
        sl = semilinear_of(parse_regex("a b*"))
        assert sl.symbol_count_unbounded("b")
        assert not sl.symbol_count_unbounded("a")

    def test_max_base_count(self):
        sl = semilinear_of(parse_regex("a | a a b*"))
        assert sl.max_base_count("a") == 2


# --------------------------------------------------------------------- #
# Property-based validation against the NFA semantics
# --------------------------------------------------------------------- #

_REGEXES = [
    "(a b)*", "a | a a b*", "b c+ d* e?", "(b*|c*)", "(b c)* (d e)*",
    "a* b* c", "a (b | c)*", "(a a)*",
]


@st.composite
def _regex_and_word(draw):
    pattern = draw(st.sampled_from(_REGEXES))
    expr = parse_regex(pattern)
    alphabet = sorted(expr.alphabet())
    word = draw(st.lists(st.sampled_from(alphabet), max_size=7))
    return expr, word


@settings(max_examples=150, deadline=None)
@given(_regex_and_word())
def test_permutation_membership_agrees_with_nfa_enumeration(case):
    """w ∈ π(r) iff some permutation of w is accepted by the NFA of r
    (checked by explicit enumeration for short words)."""
    expr, word = case
    nfa = regex_to_nfa(expr)
    expected = any(nfa.accepts(list(perm))
                   for perm in set(itertools.permutations(word)))
    assert in_permutation_language(word, expr) is expected


@settings(max_examples=100, deadline=None)
@given(_regex_and_word())
def test_accepted_words_are_in_pi(case):
    """Every word accepted by the NFA is (trivially) in π(r)."""
    expr, word = case
    nfa = regex_to_nfa(expr)
    if nfa.accepts(word):
        assert in_permutation_language(word, expr)


@settings(max_examples=80, deadline=None)
@given(_regex_and_word())
def test_minimal_extensions_dominate_and_belong(case):
    expr, word = case
    sl = semilinear_of(expr)
    base = parikh_vector(word)
    for extension in minimal_extensions(word, expr, sl):
        assert sl.contains(extension)
        assert all(extension.get(s, 0) >= c for s, c in base.items())
