"""Property-based tests across modules (hypothesis).

These tests exercise the core invariants of the paper on randomly generated
inputs:

* the canonical solution, when it exists, is always an unordered solution
  (Lemma 6.5 a), and ordering it preserves solution-hood (Proposition 5.2);
* certain answers computed on the canonical solution are contained in the
  answers of *every* concrete solution we can construct (soundness of
  Lemma 6.5 b);
* DTD trimming (Lemma 2.2) preserves conformance of concrete trees;
* the repair machinery of Section 6.1 only produces members of π(r).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.exchange import canonical_solution, certain_answers, order_tree
from repro.patterns import exists, parse_pattern, pattern_query
from repro.regexlang import analyse, parse_regex
from repro.workloads import library, nested_relational
from repro.xmlmodel import DTD


# --------------------------------------------------------------------- #
# Exchange pipeline invariants on the library workload
# --------------------------------------------------------------------- #

@settings(max_examples=20, deadline=None)
@given(n_books=st.integers(min_value=0, max_value=8),
       authors=st.integers(min_value=0, max_value=3),
       seed=st.integers(min_value=0, max_value=10_000))
def test_canonical_solution_is_always_a_solution(n_books, authors, seed):
    setting = library.library_setting()
    source = library.generate_source(n_books, authors_per_book=authors, seed=seed)
    assert setting.source_dtd.conforms(source)
    result = canonical_solution(setting, source)
    assert result.success
    assert setting.is_unordered_solution(source, result.tree)
    ordered = order_tree(result.tree, setting.target_dtd)
    assert setting.is_solution(source, ordered)


@settings(max_examples=15, deadline=None)
@given(n_books=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
def test_certain_answers_hold_in_every_constructed_solution(n_books, seed):
    """Soundness: a certain answer is an answer of the canonical solution and
    of any solution obtained by adding extra (permitted) target content."""
    setting = library.library_setting()
    source = library.generate_source(n_books, authors_per_book=2, seed=seed)
    query = pattern_query(parse_pattern("bib[writer(@name=w)[work(@title=t)]]"))
    outcome = certain_answers(setting, source, query)
    assert outcome.has_solution
    # Enlarge the canonical solution with an unrelated writer: still a solution,
    # and it must still contain every certain answer.
    enlarged = outcome.canonical.copy()
    extra = enlarged.add_child(enlarged.root, "writer", {"name": "Extra-Writer"})
    enlarged.add_child(extra, "work", {"title": "Extra-Book", "year": "2001"})
    assert setting.is_unordered_solution(source, enlarged)
    enlarged_answers = query.answers(enlarged)
    assert outcome.answers <= enlarged_answers


@settings(max_examples=10, deadline=None)
@given(levels=st.integers(min_value=1, max_value=2),
       branching=st.integers(min_value=1, max_value=3),
       fanout=st.integers(min_value=1, max_value=4))
def test_scaling_workload_pipeline(levels, branching, fanout):
    setting = nested_relational.scaling_setting(levels, branching, n_stds=2)
    source = nested_relational.scaling_source(setting, fanout=fanout)
    result = canonical_solution(setting, source)
    assert result.success
    assert setting.is_unordered_solution(source, result.tree)


# --------------------------------------------------------------------- #
# Regex / repair invariants
# --------------------------------------------------------------------- #

_RULE_POOL = ["(a b)*", "a? b* c+", "(a|b|c)*", "a b?", "(b c)* (d e)*",
              "b c+ d* e?", "a | a a b*"]


@settings(max_examples=60, deadline=None)
@given(pattern=st.sampled_from(_RULE_POOL),
       counts=st.dictionaries(st.sampled_from("abcde"),
                              st.integers(min_value=1, max_value=3), max_size=3))
def test_repairs_are_members_of_pi(pattern, counts):
    analysis = analyse(parse_regex(pattern))
    for repair in analysis.repairs(counts):
        assert analysis.permutation_contains(repair)


@settings(max_examples=60, deadline=None)
@given(pattern=st.sampled_from(_RULE_POOL),
       counts=st.dictionaries(st.sampled_from("abcde"),
                              st.integers(min_value=1, max_value=3), max_size=3))
def test_maximum_repair_is_maximal(pattern, counts):
    analysis = analyse(parse_regex(pattern))
    maximum = analysis.maximum_repair(counts)
    if maximum is not None:
        from repro.regexlang import preorder_leq
        for other in analysis.repairs(counts):
            assert preorder_leq(other, maximum, counts)


@settings(max_examples=40, deadline=None)
@given(pattern=st.sampled_from(_RULE_POOL))
def test_c_value_nonnegative_and_univocality_consistent(pattern):
    expr = parse_regex(pattern)
    analysis = analyse(expr)
    c = analysis.c_value()
    assert c >= 0
    if c >= 2:
        assert not analysis.is_univocal()


# --------------------------------------------------------------------- #
# DTD trimming (Lemma 2.2)
# --------------------------------------------------------------------- #

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_trimming_preserves_conformance_of_sampled_trees(seed):
    rng = random.Random(seed)
    # A DTD with a type (`dead`) that can never occur in a finite tree.
    dtd = DTD("r", {"r": "a* (dead | EPSILON)", "a": "b?", "b": "",
                    "dead": "dead"})
    trimmed = dtd.trimmed()
    # Sample a few conforming trees and check they conform to the trimmed DTD.
    from repro.xmlmodel import XMLTree
    tree = XMLTree("r", ordered=True)
    for _ in range(rng.randint(0, 4)):
        a_node = tree.add_child(tree.root, "a")
        if rng.random() < 0.5:
            tree.add_child(a_node, "b")
    assert dtd.conforms(tree)
    assert trimmed.conforms(tree)
    assert trimmed.is_consistent()
