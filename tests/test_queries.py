"""Tests for the CTQ / CTQ// / CTQ∪ / CTQ//,∪ query classes (Section 5)."""

import pytest

from repro.patterns import (classify_query, conjunction, exists, parse_pattern,
                            pattern_query, union_query)
from repro.workloads import library
from repro.xmlmodel import XMLTree
from repro.xmlmodel.values import Null


@pytest.fixture
def source():
    return library.figure_1_source()


def test_pattern_query_answers(source):
    query = pattern_query(parse_pattern("book(@title=x)[author(@name=y)]"))
    assert query.free_variables() == ["x", "y"]
    answers = query.answers(source)
    assert ("Computational Complexity", "Papadimitriou") in answers
    assert len(answers) == 3


def test_exists_projects_variables(source):
    # ψ(x) = ∃y book(@title=x)[author(@name=y)] — Section 5 example.
    inner = pattern_query(parse_pattern("book(@title=x)[author(@name=y)]"))
    query = exists(["y"], inner)
    assert query.free_variables() == ["x"]
    assert query.answers(source) == {("Combinatorial Optimization",),
                                     ("Computational Complexity",)}


def test_conjunction_joins_on_shared_variables(source):
    query = conjunction(
        pattern_query(parse_pattern("book(@title=x)[author(@name=y)]")),
        pattern_query(parse_pattern('book(@title="Computational Complexity")[author(@name=y)]')),
    )
    answers = query.answers(source, ["x", "y"])
    # y is forced to be an author of "Computational Complexity", i.e. Papadimitriou.
    assert all(y == "Papadimitriou" for _, y in answers)
    assert ("Combinatorial Optimization", "Papadimitriou") in answers


def test_union_query(source):
    q1 = pattern_query(parse_pattern('book(@title=x)[author(@name="Steiglitz")]'))
    q2 = pattern_query(parse_pattern('book(@title=x)[author(@name="Papadimitriou")]'))
    query = union_query(q1, q2)
    assert query.answers(source) == {("Combinatorial Optimization",),
                                     ("Computational Complexity",)}


def test_union_requires_same_free_variables():
    q1 = pattern_query(parse_pattern("book(@title=x)"))
    q2 = pattern_query(parse_pattern("author(@name=y)"))
    with pytest.raises(ValueError):
        union_query(q1, q2)


def test_boolean_query(source):
    query = exists(["x"], pattern_query(parse_pattern('book(@title=x)')))
    assert query.is_boolean()
    assert query.holds(source)
    missing = exists(["x"], pattern_query(parse_pattern('journal(@title=x)')))
    assert not missing.holds(source)


def test_classification():
    ctq = pattern_query(parse_pattern("r[a(@x=v)]"))
    ctq_desc = pattern_query(parse_pattern("r[//a(@x=v)]"))
    assert classify_query(ctq) == "CTQ"
    assert classify_query(ctq_desc) == "CTQ//"
    assert classify_query(union_query(ctq, ctq)) == "CTQ∪"
    assert classify_query(union_query(ctq_desc, ctq_desc)) == "CTQ//,∪"


def test_answers_include_nulls_until_filtered():
    tree = XMLTree.build(("r", [("a", {"v": Null(7)})]))
    query = pattern_query(parse_pattern("a(@v=x)"))
    assert query.answers(tree) == {(Null(7),)}


def test_nested_exists_and_order():
    tree = XMLTree.build(("r", [("a", {"u": "1", "v": "2"})]))
    query = exists(["u"], pattern_query(parse_pattern("a(@u=u, @v=v)")))
    assert query.answers(tree, ["v"]) == {("2",)}
