"""Async error propagation through the serving layer.

The contract (mirroring ``test_error_paths.py`` one layer up): an exception
raised inside a shard — ``ChaseError`` from a non-univocal merge, a
precondition ``ValueError`` — surfaces **unchanged** from the ``await``-side
single-request calls on every executor, while in a mixed batch it marks only
the slot of the request that raised, leaving batch neighbours (on the same
and on other shards) untouched.  ``NoSolutionError`` keeps its two-level
shape: a failed-but-defined result from the service, raised only when the
caller demands the payload (``EngineResult.unwrap``).
"""

import asyncio

import pytest

from repro import (ChaseError, DataExchangeSetting, DTD, NoSolutionError,
                   XMLTree, std)
from repro.patterns.parse import parse_pattern
from repro.patterns.queries import pattern_query
from repro.service import (AsyncExchangeService, UnknownSettingError,
                           certain_answers_request, consistency_request,
                           solve_request)
from repro.workloads import library


@pytest.fixture
def non_univocal_setting():
    """Target rule ``r → a a`` is non-univocal: merging three ``a``-children
    down to two is outside the chase's class and raises ``ChaseError``."""
    source = DTD("db", {"db": "rec*", "rec": ""}, {"rec": ["v"]})
    target = DTD("r", {"r": "a a", "a": ""}, {"a": ["v"]})
    return DataExchangeSetting(source, target,
                               [std("r[a(@v=x)]", "db[rec(@v=x)]")])


@pytest.fixture
def three_records():
    return XMLTree.build(("db", [("rec", {"v": "1"}), ("rec", {"v": "2"}),
                                 ("rec", {"v": "3"})]))


@pytest.fixture
def clash_setting():
    """Two distinct titles forced into one target slot: a clean no-solution
    outcome (reported, not raised)."""
    source = DTD("db", {"db": "book*", "book": ""}, {"book": ["title"]})
    target = DTD("lib", {"lib": "item", "item": ""}, {"item": ["t"]})
    return DataExchangeSetting(source, target,
                               [std("lib[item(@t=x)]", "db[book(@title=x)]")])


@pytest.fixture
def clash_tree():
    return XMLTree.build(("db", [("book", {"title": "A"}),
                                 ("book", {"title": "B"})]))


R_QUERY = pattern_query(parse_pattern("r[a(@v=w)]"))
LIB_QUERY = pattern_query(parse_pattern("lib[item(@t=w)]"))


def run(coroutine):
    return asyncio.run(coroutine)


class TestAwaitSidePropagation:
    @pytest.mark.parametrize("executor,parallel", [
        ("serial", 1), ("thread", 2), ("process", 2)])
    def test_chase_error_surfaces_unchanged(self, non_univocal_setting,
                                            three_records, executor,
                                            parallel):
        async def scenario():
            async with AsyncExchangeService(executor=executor,
                                            parallel=parallel) as service:
                fingerprint = service.register(non_univocal_setting)
                with pytest.raises(ChaseError, match="not univocal"):
                    await service.certain_answers(fingerprint, three_records,
                                                  R_QUERY)
                with pytest.raises(ChaseError, match="not univocal"):
                    await service.solve(fingerprint, three_records)
                # ... and the cache never stores (or masks) the exception.
                with pytest.raises(ChaseError, match="not univocal"):
                    await service.certain_answers(fingerprint, three_records,
                                                  R_QUERY)
                return service.stats()["shards"][fingerprint]

        shard_stats = run(scenario())
        assert shard_stats["errors"] == 3
        assert shard_stats["result_cache_entries"] == 0

    def test_no_solution_is_reported_not_raised(self, clash_setting,
                                                clash_tree):
        async def scenario():
            async with AsyncExchangeService() as service:
                fingerprint = service.register(clash_setting)
                return await service.certain_answers(fingerprint, clash_tree,
                                                     LIB_QUERY)

        result = run(scenario())
        assert not result.ok
        assert result.detail == "the source tree has no solution"
        with pytest.raises(NoSolutionError):
            result.unwrap()

    def test_unknown_fingerprint_raises_from_await(self, clash_tree):
        async def scenario():
            async with AsyncExchangeService() as service:
                with pytest.raises(UnknownSettingError,
                                   match="no setting registered"):
                    await service.solve("f" * 64, clash_tree)

        run(scenario())


class TestMixedBatchIsolation:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_failure_marks_only_its_own_slot(self, non_univocal_setting,
                                             three_records, library_setting,
                                             executor):
        """A ChaseError on one shard leaves same-shard and cross-shard
        neighbours fully served."""
        ok_tree = library.generate_source(3, authors_per_book=2, seed=1)
        ok_query = library.query_writer_of("Book-0")
        small = XMLTree.build(("db", [("rec", {"v": "1"})]))

        async def scenario():
            async with AsyncExchangeService(executor=executor,
                                            parallel=3) as service:
                bad_fp = service.register(non_univocal_setting)
                lib_fp = service.register(library_setting)
                requests = [
                    certain_answers_request(lib_fp, ok_tree, ok_query),
                    certain_answers_request(bad_fp, three_records, R_QUERY),
                    solve_request(bad_fp, small),      # same shard, fine
                    consistency_request(bad_fp),       # same shard, fine
                    certain_answers_request(lib_fp, ok_tree, ok_query),
                ]
                return await service.batch(requests)

        slots = run(scenario())
        assert [slot.failed for slot in slots] == \
            [False, True, False, False, False]
        assert isinstance(slots[1].error, ChaseError)
        with pytest.raises(ChaseError, match="not univocal"):
            slots[1].unwrap()
        assert slots[0].result.payload == slots[4].result.payload != set()
        assert slots[2].ok and slots[3].ok

    def test_unknown_fingerprint_fails_only_its_group(self, library_setting):
        ok_tree = library.generate_source(2, authors_per_book=1, seed=2)
        ok_query = library.query_writer_of("Book-0")

        async def scenario():
            async with AsyncExchangeService() as service:
                lib_fp = service.register(library_setting)
                requests = [
                    certain_answers_request(lib_fp, ok_tree, ok_query),
                    consistency_request("f" * 64),
                    consistency_request(lib_fp),
                ]
                return await service.batch(requests)

        slots = run(scenario())
        assert [slot.failed for slot in slots] == [False, True, False]
        assert isinstance(slots[1].error, UnknownSettingError)

    def test_return_exceptions_false_reraises_after_settling(
            self, non_univocal_setting, three_records, library_setting):
        ok_tree = library.generate_source(2, authors_per_book=1, seed=3)
        ok_query = library.query_writer_of("Book-0")

        async def scenario():
            async with AsyncExchangeService() as service:
                bad_fp = service.register(non_univocal_setting)
                lib_fp = service.register(library_setting)
                with pytest.raises(ChaseError, match="not univocal"):
                    await service.batch(
                        [certain_answers_request(lib_fp, ok_tree, ok_query),
                         certain_answers_request(bad_fp, three_records,
                                                 R_QUERY)],
                        return_exceptions=False)
                # The healthy shard still did (and cached) its work.
                stats = service.stats()["shards"][lib_fp]
                assert stats["requests"] == 1 and stats["errors"] == 0

        run(scenario())

    def test_process_executor_batch_isolates_failures(
            self, non_univocal_setting, three_records, library_setting):
        """Worker-raised exceptions cross the process boundary into their
        slot only."""
        ok_tree = library.generate_source(2, authors_per_book=1, seed=4)
        ok_query = library.query_writer_of("Book-0")

        async def scenario():
            async with AsyncExchangeService(executor="process",
                                            parallel=2) as service:
                bad_fp = service.register(non_univocal_setting)
                lib_fp = service.register(library_setting)
                return await service.batch(
                    [certain_answers_request(bad_fp, three_records, R_QUERY),
                     certain_answers_request(lib_fp, ok_tree, ok_query)])

        slots = run(scenario())
        assert slots[0].failed and isinstance(slots[0].error, ChaseError)
        assert slots[1].ok
