"""Tests for canonical pre-solutions and the chase (Section 6.1, Figures 5–8)."""

import pytest

from repro.exchange import (DataExchangeSetting, canonical_pre_solution,
                            canonical_solution, chase, pattern_to_tree, std)
from repro.exchange.presolution import PreSolutionError
from repro.patterns import parse_pattern
from repro.xmlmodel import DTD, XMLTree
from repro.xmlmodel.values import is_null


class TestPatternToTree:
    def test_instantiation(self):
        pattern = parse_pattern("r[A(@x=u), B[C(@n=v, @m=w)]]")
        tree = pattern_to_tree(pattern, {"u": "4", "v": "5", "w": "6"})
        assert tree.label(tree.root) == "r"
        assert sorted(tree.children_labels(tree.root)) == ["A", "B"]

    def test_fresh_nulls_for_unbound_variables(self):
        pattern = parse_pattern("r[A(@x=u, @y=z)]")
        tree = pattern_to_tree(pattern, {"u": "4"})
        a_node = tree.children(tree.root)[0]
        assert tree.attribute(a_node, "x") == "4"
        assert is_null(tree.attribute(a_node, "y"))

    def test_rejects_descendant_and_wildcard(self):
        with pytest.raises(PreSolutionError):
            pattern_to_tree(parse_pattern("r[//a]"), {})
        with pytest.raises(PreSolutionError):
            pattern_to_tree(parse_pattern("r[_]"), {})


class TestExample63:
    """Example 6.3 / Figure 5: two STDs instantiated on one source A node."""

    def setup_method(self):
        source_dtd = DTD("r", {"r": "A*"}, {"A": ["a", "b", "c"]})
        target_dtd = DTD("r", {"r": "(A B E)*", "A": "", "B": "C* D*",
                               "C": "", "D": "", "E": ""},
                         {"A": ["x"], "C": ["n", "m"], "E": ["m"]})
        std1 = std("r[A(@x=x), B[C(@n=y, @m=z)]]", "r[A(@a=x, @b=y, @c=z)]")
        std2 = std("r[B[C, D], E(@m=y)]", "r[A(@a=x, @b=y, @c=z)]")
        self.setting = DataExchangeSetting(source_dtd, target_dtd, [std1, std2])
        self.source = XMLTree.build(("r", [("A", {"a": "4", "b": "5", "c": "6"})]))

    def test_cps_structure_matches_figure_5(self):
        cps = canonical_pre_solution(self.setting, self.source)
        labels = sorted(cps.children_labels(cps.root))
        # Figure 5 (d): the merged root has children A, B (from ψ1) and B, E (from ψ2).
        assert labels == ["A", "B", "B", "E"]
        a_node = [c for c in cps.children(cps.root) if cps.label(c) == "A"][0]
        assert cps.attribute(a_node, "x") == "4"
        e_node = [c for c in cps.children(cps.root) if cps.label(c) == "E"][0]
        assert cps.attribute(e_node, "m") == "5"
        b_nodes = [c for c in cps.children(cps.root) if cps.label(c) == "B"]
        grandchildren = sorted(label for b in b_nodes
                               for label in cps.children_labels(b))
        assert grandchildren == ["C", "C", "D"]


class TestExample64Figure6:
    """Example 6.4 / 6.13, Figures 6 and 8: the full chase trace."""

    def test_cps(self, figure_6_setting, figure_6_source):
        cps = canonical_pre_solution(figure_6_setting, figure_6_source)
        assert cps.children_labels(cps.root) == ["B", "B"]
        values = sorted(cps.attribute(c, "m") for c in cps.children(cps.root))
        assert values == ["1", "2"]

    def test_canonical_solution_matches_figure_6e(self, figure_6_setting, figure_6_source):
        result = canonical_solution(figure_6_setting, figure_6_source)
        assert result.success
        tree = result.tree
        labels = sorted(tree.children_labels(tree.root))
        # Figure 6 (e): B B C C under the root …
        assert labels == ["B", "B", "C", "C"]
        c_nodes = [c for c in tree.children(tree.root) if tree.label(c) == "C"]
        for c_node in c_nodes:
            # … each C has a D child carrying a fresh null @n.
            assert tree.children_labels(c_node) == ["D"]
            d_node = tree.children(c_node)[0]
            assert is_null(tree.attribute(d_node, "n"))
        # Distinct nulls ⊥1, ⊥2 on the two D nodes.
        nulls = {tree.attribute(tree.children(c)[0], "n") for c in c_nodes}
        assert len(nulls) == 2
        # The result is a genuine (unordered) solution.
        assert figure_6_setting.is_unordered_solution(figure_6_source, tree)
        # And it conforms to the target DTD in the weak sense.
        assert figure_6_setting.target_dtd.weakly_conforms(tree)

    def test_chase_steps_are_recorded(self, figure_6_setting, figure_6_source):
        result = canonical_solution(figure_6_setting, figure_6_source)
        rules = {step.rule for step in result.steps}
        assert rules == {"ChangeAtt", "ChangeReg"}


class TestChaseFailure:
    def test_attribute_clash_failure(self):
        """Two source values forced onto the single allowed child: merging
        clashes on constants, so there is no solution (Lemma 6.15 b)."""
        source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
        target_dtd = DTD("r", {"r": "B", "B": ""}, {"B": ["m"]})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("r[B(@m=x)]", "A(@a=x)")])
        source = XMLTree.build(("r", [("A", {"a": "1"}), ("A", {"a": "2"})]))
        result = canonical_solution(setting, source)
        assert not result.success
        assert "clash" in result.failure

    def test_merge_succeeds_on_equal_constants(self):
        source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
        target_dtd = DTD("r", {"r": "B", "B": ""}, {"B": ["m"]})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("r[B(@m=x)]", "A(@a=x)")])
        source = XMLTree.build(("r", [("A", {"a": "1"}), ("A", {"a": "1"})]))
        result = canonical_solution(setting, source)
        assert result.success
        b_nodes = [c for c in result.tree.children(result.tree.root)]
        assert len(b_nodes) == 1
        assert result.tree.attribute(b_nodes[0], "m") == "1"

    def test_forbidden_attribute_failure(self):
        """The STD forces an attribute the target DTD does not allow."""
        source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
        target_dtd = DTD("r", {"r": "B*", "B": ""}, {})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("r[B(@m=x)]", "A(@a=x)")])
        source = XMLTree.build(("r", [("A", {"a": "1"})]))
        result = canonical_solution(setting, source)
        assert not result.success
        assert "not allowed" in result.failure

    def test_unrepairable_children_failure(self):
        """rep(w, r) = ∅: the forced child type cannot appear at all."""
        source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
        target_dtd = DTD("r", {"r": "C", "C": "", "B": ""}, {"B": ["m"], "C": []})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("r[B(@m=x)]", "A(@a=x)")])
        source = XMLTree.build(("r", [("A", {"a": "1"})]))
        result = canonical_solution(setting, source)
        assert not result.success
        assert "repaired" in result.failure

    def test_non_fully_specified_rejected(self):
        source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
        target_dtd = DTD("r", {"r": "B*", "B": ""}, {"B": ["m"]})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("B(@m=x)", "A(@a=x)")])
        source = XMLTree.build(("r", [("A", {"a": "1"})]))
        with pytest.raises(PreSolutionError):
            canonical_pre_solution(setting, source)


class TestLibraryScenario:
    def test_canonical_solution_of_figure_2(self, library_setting, figure_1_source):
        result = canonical_solution(library_setting, figure_1_source)
        assert result.success
        tree = result.tree
        # Three (book, author) pairs → three writer children.
        assert tree.children_labels(tree.root) == ["writer", "writer", "writer"]
        years = [tree.attribute(work, "year")
                 for writer in tree.children(tree.root)
                 for work in tree.children(writer)]
        assert all(is_null(year) for year in years)
        assert library_setting.is_unordered_solution(figure_1_source, tree)

    def test_chase_is_idempotent_on_solutions(self, library_setting, figure_1_source):
        first = canonical_solution(library_setting, figure_1_source)
        again = chase(library_setting.target_dtd, first.tree)
        assert again.success
        assert again.tree.equals(first.tree, respect_order=False)
