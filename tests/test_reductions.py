"""Tests for the hardness gadgets (Theorem 5.11, Lemma 6.20) and the SAT substrate."""

import itertools

import pytest

from repro.reductions import lemma_6_20, theorem_5_11
from repro.reductions.sat import CNFFormula, dpll_satisfiable, random_3cnf


# --------------------------------------------------------------------- #
# SAT substrate
# --------------------------------------------------------------------- #

class TestSat:
    def test_dpll_on_satisfiable(self):
        formula = CNFFormula.of([(1, 2, -3), (-1, 2, 3), (1, -2, 3)])
        assignment = dpll_satisfiable(formula)
        assert assignment is not None
        assert formula.evaluate(assignment)

    def test_dpll_on_unsatisfiable(self):
        clauses = [tuple(v if s else -v for v, s in zip((1, 2, 3), signs))
                   for signs in itertools.product([True, False], repeat=3)]
        assert dpll_satisfiable(CNFFormula.of(clauses)) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_dpll_agrees_with_brute_force(self, seed):
        formula = random_3cnf(4, 8, seed=seed)
        brute = any(formula.evaluate(dict(zip(formula.variables, values)))
                    for values in itertools.product([True, False],
                                                    repeat=formula.n_variables))
        assert (dpll_satisfiable(formula) is not None) is brute

    def test_literal_codes_are_injective(self):
        formula = CNFFormula.of([(1, 2, -3)])
        codes = formula.literal_codes()
        assert len(set(codes.values())) == len(codes)

    def test_random_3cnf_shape(self):
        formula = random_3cnf(5, 10, seed=1)
        assert len(formula.clauses) == 10
        assert formula.is_3cnf()


# --------------------------------------------------------------------- #
# Theorem 5.11, class STD(_, //)
# --------------------------------------------------------------------- #

SAT_FORMULA = CNFFormula.of([(1, 2, -3), (-2, 3, -4)])            # satisfiable
UNSAT_CORE = CNFFormula.of([tuple(v if s else -v for v, s in zip((1, 2, 3), signs))
                            for signs in itertools.product([True, False], repeat=3)])


class TestTheorem511:
    def test_encoding_conforms_to_simple_source_dtd(self):
        gadget = theorem_5_11.build_gadget()
        tree = theorem_5_11.encode_formula(SAT_FORMULA)
        assert gadget.setting.source_dtd.conforms(tree)
        # The DTDs impose no cardinality constraints (the paper calls them
        # "simple"): every content model is a product of starred symbols.
        assert gadget.setting.source_dtd.is_nested_relational()
        assert gadget.setting.target_dtd.is_nested_relational()

    def test_std_class(self):
        gadget = theorem_5_11.build_gadget()
        classes = gadget.setting.std_classes()
        assert "STD(_,//)" in classes  # the second STD is not root-anchored
        assert not gadget.setting.is_fully_specified()

    def test_satisfying_assignment_yields_query_free_solution(self):
        gadget = theorem_5_11.build_gadget()
        source = theorem_5_11.encode_formula(SAT_FORMULA)
        assignment = dpll_satisfiable(SAT_FORMULA)
        solution = theorem_5_11.solution_from_assignment(SAT_FORMULA, assignment)
        assert gadget.setting.is_unordered_solution(source, solution)
        # T' ⊭ Q ⇒ certain(Q, T_θ) = false — the formula is satisfiable.
        assert not gadget.query.holds(solution)

    def test_conflicting_assignment_triggers_query(self):
        gadget = theorem_5_11.build_gadget()
        # Clause 1 = (x2 ∨ x3 ∨ x1) with x1 true → its chain marks x1 with 1;
        # clause 2 = (¬x1 ∨ x2 ∨ x3) is falsified, so the construction falls
        # back to its *first* literal ¬x1 → ¬x1 is also marked with 1.  The
        # query detects the complementary pair, mirroring the (⇐) direction.
        formula = CNFFormula.of([(2, 3, 1), (-1, 2, 3)])
        assignment = {1: True, 2: False, 3: False}
        solution = theorem_5_11.solution_from_assignment(formula, assignment)
        source = theorem_5_11.encode_formula(formula)
        assert gadget.setting.is_unordered_solution(source, solution)
        assert gadget.query.holds(solution)

    def test_rejects_non_3cnf(self):
        with pytest.raises(ValueError):
            theorem_5_11.encode_formula(CNFFormula.of([(1, 2)]))


# --------------------------------------------------------------------- #
# Lemma 6.20 (c(r) ≥ 2)
# --------------------------------------------------------------------- #

class TestLemma620:
    def test_rejects_small_c(self):
        with pytest.raises(ValueError):
            lemma_6_20.build_gadget("(a|b)*")

    @pytest.mark.parametrize("regex", ["a | a a b*", "a a b*", "a a c d*"])
    def test_gadget_construction(self, regex):
        gadget = lemma_6_20.build_gadget(regex)
        assert gadget.k >= 2
        assert gadget.setting.is_fully_specified()
        assert gadget.setting.source_dtd.is_nested_relational()
        tree = lemma_6_20.encode_formula(gadget, SAT_FORMULA)
        assert gadget.setting.source_dtd.conforms(tree)

    def test_satisfying_assignment_yields_query_free_solution(self):
        gadget = lemma_6_20.build_gadget("a | a a b*")
        source = lemma_6_20.encode_formula(gadget, SAT_FORMULA)
        assignment = dpll_satisfiable(SAT_FORMULA)
        solution = lemma_6_20.solution_from_assignment(gadget, SAT_FORMULA, assignment)
        assert gadget.setting.is_unordered_solution(source, solution)
        assert not gadget.query.holds(solution)

    def test_falsifying_assignment_makes_query_true(self):
        gadget = lemma_6_20.build_gadget("a | a a b*")
        # x1 = x2 = x3 = False falsifies the clause (1, 2, 3): all its literals
        # end up assigned 0, which is exactly what the query looks for.
        formula = CNFFormula.of([(1, 2, 3)])
        assignment = {1: False, 2: False, 3: False}
        solution = lemma_6_20.solution_from_assignment(gadget, formula, assignment)
        source = lemma_6_20.encode_formula(gadget, formula)
        assert gadget.setting.is_unordered_solution(source, solution)
        assert gadget.query.holds(solution)

    def test_witness_vector_is_fixed(self):
        gadget = lemma_6_20.build_gadget("a | a a b*")
        from repro.regexlang import analyse
        analysis = analyse(gadget.regex)
        assert analysis.permutation_contains(gadget.witness_vector)
        assert gadget.witness_vector[gadget.pivot] == gadget.k
