"""Executor parity: serial, thread and process batches agree exactly.

The three executors of ``certain_answers_batch`` / ``solve_batch`` differ
only in *where* the per-tree work runs; the observable results — success
flags, answer sets, strategies, details, order — must be identical on the
same generated batch.  Fresh engines are used per executor so no result
cache blurs the comparison, plus one shared-engine pass proving the cache
makes repeated process batches converge with everything else.
"""

import pytest

from repro import ExchangeEngine, compile_setting
from repro.generators import generate_scenario
from repro.workloads import library

#: (scenario seed, profile) pairs for the sweep; small but structurally
#: diverse (general profiles route consistency differently and produce
#: different chase shapes).
SWEEP = [(101, "nested_relational"), (202, "general"), (303, "mixed")]


def _payload_view(result):
    return (result.ok, result.payload, result.strategy, result.detail)


@pytest.mark.parametrize("seed,profile", SWEEP)
def test_certain_answers_batch_parity(seed, profile):
    scenario = generate_scenario(seed, profile=profile, n_trees=4)
    query = scenario.queries[0]
    trees = scenario.source_trees

    serial = ExchangeEngine(scenario.setting).certain_answers_batch(
        trees, query, executor="serial")
    threaded = ExchangeEngine(scenario.setting).certain_answers_batch(
        trees, query, parallel=3, executor="thread")
    processed = ExchangeEngine(scenario.setting).certain_answers_batch(
        trees, query, parallel=3, executor="process")

    assert len(serial) == len(threaded) == len(processed) == len(trees)
    for one, two, three in zip(serial, threaded, processed):
        assert _payload_view(one) == _payload_view(two) == _payload_view(three), \
            scenario.describe()


@pytest.mark.parametrize("seed,profile", SWEEP)
def test_solve_batch_parity(seed, profile):
    scenario = generate_scenario(seed, profile=profile, n_trees=4)
    trees = scenario.source_trees

    serial = ExchangeEngine(scenario.setting).solve_batch(
        trees, executor="serial")
    processed = ExchangeEngine(scenario.setting).solve_batch(
        trees, parallel=3, executor="process")

    for one, two in zip(serial, processed):
        assert one.ok == two.ok, scenario.describe()
        if one.ok:
            assert one.payload.equals(two.payload), scenario.describe()
        else:
            assert one.detail == two.detail, scenario.describe()


def test_elementwise_queries_keep_order_across_executors():
    scenario = generate_scenario(404, n_trees=3, n_queries=3)
    trees = scenario.source_trees
    queries = scenario.queries
    serial = ExchangeEngine(scenario.setting).certain_answers_batch(
        trees, queries, executor="serial")
    processed = ExchangeEngine(scenario.setting).certain_answers_batch(
        trees, queries, parallel=2, executor="process")
    for one, two in zip(serial, processed):
        assert _payload_view(one) == _payload_view(two)


def test_process_batch_fills_the_parent_result_cache():
    engine = ExchangeEngine(library.library_setting())
    trees = [library.generate_source(6, seed=s) for s in range(4)]
    query = library.query_writer_of("Book-0")

    first = engine.certain_answers_batch(trees, query, parallel=2,
                                         executor="process")
    assert engine.stats["result_cache_misses"] == len(trees)
    assert engine.stats["result_cache_hits"] == 0

    # Second batch — any executor — is served from the parent cache.
    second = engine.certain_answers_batch(trees, query, parallel=2,
                                          executor="process")
    assert engine.stats["result_cache_hits"] == len(trees)
    third = engine.certain_answers_batch(trees, query, executor="serial")
    assert engine.stats["result_cache_hits"] == 2 * len(trees)
    for one, two, three in zip(first, second, third):
        assert _payload_view(one) == _payload_view(two) == _payload_view(three)


def test_repeated_trees_within_one_process_batch_dispatch_once():
    engine = ExchangeEngine(library.library_setting())
    tree = library.generate_source(5, seed=9)
    query = library.query_writer_of("Book-0")
    results = engine.certain_answers_batch([tree, tree, tree], query,
                                           parallel=2, executor="process")
    assert all(_payload_view(r) == _payload_view(results[0]) for r in results)
    # Duplicates collapse onto one task — identical counters to the serial
    # path on the same input: one miss, two hits.
    assert engine.stats["result_cache_misses"] == 1
    assert engine.stats["result_cache_hits"] == 2
    serial_engine = ExchangeEngine(library.library_setting())
    serial_engine.certain_answers_batch([tree, tree, tree], query,
                                        executor="serial")
    assert (serial_engine.stats["result_cache_misses"],
            serial_engine.stats["result_cache_hits"]) == (1, 2)


def test_process_results_carry_the_parent_cache_snapshot():
    """Every EngineResult — whichever executor produced it — exposes the
    result_cache_* counters the engine docstring promises."""
    engine = ExchangeEngine(library.library_setting())
    trees = [library.generate_source(4, seed=s) for s in range(3)]
    query = library.query_writer_of("Book-0")
    results = engine.certain_answers_batch(trees, query, parallel=2,
                                           executor="process")
    for result in results:
        assert result.cache["result_cache_misses"] == len(trees)
        assert result.cache["result_cache_hits"] == 0
        assert "rule_cache_misses" in result.cache


def test_unknown_executor_rejected():
    engine = ExchangeEngine(library.library_setting())
    with pytest.raises(ValueError, match="unknown batch executor"):
        engine.certain_answers_batch([library.figure_1_source()],
                                     library.query_writer_of("X"),
                                     parallel=2, executor="gpu")


def test_shared_compiled_setting_across_executors():
    """One compiled setting can serve engines of every executor flavour."""
    scenario = generate_scenario(77)
    compiled = compile_setting(scenario.setting)
    query = scenario.queries[0]
    results = [
        ExchangeEngine(compiled).certain_answers_batch(
            scenario.source_trees, query, parallel=2, executor=name)
        for name in ("serial", "thread", "process")
    ]
    views = [[_payload_view(r) for r in batch] for batch in results]
    assert views[0] == views[1] == views[2]
