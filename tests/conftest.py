"""Shared fixtures: the paper's running examples.

The whole suite runs with ``REPRO_PLAN_VERIFY=1`` (unless the environment
says otherwise): every plan compiled anywhere in the tests passes through
:func:`repro.analysis.plancheck.verify_plan` at compile time, so a lowering
bug surfaces as a ``PlanVerificationError`` at the compile site instead of
as a wrong answer three layers later.
"""

import os

import pytest

from repro.workloads import library, nested_relational
from repro.xmlmodel import DTD, XMLTree
from repro.exchange import DataExchangeSetting, std


def pytest_configure(config):
    os.environ.setdefault("REPRO_PLAN_VERIFY", "1")


@pytest.fixture
def library_setting():
    """The Figure 1 / Figure 2 setting (Example 3.4)."""
    return library.library_setting()


@pytest.fixture
def figure_1_source():
    """The source document of Figure 1 (b)."""
    return library.figure_1_source()


@pytest.fixture
def company_setting():
    """The Clio-style nested-relational scenario."""
    return nested_relational.company_setting()


@pytest.fixture
def company_source():
    return nested_relational.generate_company_source(3, employees_per_dept=2,
                                                     projects_per_dept=2)


@pytest.fixture
def figure_6_setting():
    """The setting of Example 6.4 / Figure 6: target rule ``r → (B C)*`` with
    ``C → D`` forces the chase to invent C and D nodes."""
    source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
    target_dtd = DTD("r", {"r": "(B C)*", "B": "", "C": "D", "D": ""},
                     {"B": ["m"], "D": ["n"]})
    dependency = std("r[B(@m=x)]", "A(@a=x)")
    return DataExchangeSetting(source_dtd, target_dtd, [dependency])


@pytest.fixture
def figure_6_source():
    """The source tree of Figure 6 (c): two A nodes with values 1 and 2."""
    return XMLTree.build(("r", [("A", {"a": "1"}), ("A", {"a": "2"})]))
