"""Unit tests for the ScenarioForge generator subsystem (repro.generators).

Every generator must (a) be a pure function of its seed — identical seeds
give identical specs and fingerprints — and (b) deliver on its profile's
structural promises (nested-relational DTDs really are nested-relational,
generated trees really conform, generated STDs really are fully specified).
"""

import pytest

from repro import compile_setting
from repro.generators import (DTD_PROFILES, QUERY_KINDS, SCENARIO_PROFILES,
                              generate_dtd, generate_query, generate_scenario,
                              generate_std, generate_stds, generate_tree,
                              generate_trees, scenario_batch)
from repro.patterns.queries import classify_query

SEEDS = range(5)


class TestDeterminism:
    def test_dtd_same_seed_same_spec(self):
        for seed in SEEDS:
            for profile in DTD_PROFILES:
                first = generate_dtd(seed, profile)
                second = generate_dtd(seed, profile)
                assert first.spec == second.spec
                assert first.dtd.to_text() == second.dtd.to_text()

    def test_different_seeds_differ(self):
        specs = {repr(generate_dtd(seed, "nested_relational").spec)
                 for seed in range(20)}
        assert len(specs) > 15  # collisions are possible but must be rare

    def test_tree_same_seed_same_fingerprint(self):
        dtd = generate_dtd(1, "nested_relational").dtd
        for seed in SEEDS:
            first = generate_tree(dtd, seed)
            second = generate_tree(dtd, seed)
            assert first.tree.fingerprint() == second.tree.fingerprint()
            assert first.spec == second.spec

    def test_scenario_same_seed_same_spec(self):
        assert generate_scenario(7).spec == generate_scenario(7).spec

    def test_scenario_batch_is_reproducible(self):
        first = scenario_batch(4, seed=3)
        second = scenario_batch(4, seed=3)
        assert [s.spec for s in first] == [s.spec for s in second]
        assert len({s.seed for s in first}) == 4


class TestDTDProfiles:
    def test_nested_relational_profile(self):
        for seed in SEEDS:
            generated = generate_dtd(seed, "nested_relational")
            assert generated.dtd.is_nested_relational()
            assert generated.dtd.is_univocal()
            assert generated.dtd.is_satisfiable()

    def test_general_profile_is_satisfiable_and_nonrecursive(self):
        for seed in SEEDS:
            generated = generate_dtd(seed, "general")
            assert generated.dtd.is_satisfiable()
            assert not generated.dtd.is_recursive()

    def test_non_univocal_profile(self):
        for seed in SEEDS:
            generated = generate_dtd(seed, "non_univocal")
            assert not generated.dtd.is_univocal()

    def test_spec_rebuilds_the_dtd(self):
        from repro import DTD
        generated = generate_dtd(11, "general")
        rebuilt = DTD(generated.spec["root"], generated.spec["rules"],
                      generated.spec["attributes"])
        assert rebuilt.to_text() == generated.dtd.to_text()

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown DTD profile"):
            generate_dtd(0, "exotic")


class TestTrees:
    @pytest.mark.parametrize("profile", ["nested_relational", "general"])
    def test_generated_trees_conform(self, profile):
        for seed in SEEDS:
            dtd = generate_dtd(seed, profile).dtd
            for generated in generate_trees(dtd, 3, seed=seed * 13 + 1):
                violations = dtd.conformance_violations(generated.tree)
                assert not violations, violations

    def test_depth_and_branching_are_bounded(self):
        dtd = generate_dtd(2, "nested_relational", n_elements=8).dtd
        generated = generate_tree(dtd, 5, max_depth=2, max_repeat=2)
        assert generated.tree.depth() <= 2 + 1  # slack only drains minimal rules

    def test_spec_records_fingerprint(self):
        dtd = generate_dtd(0, "nested_relational").dtd
        generated = generate_tree(dtd, 9)
        assert generated.spec["fingerprint"] == generated.tree.fingerprint()

    def test_max_nodes_aborts_early_without_changing_the_stream(self):
        from repro.generators import GenerationError
        dtd = generate_dtd(1, "nested_relational", n_elements=8).dtd
        unbounded = generate_tree(dtd, 3, max_repeat=6)
        # Same seed, generous budget: identical tree.
        bounded = generate_tree(dtd, 3, max_repeat=6,
                                max_nodes=len(unbounded.tree))
        assert bounded.tree.fingerprint() == unbounded.tree.fingerprint()
        with pytest.raises(GenerationError, match="max_nodes"):
            generate_tree(dtd, 3, max_repeat=6,
                          max_nodes=len(unbounded.tree) - 1)


class TestSTDs:
    def test_generated_stds_are_fully_specified(self):
        for seed in SEEDS:
            source = generate_dtd(seed, "general", prefix="s").dtd
            target = generate_dtd(seed + 100, "nested_relational",
                                  prefix="t").dtd
            for generated in generate_stds(source, target, 3, seed=seed):
                dep = generated.std
                assert dep.is_fully_specified(target.root)
                assert dep.has_distinct_source_variables()
                assert not dep.source.uses_descendant()

    def test_std_spec_matches_patterns(self):
        source = generate_dtd(1, "nested_relational", prefix="s").dtd
        target = generate_dtd(2, "nested_relational", prefix="t").dtd
        generated = generate_std(source, target, 5)
        assert generated.spec["source"] == str(generated.std.source)
        assert generated.spec["target"] == str(generated.std.target)


class TestQueries:
    def test_kinds_and_fragments(self):
        target = generate_dtd(4, "nested_relational", prefix="t").dtd
        for kind in QUERY_KINDS:
            for seed in SEEDS:
                generated = generate_query(target, seed, kind=kind)
                assert generated.spec["kind"] == kind
                assert generated.spec["fragment"] == \
                    classify_query(generated.query)
                assert generated.spec["text"] == str(generated.query)

    def test_union_members_share_free_variables(self):
        target = generate_dtd(8, "nested_relational", prefix="t").dtd
        for seed in SEEDS:
            generated = generate_query(target, seed, kind="union")
            # UnionQuery's own validation would have raised otherwise; the
            # fingerprint must also be stable.
            assert generated.query.fingerprint() == \
                generate_query(target, seed, kind="union").query.fingerprint()

    def test_unknown_kind_rejected(self):
        target = generate_dtd(0, "nested_relational").dtd
        with pytest.raises(ValueError, match="unknown query kind"):
            generate_query(target, 0, kind="xpath")


class TestScenarios:
    def test_profiles_resolve_and_compile(self):
        for profile in SCENARIO_PROFILES:
            scenario = generate_scenario(21, profile=profile)
            assert scenario.profile in ("nested_relational", "general")
            compiled = compile_setting(scenario.setting)
            # The chase-based pipeline needs these two verdicts.
            assert compiled.fully_specified
            assert scenario.setting.target_dtd.is_univocal()

    def test_source_trees_conform_and_queries_target(self):
        scenario = generate_scenario(33)
        for tree in scenario.source_trees:
            assert scenario.setting.source_dtd.conforms(tree)
        for query in scenario.queries:
            labels = {p.attribute.label
                      for pattern in query.patterns()
                      for p in pattern.subpatterns()
                      if hasattr(p, "attribute")}
            assert labels <= scenario.setting.target_dtd.element_types

    def test_describe_mentions_seed(self):
        scenario = generate_scenario(5)
        assert "seed=5" in scenario.describe()
