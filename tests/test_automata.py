"""Tests for unranked tree automata (Appendix A)."""


from repro.automata import dtd_to_automaton, product_automaton
from repro.xmlmodel import DTD, XMLTree
from repro.workloads import library


def _skeleton(tree: XMLTree) -> XMLTree:
    """Strip attributes (the automata only see element types)."""
    clone = tree.copy()
    for node in clone.nodes():
        clone.clear_attributes(node)
    return clone


class TestDtdToAutomaton:
    def test_accepts_conforming_skeletons(self):
        dtd = library.source_dtd()
        automaton = dtd_to_automaton(dtd)
        assert automaton.accepts(_skeleton(library.figure_1_source()))

    def test_rejects_non_conforming(self):
        dtd = library.source_dtd()
        automaton = dtd_to_automaton(dtd)
        wrong = XMLTree.build(("db", [("author",)]))
        assert not automaton.accepts(wrong)
        wrong_root = XMLTree.build(("book", [("author",)]))
        assert not automaton.accepts(wrong_root)

    def test_emptiness_mirrors_dtd_satisfiability(self):
        satisfiable = DTD("r", {"r": "a*", "a": ""})
        unsatisfiable = DTD("r", {"r": "a", "a": "a"})
        assert not dtd_to_automaton(satisfiable).is_empty()
        assert dtd_to_automaton(unsatisfiable).is_empty()

    def test_reachable_states(self):
        dtd = DTD("r", {"r": "a | b", "a": "", "b": "b"})
        automaton = dtd_to_automaton(dtd)
        assert automaton.reachable_states() == {"r", "a"}


class TestProduct:
    def test_intersection_nonempty(self):
        first = dtd_to_automaton(DTD("r", {"r": "a*", "a": ""}))
        second = dtd_to_automaton(DTD("r", {"r": "a a*", "a": ""}))
        product = product_automaton(first, second)
        assert not product.is_empty()
        witness = XMLTree.build(("r", [("a",)]))
        assert product.accepts(witness)
        assert not product.accepts(XMLTree.build(("r",)))

    def test_intersection_empty(self):
        first = dtd_to_automaton(DTD("r", {"r": "a", "a": ""}))
        second = dtd_to_automaton(DTD("r", {"r": "a a", "a": ""}))
        product = product_automaton(first, second)
        assert product.is_empty()

    def test_product_respects_both_structures(self):
        deep = dtd_to_automaton(DTD("r", {"r": "a", "a": "b", "b": ""}))
        shallow = dtd_to_automaton(DTD("r", {"r": "a", "a": "b?", "b": ""}))
        product = product_automaton(deep, shallow)
        good = XMLTree.build(("r", [("a", [("b",)])]))
        bad = XMLTree.build(("r", [("a",)]))
        assert product.accepts(good)
        assert not product.accepts(bad)
