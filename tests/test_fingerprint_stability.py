"""Fingerprints are stable across processes and sensitive to near-misses.

The serving layer routes by ``DataExchangeSetting.fingerprint()`` and caches
by ``XMLTree.fingerprint()`` — keys that clients may compute in *other*
processes (the JSON-lines client does exactly that).  Two properties make
them trustworthy sharding keys:

* **cross-process stability** — a fresh interpreter, even with a different
  ``PYTHONHASHSEED``, computes identical digests for identical values (the
  digests must be content hashes, never ``hash()``-derived);
* **near-miss distinctness** — settings/trees differing in one constant,
  one rule or one sibling swap get different digests, so traffic for a
  slightly different setting can never land on (or hit the cache of) the
  wrong shard.
"""

import subprocess
import sys
import textwrap

from repro import DataExchangeSetting, DTD, XMLTree, std
from repro.generators import generate_scenario
from repro.workloads import library

#: Run by the child interpreters: print the same fingerprints the parent
#: computes, building every artifact from the same deterministic recipe.
_CHILD_PROGRAM = textwrap.dedent("""
    from repro.generators import generate_scenario
    from repro.workloads import library

    print(library.library_setting().fingerprint())
    print(library.figure_1_source().fingerprint())
    scenario = generate_scenario(11, profile="mixed")
    print(scenario.setting.fingerprint())
    for tree in scenario.source_trees:
        print(tree.fingerprint())
    for query in scenario.queries:
        print(query.fingerprint())
""")


def _child_fingerprints(hash_seed: str):
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_PROGRAM],
        capture_output=True, text=True, timeout=120,
        env={**__import__("os").environ, "PYTHONHASHSEED": hash_seed})
    assert completed.returncode == 0, completed.stderr
    return completed.stdout.split()


class TestCrossProcessStability:
    def test_subprocesses_agree_with_parent_and_each_other(self):
        scenario = generate_scenario(11, profile="mixed")
        expected = ([library.library_setting().fingerprint(),
                     library.figure_1_source().fingerprint(),
                     scenario.setting.fingerprint()]
                    + [tree.fingerprint() for tree in scenario.source_trees]
                    + [query.fingerprint() for query in scenario.queries])
        # Two children with *different* hash randomisation: digests must be
        # pure content hashes, identical to the parent's.
        first = _child_fingerprints("12345")
        second = _child_fingerprints("54321")
        assert first == expected
        assert second == expected

    def test_rebuilt_equal_values_share_fingerprints_in_process(self):
        assert library.library_setting().fingerprint() == \
            library.library_setting().fingerprint()
        assert library.figure_1_source().fingerprint() == \
            library.figure_1_source().fingerprint()


class TestNearMissDistinctness:
    def test_setting_near_misses(self):
        def build(source_model="book*", title_attr="title",
                  std_title="@title=x", extra_target_attr=False):
            source = DTD("db", {"db": source_model, "book": ""},
                         {"book": [title_attr]})
            target_attrs = {"item": ["t", "u"] if extra_target_attr
                            else ["t"]}
            target = DTD("lib", {"lib": "item*", "item": ""}, target_attrs)
            dependency = std("lib[item(@t=x)]", f"db[book({std_title})]")
            return DataExchangeSetting(source, target, [dependency])

        base = build()
        assert base.fingerprint() == build().fingerprint()
        near_misses = [
            build(source_model="book+"),        # one quantifier changed
            build(title_attr="titel"),          # one attribute renamed
            build(std_title="@title=y"),        # one STD variable renamed
            build(extra_target_attr=True),      # one attribute added
        ]
        digests = {setting.fingerprint() for setting in near_misses}
        assert base.fingerprint() not in digests
        assert len(digests) == len(near_misses)

    def test_std_order_matters(self):
        source = DTD("db", {"db": "a* b*", "a": "", "b": ""},
                     {"a": ["x"], "b": ["y"]})
        target = DTD("t", {"t": "c*", "c": ""}, {"c": ["z"]})
        first = std("t[c(@z=v)]", "db[a(@x=v)]")
        second = std("t[c(@z=v)]", "db[b(@y=v)]")
        assert DataExchangeSetting(source, target, [first, second]).fingerprint() != \
            DataExchangeSetting(source, target, [second, first]).fingerprint()

    def test_tree_near_misses(self):
        base = XMLTree.build(("db", [("book", {"title": "A"}),
                                     ("book", {"title": "B"})]))
        value_change = XMLTree.build(("db", [("book", {"title": "A"}),
                                             ("book", {"title": "C"})]))
        sibling_swap = XMLTree.build(("db", [("book", {"title": "B"}),
                                             ("book", {"title": "A"})]))
        label_change = XMLTree.build(("db", [("book", {"title": "A"}),
                                             ("tome", {"title": "B"})]))
        digests = {tree.fingerprint()
                   for tree in (base, value_change, sibling_swap,
                                label_change)}
        assert len(digests) == 4  # ordered trees: sibling order counts

    def test_unordered_reading_ignores_sibling_order_only(self):
        base = XMLTree.build(("db", [("book", {"title": "A"}),
                                     ("book", {"title": "B"})]),
                             ordered=False)
        swapped = XMLTree.build(("db", [("book", {"title": "B"}),
                                        ("book", {"title": "A"})]),
                                ordered=False)
        assert base.fingerprint() == swapped.fingerprint()
        # ... but ordered and unordered readings of the same document differ.
        assert base.fingerprint() != base.as_ordered().fingerprint()
