"""Tests for Proposition 5.2 (ordering an unordered solution)."""

import pytest

from repro.exchange import OrderingError, order_tree, order_word
from repro.regexlang import parse_regex, regex_to_nfa
from repro.xmlmodel import DTD, XMLTree


class TestOrderWord:
    def test_simple_interleaving(self):
        nfa = regex_to_nfa(parse_regex("(a b)*"))
        word = order_word({"a": 2, "b": 2}, nfa)
        assert word == ["a", "b", "a", "b"]

    def test_no_ordering_exists(self):
        nfa = regex_to_nfa(parse_regex("(a b)*"))
        assert order_word({"a": 2, "b": 1}, nfa) is None

    def test_empty_word(self):
        nfa = regex_to_nfa(parse_regex("a*"))
        assert order_word({}, nfa) == []

    def test_respects_fixed_prefix_structure(self):
        nfa = regex_to_nfa(parse_regex("a b* c"))
        word = order_word({"a": 1, "b": 3, "c": 1}, nfa)
        assert word[0] == "a" and word[-1] == "c" and word.count("b") == 3


class TestOrderTree:
    def test_orders_interleaved_children(self):
        dtd = DTD("r", {"r": "(B C)*", "B": "", "C": ""})
        tree = XMLTree.build(("r", [("B",), ("B",), ("C",), ("C",)]), ordered=False)
        assert not dtd.conforms(tree, ordered=True)
        ordered = order_tree(tree, dtd)
        assert dtd.conforms(ordered, ordered=True)
        assert ordered.children_labels(ordered.root) == ["B", "C", "B", "C"]

    def test_orders_recursively(self):
        dtd = DTD("r", {"r": "x y", "x": "(a b)*", "y": "", "a": "", "b": ""})
        tree = XMLTree.build(("r", [("y",), ("x", [("b",), ("a",)])]), ordered=False)
        ordered = order_tree(tree, dtd)
        assert dtd.conforms(ordered, ordered=True)

    def test_rejects_non_weakly_conforming_tree(self):
        dtd = DTD("r", {"r": "(a b)*", "a": "", "b": ""})
        tree = XMLTree.build(("r", [("a",)]), ordered=False)
        with pytest.raises(OrderingError):
            order_tree(tree, dtd)

    def test_preserves_attributes_and_subtrees(self):
        dtd = DTD("r", {"r": "a b", "a": "", "b": ""},
                  {"a": ["v"], "b": ["w"]})
        tree = XMLTree.build(("r", [("b", {"w": "2"}), ("a", {"v": "1"})]),
                             ordered=False)
        ordered = order_tree(tree, dtd)
        labels = ordered.children_labels(ordered.root)
        assert labels == ["a", "b"]
        a_node = ordered.children(ordered.root)[0]
        assert ordered.attribute(a_node, "v") == "1"
