"""The plan verifier: every well-formed compiled plan passes, every
deliberately corrupted op sequence / operator tree is rejected, the
``REPRO_PLAN_VERIFY`` compile-time hook stamps ``plan.verified``, and the
stamp travels through pickle without re-verification (the process-executor
path pays zero overhead)."""

import pickle

import pytest

from repro.analysis import PlanVerificationError, verify_plan
from repro.analysis import plancheck
from repro.engine import compile_setting
from repro.patterns import (compile_pattern, compile_query, conjunction,
                            descendant, exists, node, pattern_query,
                            union_query)
from repro.patterns import plan as planmod
from repro.workloads import library, nested_relational


def book_query():
    return pattern_query(node("db", None, node("book", {"title": "$t"},
                                               node("author",
                                                    {"name": "$n"}))))


def exists_query():
    return exists(["n"], pattern_query(
        node("book", {"title": "$t"}, node("author", {"name": "$n"}))))


# --------------------------------------------------------------------- #
# Acceptance: real plans verify
# --------------------------------------------------------------------- #

class TestAcceptsRealPlans:
    def test_workload_std_source_plans(self):
        for setting in (library.library_setting(),
                        nested_relational.company_setting()):
            compiled = compile_setting(setting)
            assert compiled.std_source_plans
            for plan in compiled.std_source_plans:
                assert verify_plan(plan) is plan

    def test_canned_queries_all_connectives(self):
        queries = [
            book_query(),
            conjunction(book_query(), book_query()),
            exists_query(),
            union_query(exists_query(),
                        pattern_query(descendant(node("book",
                                                      {"title": "$t"})))),
            library.query_writer_of("Computational Complexity"),
            nested_relational.query_projects_of("Dept-0"),
        ]
        for query in queries:
            assert verify_plan(compile_query(query)) is not None

    def test_descendant_pattern_plan(self):
        plan = compile_pattern(descendant(node("book", {"title": "$t"})))
        assert verify_plan(plan) is plan

    def test_non_plan_is_rejected(self):
        with pytest.raises(PlanVerificationError, match="not a compiled"):
            verify_plan(object())


# --------------------------------------------------------------------- #
# Rejection: corrupted op sequences / operator trees
# --------------------------------------------------------------------- #

class TestRejectsCorruptedPlans:
    def test_unknown_op_kind(self):
        plan = compile_pattern(node("book", {"title": "$t"}))
        plan.ops = (("frobnicate", 0),)
        with pytest.raises(PlanVerificationError, match="unknown op kind"):
            verify_plan(plan)

    def test_empty_ops(self):
        plan = compile_pattern(node("book", {"title": "$t"}))
        plan.ops = ()
        with pytest.raises(PlanVerificationError, match="non-empty"):
            verify_plan(plan)

    def test_desc_op_forward_reference(self):
        plan = compile_pattern(descendant(node("book", {"title": "$t"})))
        # The desc op must point at a strictly earlier op; aim it at itself.
        ops = list(plan.ops)
        for index, op in enumerate(ops):
            if op[0] == "desc":
                ops[index] = ("desc", index)
        plan.ops = tuple(ops)
        with pytest.raises(PlanVerificationError,
                           match="strictly earlier"):
            verify_plan(plan)

    def test_variable_slot_outside_width(self):
        plan = compile_pattern(node("book", {"title": "$t"}))
        kind, label, const_tests, var_tests, children = plan.ops[-1]
        bad = tuple((attr, 99) for attr, _slot in var_tests)
        plan.ops = plan.ops[:-1] + ((kind, label, const_tests, bad,
                                     children),)
        with pytest.raises(PlanVerificationError, match="outside row width"):
            verify_plan(plan)

    def test_label_foreign_to_pattern(self):
        plan = compile_pattern(node("book", {"title": "$t"}))
        kind, _label, const_tests, var_tests, children = plan.ops[-1]
        plan.ops = plan.ops[:-1] + ((kind, "pamphlet", const_tests,
                                     var_tests, children),)
        with pytest.raises(PlanVerificationError, match="does not occur"):
            verify_plan(plan)

    def test_child_index_not_earlier(self):
        plan = compile_pattern(node("db", None, node("book",
                                                     {"title": "$t"})))
        kind, label, const_tests, var_tests, _children = plan.ops[-1]
        plan.ops = plan.ops[:-1] + ((kind, label, const_tests, var_tests,
                                     (len(plan.ops) - 1,)),)
        with pytest.raises(PlanVerificationError, match="def-before-use"):
            verify_plan(plan)

    def test_root_outside_ops(self):
        plan = compile_pattern(node("book", {"title": "$t"}))
        plan.root = 99
        with pytest.raises(PlanVerificationError, match="root op index"):
            verify_plan(plan)

    def test_aliased_slots(self):
        plan = compile_pattern(node("book", {"title": "$t",
                                             "year": "$y"}))
        only = min(plan.slots.values())
        plan.slots = {name: only for name in plan.slots}
        with pytest.raises(PlanVerificationError, match="two names"):
            verify_plan(plan)

    def test_atom_width_disagrees_with_query(self):
        plan = compile_query(book_query())
        plan.node.plan.width = plan.width + 3
        with pytest.raises(PlanVerificationError,
                           match="enclosing query width"):
            verify_plan(plan)

    def test_projection_clears_a_free_slot(self):
        plan = compile_query(exists_query())
        assert isinstance(plan.node, planmod._Project)
        assert len(plan.free_slots) == 1
        plan.node.cleared = frozenset({plan.free_slots[0]})
        with pytest.raises(PlanVerificationError, match="scope leak"):
            verify_plan(plan)

    def test_shape_mismatch_atom_vs_join(self):
        plan = compile_query(book_query())
        plan.node = planmod._Join((plan.node,))
        with pytest.raises(PlanVerificationError, match="expected _Atom"):
            verify_plan(plan)

    def test_union_arm_count_mismatch(self):
        plan = compile_query(union_query(
            exists_query(),
            pattern_query(descendant(node("book", {"title": "$t"})))))
        assert isinstance(plan.node, planmod._Union)
        plan.node = planmod._Union(plan.node.members[:1])
        with pytest.raises(PlanVerificationError, match="arms"):
            verify_plan(plan)

    def test_slot_table_width_mismatch(self):
        plan = compile_query(book_query())
        plan.width = plan.width + 1
        with pytest.raises(PlanVerificationError, match="slot names"):
            verify_plan(plan)


# --------------------------------------------------------------------- #
# The compile-time hook and the pickled stamp
# --------------------------------------------------------------------- #

class TestVerifyHook:
    def test_stamped_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_VERIFY", "1")
        assert compile_query(book_query()).verified
        assert compile_pattern(node("book", {"title": "$t"})).verified

    def test_not_stamped_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_VERIFY", "0")
        assert not compile_query(book_query()).verified
        monkeypatch.delenv("REPRO_PLAN_VERIFY")
        assert not compile_query(book_query()).verified

    def test_pickle_preserves_stamp_without_reverification(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_VERIFY", "1")
        plan = compile_query(book_query())
        assert plan.verified

        calls = []
        real = plancheck.verify_plan

        def counting(target):
            calls.append(target)
            return real(target)

        monkeypatch.setattr(plancheck, "verify_plan", counting)
        revived = pickle.loads(pickle.dumps(plan))
        assert revived.verified          # the stamp travelled
        assert calls == []               # ... and nothing re-verified
        # The revived plan still answers like the original.
        assert revived.free_variables == plan.free_variables
        assert revived.width == plan.width

    def test_compiled_setting_roundtrip_keeps_stamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_VERIFY", "1")
        compiled = compile_setting(library.library_setting())
        revived = pickle.loads(pickle.dumps(compiled))
        for plan in revived.std_source_plans:
            assert plan.verified


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

class TestPlancheckCLI:
    def test_main_verifies_committed_workloads(self, capsys):
        assert plancheck.main([]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_main_summary(self, tmp_path, capsys):
        summary = tmp_path / "summary.md"
        assert plancheck.main(["--summary", str(summary)]) == 0
        text = summary.read_text(encoding="utf-8")
        assert "## Plan verifier" in text
        assert "0 failure(s)" in text
