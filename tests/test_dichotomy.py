"""Tests for the dichotomy classifier (Theorems 5.11 and 6.2)."""

from repro.exchange import DataExchangeSetting, classify_setting, std
from repro.reductions import lemma_6_20, theorem_5_11
from repro.workloads import nested_relational
from repro.xmlmodel import DTD


def test_library_setting_is_tractable(library_setting):
    report = classify_setting(library_setting)
    assert report.tractable
    assert report.fully_specified and report.target_univocal
    assert "PTIME" in report.summary()
    assert report.std_classes == ["fully-specified"]


def test_company_setting_is_tractable(company_setting):
    assert classify_setting(company_setting).tractable


def test_nested_relational_rules_are_univocal(company_setting):
    report = classify_setting(company_setting)
    assert all(info["univocal"] for info in report.target_rules.values())
    assert all(info["c"] <= 1 for info in report.target_rules.values())


def test_theorem_5_11_gadget_is_not_fully_specified():
    gadget = theorem_5_11.build_gadget()
    report = classify_setting(gadget.setting)
    assert not report.tractable
    assert not report.fully_specified
    assert any("STD(_,//)" in reason for reason in report.reasons)


def test_lemma_6_20_gadget_fails_on_target_univocality():
    gadget = lemma_6_20.build_gadget("a | a a b*")
    report = classify_setting(gadget.setting)
    assert not report.tractable
    assert report.fully_specified          # the STDs themselves are fine
    assert not report.target_univocal      # the target rule G → r is the culprit
    assert any("c(r) = 2" in reason for reason in report.reasons)


def test_non_univocal_union_rule_detected():
    source_dtd = DTD("s", {"s": "x*"}, {"x": ["v"]})
    target_dtd = DTD("t", {"t": "a | b", "a": "", "b": ""}, {"a": ["v"]})
    setting = DataExchangeSetting(source_dtd, target_dtd,
                                  [std("t[a(@v=w)]", "x(@v=w)")])
    report = classify_setting(setting)
    assert not report.tractable
    assert not report.target_univocal
    assert any("not univocal" in reason for reason in report.reasons)


def test_scaling_workload_is_tractable():
    setting = nested_relational.scaling_setting(2, 2, 3)
    assert classify_setting(setting).tractable
