"""Pickle round-trips for everything the process executor ships.

``certain_answers_batch(..., executor="process")`` pickles the compiled
setting once per worker and per-tree payloads per task; results travel back
as :class:`EngineResult`.  These tests pin down that every object on that
path survives a round-trip *semantically* — same answers, same structural
keys, same verdicts — and that an unpickled compiled setting arrives warm
(no recompilations).
"""

import pickle

import pytest

from repro import (ExchangeEngine, Null, NullFactory, certain_answers,
                   compile_setting)
from repro.generators import generate_scenario
from repro.workloads import library, nested_relational


@pytest.fixture(scope="module")
def setting():
    return library.library_setting()


class TestTreeRoundtrip:
    def test_tree_roundtrip_preserves_structure(self):
        tree = library.generate_source(6, seed=4)
        clone = pickle.loads(pickle.dumps(tree))
        assert clone.equals(tree)
        assert clone.fingerprint() == tree.fingerprint()
        assert clone.ordered == tree.ordered

    def test_tree_with_nulls_roundtrips(self, setting):
        solved = ExchangeEngine(setting).solve(library.figure_1_source())
        solution = solved.payload
        clone = pickle.loads(pickle.dumps(solution))
        assert clone.equals(solution)
        assert {n.ident for n in clone.nulls()} == \
            {n.ident for n in solution.nulls()}

    def test_null_identity_semantics_survive(self):
        null = Null(7)
        clone = pickle.loads(pickle.dumps(null))
        assert clone == null and hash(clone) == hash(null)
        assert clone != Null(8)

    def test_null_factory_roundtrips(self):
        factory = NullFactory(start=5)
        factory.fresh()
        clone = pickle.loads(pickle.dumps(factory))
        # The clone continues the sequence instead of restarting it.
        assert clone.fresh() == factory.fresh()


class TestCompiledSettingRoundtrip:
    def test_roundtrip_preserves_verdicts(self, setting):
        compiled = compile_setting(setting)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.nested_relational == compiled.nested_relational
        assert clone.fully_specified == compiled.fully_specified
        assert clone.univocality == compiled.univocality
        assert clone.std_classes == compiled.std_classes
        assert clone.setting.fingerprint() == setting.fingerprint()

    def test_unpickled_compiled_arrives_warm(self, setting):
        compiled = compile_setting(setting)
        clone = pickle.loads(pickle.dumps(compiled))
        tree = library.generate_source(8, seed=2)
        query = library.query_writer_of("Book-1")
        outcome = certain_answers(clone.setting, tree, query, compiled=clone)
        assert outcome.has_solution
        assert clone.cache_stats()["rule_cache_misses"] == 0

    def test_lazy_machinery_survives_and_lock_is_fresh(self, setting):
        compiled = compile_setting(setting)
        compiled.goal_search()
        compiled.source_skeletons(max_trees=50)
        clone = pickle.loads(pickle.dumps(compiled))
        # Memoised machinery travelled: first use on the clone is a hit.
        clone.goal_search()
        clone.source_skeletons(max_trees=50)
        stats = clone.cache_stats()
        assert stats["goal_search_hits"] >= 1
        assert stats["skeletons_hits"] >= 1
        # ... and the clone still serialises (a dead lock would throw here).
        pickle.dumps(clone)

    def test_roundtrip_engine_serves_identical_answers(self):
        scenario = generate_scenario(17, profile="mixed")
        compiled = compile_setting(scenario.setting)
        clone = pickle.loads(pickle.dumps(compiled))
        original_engine = ExchangeEngine(compiled)
        clone_engine = ExchangeEngine(clone)
        for tree in scenario.source_trees:
            for query in scenario.queries:
                first = original_engine.certain_answers(tree, query)
                second = clone_engine.certain_answers(tree, query)
                assert (first.ok, first.payload) == (second.ok, second.payload)


class TestResultObjects:
    def test_engine_result_roundtrips(self, setting):
        engine = ExchangeEngine(setting)
        result = engine.certain_answers(library.figure_1_source(),
                                        library.query_writer_of(
                                            "Computational Complexity"))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.ok == result.ok
        assert clone.payload == result.payload
        assert clone.strategy == result.strategy
        assert clone.raw.answers == result.raw.answers

    def test_company_setting_roundtrips_too(self):
        compiled = compile_setting(nested_relational.company_setting())
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.nested_relational
        tree = nested_relational.generate_company_source(2, seed=1)
        engine = ExchangeEngine(clone)
        assert engine.solve(tree).ok
