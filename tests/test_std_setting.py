"""Tests for STDs and data exchange settings (Definitions 3.1–3.3, 5.10)."""

import pytest

from repro.exchange import STD, classify_std, std
from repro.workloads import library
from repro.xmlmodel import DTD, XMLTree
from repro.xmlmodel.values import Null


@pytest.fixture
def example_3_4_std():
    return std("bib[writer(@name=y)[work(@title=x, @year=z)]]",
               "db[book(@title=x)[author(@name=y)]]")


class TestVariables:
    def test_shared_and_existential(self, example_3_4_std):
        assert set(example_3_4_std.shared_variables()) == {"x", "y"}
        assert example_3_4_std.existential_variables() == ["z"]
        assert set(example_3_4_std.source_variables()) == {"x", "y"}

    def test_distinct_source_variables_proviso(self):
        ok = std("r[b]", "r[l0(@a=x)[l1(@a=y)]]")
        repeated = std("r[b]", "r[l0(@a=x)[l1(@a=x)]]")
        assert ok.has_distinct_source_variables()
        assert not repeated.has_distinct_source_variables()


class TestClassification:
    def test_fully_specified(self, example_3_4_std):
        assert example_3_4_std.is_fully_specified("bib")
        assert not example_3_4_std.is_fully_specified("other_root")
        assert classify_std(example_3_4_std, "bib") == "fully-specified"

    def test_std_classes_of_theorem_5_11(self):
        non_rooted = std("H1(@l=x)[H2(@l=y)]", "K[C(@f=x, @s=y, @t=z)]")
        assert classify_std(non_rooted, "K") == "STD(_,//)"
        with_wildcard = std("K[_[a(@l=x)]]", "K[C(@f=x)]")
        assert classify_std(with_wildcard, "K") == "STD(r,//)"
        with_descendant = std("K[//a(@l=x)]", "K[C(@f=x)]")
        assert classify_std(with_descendant, "K") == "STD(r,_)"


class TestSatisfaction:
    def test_example_3_4_satisfaction(self, example_3_4_std):
        source = library.figure_1_source()
        target = XMLTree.build(("bib", [
            ("writer", {"name": "Papadimitriou"}, [
                ("work", {"title": "Combinatorial Optimization", "year": Null(1)}),
                ("work", {"title": "Computational Complexity", "year": Null(2)}),
            ]),
            ("writer", {"name": "Steiglitz"}, [
                ("work", {"title": "Combinatorial Optimization", "year": Null(1)}),
            ]),
        ]), ordered=False)
        assert example_3_4_std.satisfied_by(source, target)
        # Remove Steiglitz's work: the STD is now violated.
        broken = XMLTree.build(("bib", [
            ("writer", {"name": "Papadimitriou"}, [
                ("work", {"title": "Combinatorial Optimization", "year": Null(1)}),
                ("work", {"title": "Computational Complexity", "year": Null(2)}),
            ]),
            ("writer", {"name": "Steiglitz"}),
        ]), ordered=False)
        violations = example_3_4_std.violations(source, broken)
        assert violations == [{"x": "Combinatorial Optimization", "y": "Steiglitz"}]

    def test_null_reuse_enforces_joint_satisfaction(self):
        dependency = std("r[a(@u=x, @v=z), b(@w=z)]", "s(@u=x)")
        source = XMLTree.build(("s", {"u": "1"}))
        shared_null = Null(5)
        good = XMLTree.build(("r", [("a", {"u": "1", "v": shared_null}),
                                    ("b", {"w": shared_null})]))
        bad = XMLTree.build(("r", [("a", {"u": "1", "v": Null(6)}),
                                   ("b", {"w": Null(7)})]))
        assert dependency.satisfied_by(source, good)
        assert not dependency.satisfied_by(source, bad)


class TestSetting:
    def test_library_setting_properties(self, library_setting):
        assert library_setting.is_fully_specified()
        assert library_setting.has_distinct_source_variables()
        assert library_setting.std_classes() == ["fully-specified"]
        assert library_setting.dtd_size() > 0
        assert library_setting.std_size() > 0

    def test_solution_report(self, library_setting, figure_1_source):
        good = XMLTree.build(("bib", [
            ("writer", {"name": "Papadimitriou"}, [
                ("work", {"title": "Combinatorial Optimization", "year": Null(1)}),
                ("work", {"title": "Computational Complexity", "year": Null(3)}),
            ]),
            ("writer", {"name": "Steiglitz"}, [
                ("work", {"title": "Combinatorial Optimization", "year": Null(2)}),
            ]),
        ]), ordered=False)
        report = library_setting.solution_report(figure_1_source, good, ordered=False)
        assert report.is_solution
        assert report.summary() == "solution"

    def test_solution_report_detects_dtd_violation(self, library_setting, figure_1_source):
        bad = XMLTree.build(("bib", [("writer", {})]), ordered=False)
        report = library_setting.solution_report(figure_1_source, bad, ordered=False)
        assert not report.is_solution
        assert report.dtd_violations
        assert report.std_violations
        assert "STD" in report.summary() or "target DTD" in report.summary()
