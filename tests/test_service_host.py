"""ShardHost: one worker process per core, supervised.

Covers the pipe frame codec, fingerprint routing, single-request and
group parity against a direct engine, worker-crash lifecycle (restart,
re-registration, ``worker_restarts`` accounting, no lost or duplicated
replies), cross-process stats aggregation and the service facade's
``executor="host"`` wiring.
"""

import os
import signal
import threading
import time

import pytest

from repro import ExchangeEngine, compile_setting
from repro.service import (AsyncExchangeService, ShardHost,
                           UnknownSettingError, certain_answers_request,
                           classify_request, consistency_request,
                           solve_request)
from repro.service.host import FrameError, _decode_frame, _encode_frame
from repro.service.protocol import answers_to_wire, tree_to_wire
from repro.workloads import library

import asyncio


def wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def host():
    with ShardHost(workers=2) as running:
        yield running


@pytest.fixture
def library_pair(library_setting):
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    return library_setting, tree, query


class TestFrameCodec:
    def test_round_trip(self):
        payload = (7, "request", {"nested": ["anything", b"picklable"]})
        assert _decode_frame(_encode_frame(payload)) == payload

    def test_truncated_frame_is_a_typed_error(self):
        frame = _encode_frame((1, "request", "x" * 100))
        with pytest.raises(FrameError, match="truncated"):
            _decode_frame(frame[:-3])

    def test_short_frame_without_prefix(self):
        with pytest.raises(FrameError, match="length prefix"):
            _decode_frame(b"\x00\x01")


class TestRoutingAndParity:
    def test_worker_for_is_stable_and_in_range(self, host, library_setting,
                                               company_setting):
        for setting in (library_setting, company_setting):
            fingerprint = setting.fingerprint()
            index = host.worker_for(fingerprint)
            assert 0 <= index < host.workers
            assert host.worker_for(fingerprint) == index

    def test_register_returns_fingerprint(self, host, library_setting):
        fingerprint = host.register(library_setting)
        assert fingerprint == library_setting.fingerprint()
        assert fingerprint in host.fingerprints()

    def test_unknown_fingerprint_raises_without_a_round_trip(self, host):
        with pytest.raises(UnknownSettingError):
            host.execute(consistency_request("f" * 64))
        with pytest.raises(UnknownSettingError):
            host.prewarm("f" * 64)

    def test_single_request_parity_with_direct_engine(self, host,
                                                      library_pair):
        setting, tree, query = library_pair
        fingerprint = host.register(setting)
        engine = ExchangeEngine(compile_setting(setting))

        got = host.execute(consistency_request(fingerprint))
        want = engine.check_consistency()
        assert (got.ok, bool(got.payload)) == (want.ok, bool(want.payload))

        got = host.execute(classify_request(fingerprint))
        want = engine.classify()
        assert got.payload.tractable == want.payload.tractable

        got = host.execute(solve_request(fingerprint, tree))
        want = engine.solve(tree)
        assert got.ok and want.ok
        assert tree_to_wire(got.payload) == tree_to_wire(want.payload)

        got = host.execute(certain_answers_request(fingerprint, tree, query))
        want = engine.certain_answers(tree, query)
        assert got.ok and want.ok
        assert answers_to_wire(got.payload) == answers_to_wire(want.payload)

    def test_registering_compiled_setting_arrives_plan_warm(
            self, host, library_setting):
        fingerprint = host.register(compile_setting(library_setting))
        view = host.stats()["per_worker"][host.worker_for(fingerprint)]
        assert view["registry"]["compiled_entries"] == 1
        assert view["registry"]["compiled_misses"] == 0

    def test_worker_exceptions_reraise_in_the_supervisor(self, host):
        # A non-univocal chase raises *in the worker process*; the pickled
        # exception must re-raise here with its type and message intact —
        # and the worker must survive to serve the next request.
        from repro import ChaseError, DataExchangeSetting, DTD, XMLTree, std
        from repro.patterns.parse import parse_pattern
        from repro.patterns.queries import pattern_query
        setting = DataExchangeSetting(
            DTD("db", {"db": "rec*", "rec": ""}, {"rec": ["v"]}),
            DTD("r", {"r": "a a", "a": ""}, {"a": ["v"]}),
            [std("r[a(@v=x)]", "db[rec(@v=x)]")])
        tree = XMLTree.build(("db", [("rec", {"v": "1"}), ("rec", {"v": "2"}),
                                     ("rec", {"v": "3"})]))
        query = pattern_query(parse_pattern("r[a(@v=w)]"))
        fingerprint = host.register(setting)
        with pytest.raises(ChaseError, match="not univocal"):
            host.execute(certain_answers_request(fingerprint, tree, query))
        assert host.execute(consistency_request(fingerprint)).ok
        assert host.stats()["worker_restarts"] == 0

    def test_results_stay_cached_in_the_worker(self, host, library_pair):
        """The point of long-lived workers: repeat traffic hits the
        worker-resident result cache instead of re-computing."""
        setting, tree, query = library_pair
        fingerprint = host.register(setting)
        request = certain_answers_request(fingerprint, tree, query)
        host.execute(request)
        before = host.stats()["shards"][fingerprint]["result_cache_hits"]
        host.execute(request)
        after = host.stats()["shards"][fingerprint]["result_cache_hits"]
        assert after == before + 1


class TestGroups:
    def test_group_keeps_indices_and_isolates_failures(self, host,
                                                       library_pair):
        setting, tree, query = library_pair
        fingerprint = host.register(setting)
        unknown = "e" * 64
        group = [(0, certain_answers_request(fingerprint, tree, query)),
                 (3, consistency_request(unknown)),
                 (5, certain_answers_request(fingerprint, tree, query))]
        done = []
        results = host.execute_group(fingerprint, group,
                                     on_done=lambda i, r: done.append(i))
        assert [slot.index for slot in results] == [0, 3, 5]
        assert results[0].ok and results[2].ok
        assert isinstance(results[1].error, UnknownSettingError)
        assert sorted(done) == [0, 3, 5]

    def test_group_results_match_singles(self, host, library_pair):
        setting, tree, query = library_pair
        fingerprint = host.register(setting)
        single = host.execute(certain_answers_request(fingerprint, tree,
                                                      query))
        group = host.execute_group(
            fingerprint,
            [(0, certain_answers_request(fingerprint, tree, query))])
        assert answers_to_wire(group[0].result.payload) == \
            answers_to_wire(single.payload)


class TestWorkerLifecycle:
    def test_injected_crash_restarts_and_re_registers(self, host,
                                                      library_pair):
        setting, tree, query = library_pair
        fingerprint = host.register(setting, prewarm=True)
        victim = host.worker_for(fingerprint)
        old_pid = host.worker_pids()[victim]
        host.inject_crash(victim)
        wait_until(lambda: host.worker_pids()[victim] != old_pid
                   and host.stats()["worker_restarts"] == 1,
                   message="worker restart")
        # The replacement was re-registered (and re-prewarmed) from the
        # supervisor's authoritative map: traffic flows without help.
        view = host.stats()["per_worker"][victim]
        assert view["registry"]["settings_registered"] == 1
        assert view["registry"]["compiled_entries"] == 1  # re-prewarmed
        result = host.execute(certain_answers_request(fingerprint, tree,
                                                      query))
        assert result.ok

    def test_sigkill_mid_stream_loses_no_replies(self, host, library_pair):
        """Kill a worker while requests are in flight: every request gets
        exactly one reply (orphans are resubmitted to the replacement)."""
        setting, tree, query = library_pair
        fingerprint = host.register(setting)
        host.execute(consistency_request(fingerprint))  # warm the worker
        victim = host.worker_for(fingerprint)
        replies = []
        errors = []
        replies_lock = threading.Lock()

        def drive(worker_id):
            for _ in range(4):
                try:
                    outcome = host.execute(
                        certain_answers_request(fingerprint, tree, query))
                except Exception as error:  # pragma: no cover - flake trap
                    with replies_lock:
                        errors.append(error)
                else:
                    with replies_lock:
                        replies.append(answers_to_wire(outcome.payload))

        threads = [threading.Thread(target=drive, args=(n,))
                   for n in range(6)]
        for thread in threads:
            thread.start()
        os.kill(host.worker_pids()[victim], signal.SIGKILL)
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(replies) == 24  # one reply per request, none lost
        assert len(set(map(str, replies))) == 1  # ... and all identical
        wait_until(lambda: host.stats()["worker_restarts"] >= 1,
                   message="restart accounting")

    def test_unaffected_workers_keep_their_pids(self, host, library_setting,
                                                company_setting,
                                                figure_6_setting):
        keys = [host.register(setting) for setting in
                (library_setting, company_setting, figure_6_setting)]
        owners = {host.worker_for(key) for key in keys}
        victim = host.worker_for(keys[0])
        pids_before = host.worker_pids()
        host.inject_crash(victim)
        wait_until(lambda: host.worker_pids()[victim] != pids_before[victim],
                   message="victim pid change")
        pids_after = host.worker_pids()
        for index in range(host.workers):
            if index != victim:
                assert pids_after[index] == pids_before[index]
        # Every setting still serves, whichever worker owns it.
        for key in keys:
            assert host.execute(consistency_request(key)).ok
        assert owners  # routing stayed meaningful

    def test_closed_host_refuses_work(self, library_setting):
        host = ShardHost(workers=1)
        fingerprint = host.register(library_setting)
        host.close()
        host.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            host.execute(consistency_request(fingerprint))


class TestStatsAggregation:
    def test_merged_registry_reads_like_a_single_process(self, host,
                                                         library_pair):
        setting, tree, query = library_pair
        fingerprint = host.register(setting)
        host.execute(certain_answers_request(fingerprint, tree, query))
        host.execute(certain_answers_request(fingerprint, tree, query))
        stats = host.stats()
        assert stats["workers"] == 2
        assert stats["worker_restarts"] == 0
        assert len(stats["per_worker"]) == 2
        merged = stats["registry"]
        assert merged["settings_registered"] == 1
        assert merged["compiled_entries"] == 1
        assert fingerprint in stats["shards"]
        assert stats["shards"][fingerprint]["requests"] == 2

    def test_shards_merge_is_disjoint_across_workers(self, host,
                                                     library_setting,
                                                     company_setting):
        keys = [host.register(setting, prewarm=True)
                for setting in (library_setting, company_setting)]
        shards = host.stats()["shards"]
        assert sorted(shards) == sorted(keys)


class TestServiceHostMode:
    def test_workers_require_host_executor(self):
        with pytest.raises(ValueError, match="executor='host'"):
            AsyncExchangeService(executor="thread", workers=2)

    def test_batch_parity_with_serial_executor(self, library_pair):
        setting, tree, query = library_pair

        async def run(**kwargs):
            async with AsyncExchangeService(**kwargs) as service:
                fingerprint = service.register(setting)
                slots = await service.batch([
                    consistency_request(fingerprint),
                    certain_answers_request(fingerprint, tree, query),
                    solve_request(fingerprint, tree),
                ])
                assert all(slot.ok for slot in slots)
                return [
                    bool(slots[0].result.payload),
                    answers_to_wire(slots[1].result.payload),
                    tree_to_wire(slots[2].result.payload),
                ]

        serial = asyncio.run(run(executor="serial"))
        hosted = asyncio.run(run(executor="host", workers=2))
        assert hosted == serial

    def test_stats_shape_and_quota_stay_loop_side(self, library_pair):
        from repro.service import QuotaPolicy
        setting, tree, query = library_pair

        async def run():
            async with AsyncExchangeService(
                    executor="host", workers=2,
                    quota=QuotaPolicy(max_in_flight=4)) as service:
                fingerprint = service.register(setting, prewarm=True)
                await service.certain_answers(fingerprint, tree, query)
                stats = service.stats()
                assert stats["executor"] == "host"
                assert stats["host"]["workers"] == 2
                assert stats["host"]["worker_restarts"] == 0
                registry = stats["registry"]
                assert registry["settings_registered"] == 1
                assert registry["in_flight"] == 0  # balanced acquire/release
                assert registry["quota_rejections"] == 0
                assert fingerprint in stats["shards"]
                # The local registry never compiled anything in host mode.
                assert len(service.registry.compiled_fingerprints()) == 0

        asyncio.run(run())

    def test_prewarm_reaches_the_owning_worker(self, library_pair):
        setting, _, _ = library_pair

        async def run():
            async with AsyncExchangeService(executor="host",
                                            workers=2) as service:
                fingerprint = service.register(setting)
                assert await service.prewarm(fingerprint) is True
                assert await service.prewarm(fingerprint) is False
                merged = service.stats()["registry"]
                assert merged["prewarm_compiles"] == 1
                assert merged["prewarm_hits"] == 1

        asyncio.run(run())
