"""ReproScope: spans, metrics and the reporting surfaces.

Covers the pay-for-what-you-use disabled path, span-tree construction,
histogram bucket edges (0 / inf / exact bound), cross-process trace
propagation through the shard host (single rooted tree, crash + retry
included), the generation-tagged host stats snapshot, the slow-request
log, the JSON-lines file sink, the ``repro.obs.report`` CLI and the
server's ``trace_dump`` / extended ``stats`` wire ops.
"""

import asyncio
import json
import math
import re
import threading
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import report as obs_report
from repro.obs import trace as obs_trace
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.service import (AsyncExchangeService, ShardHost,
                           certain_answers_request)
from repro.service.client import ServiceClient
from repro.service.server import serve_in_background
from repro.workloads import library


@pytest.fixture(autouse=True)
def obs_clean():
    """Every test starts and ends with tracing off and empty sinks."""
    obs_trace.disable()
    obs_trace.drain()
    yield
    obs_trace.disable()
    obs_trace.drain()


@pytest.fixture
def library_pair(library_setting):
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    return library_setting, tree, query


def wait_until(predicate, timeout=30.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def spans_of(records, trace_id):
    return [r for r in records if r["trace"] == trace_id]


def assert_single_rooted(trace_records):
    """Exactly one root, and every non-root parent link resolves."""
    ids = {r["span"] for r in trace_records}
    roots = [r for r in trace_records if r["parent"] is None]
    orphans = [r for r in trace_records
               if r["parent"] is not None and r["parent"] not in ids]
    assert len(roots) == 1, f"expected one root, got {roots}"
    assert orphans == [], f"orphaned spans: {orphans}"
    return roots[0]


# --------------------------------------------------------------------- #
# Disabled path
# --------------------------------------------------------------------- #

class TestDisabledPath:
    def test_span_is_the_shared_null_singleton(self):
        assert obs_trace.span("engine.chase") is obs_trace.span("other")
        with obs_trace.span("anything", key="value") as nothing:
            assert nothing.annotate(more=1) is nothing
        assert obs_trace.records() == []

    def test_timer_still_times(self):
        with obs_trace.timer("engine.solve") as clock:
            time.sleep(0.01)
        assert clock.elapsed >= 0.01
        assert obs_trace.records() == []

    def test_emit_and_context_are_noops(self):
        obs_trace.emit("service.queue", 0.0, 1.0)
        assert obs_trace.current_context() is None
        assert obs_trace.records() == []


# --------------------------------------------------------------------- #
# Span trees
# --------------------------------------------------------------------- #

class TestSpans:
    def test_nesting_builds_one_tree(self):
        obs_trace.configure(observe_metrics=False)
        with obs_trace.span("root", op="test"):
            with obs_trace.span("child"):
                with obs_trace.span("leaf"):
                    pass
            with obs_trace.span("sibling"):
                pass
        records = obs_trace.drain()
        assert [r["name"] for r in records] == \
            ["leaf", "child", "sibling", "root"]
        root = assert_single_rooted(records)
        assert root["name"] == "root"
        assert root["attrs"] == {"op": "test"}
        assert len({r["trace"] for r in records}) == 1

    def test_timer_records_when_enabled_and_elapsed_matches(self):
        obs_trace.configure(observe_metrics=False)
        with obs_trace.timer("engine.solve") as clock:
            time.sleep(0.005)
        (record,) = obs_trace.drain()
        assert record["name"] == "engine.solve"
        assert record["dur"] == pytest.approx(clock.elapsed, rel=1e-6)

    def test_emit_parents_under_active_span(self):
        obs_trace.configure(observe_metrics=False)
        with obs_trace.span("root"):
            started = time.perf_counter()
            obs_trace.emit("service.queue", started, started + 0.25, lane=3)
        queue, root = obs_trace.drain()
        assert queue["parent"] == root["span"]
        assert queue["dur"] == pytest.approx(0.25)
        assert queue["attrs"] == {"lane": 3}

    def test_exception_annotates_error(self):
        obs_trace.configure(observe_metrics=False)
        with pytest.raises(ValueError):
            with obs_trace.span("engine.chase"):
                raise ValueError("no solution")
        (record,) = obs_trace.drain()
        assert record["attrs"]["error"] == "ValueError"

    def test_capture_diverts_and_restores(self):
        with obs_trace.capture() as captured:
            assert obs_trace.enabled()
            with obs_trace.span("host.worker"):
                pass
        assert not obs_trace.enabled()
        assert [r["name"] for r in captured] == ["host.worker"]
        assert obs_trace.records() == []  # diverted, not buffered

    def test_activate_reparents_across_threads(self):
        obs_trace.configure(observe_metrics=False)
        with obs_trace.span("root"):
            context = obs_trace.current_context()

            def work():
                with obs_trace.activate(context):
                    with obs_trace.span("offloaded"):
                        pass

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        records = obs_trace.drain()
        root = assert_single_rooted(records)
        assert root["name"] == "root"

    def test_slow_request_logs_the_tree(self):
        slow_lines = []
        obs_trace.configure(observe_metrics=False, slow_threshold=0.0,
                            slow_sink=slow_lines.append)
        with obs_trace.span("service.request"):
            with obs_trace.span("engine.chase"):
                pass
        assert len(slow_lines) == 1
        assert "slow request" in slow_lines[0]
        assert "service.request" in slow_lines[0]
        assert "engine.chase" in slow_lines[0]

    def test_file_sink_round_trips(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        obs_trace.configure(observe_metrics=False, trace_path=str(path))
        with obs_trace.span("server.request", bytes=42):
            with obs_trace.span("engine.freeze"):
                pass
        obs_trace.disable()  # closes the sink
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [r["name"] for r in records] == \
            ["engine.freeze", "server.request"]
        assert_single_rooted(records)

    def test_span_durations_feed_the_metrics_registry(self):
        obs_metrics.registry.reset()
        obs_trace.configure()
        with obs_trace.span("engine.plan_run"):
            pass
        obs_trace.disable()
        snapshot = obs_metrics.registry.snapshot()
        assert snapshot["histograms"]["span.engine.plan_run"]["count"] == 1


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #

class TestHistogramEdges:
    def test_zero_lands_in_the_first_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.0)
        assert histogram.snapshot()["buckets"]["1.0"] == 1
        assert histogram.quantile(0.5) == 0.0  # clamped to the observed max

    def test_exact_bound_lands_in_that_bounds_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(1.0)   # le semantics: == bound -> that bucket
        histogram.observe(1.5)
        buckets = histogram.snapshot()["buckets"]
        assert buckets["1.0"] == 1
        assert buckets["2.0"] == 1

    def test_inf_lands_in_the_overflow_bucket(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(math.inf)
        assert histogram.snapshot()["buckets"]["inf"] == 1

    def test_quantiles_clamp_to_observed_range(self):
        histogram = Histogram(bounds=(10.0,))
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        # All samples share the [0, 10] bucket; interpolation would say
        # 10 * 0.99, but the clamp keeps the estimate inside the data.
        assert histogram.quantile(0.99) <= 3.0
        assert histogram.quantile(0.01) >= 1.0

    def test_empty_histogram_has_no_quantiles(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        view = histogram.snapshot()
        assert view["count"] == 0 and view["min"] is None

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=())


class TestMetricsRegistry:
    def test_same_name_same_instrument(self):
        metrics = MetricsRegistry()
        metrics.counter("requests").inc()
        metrics.counter("requests").inc(2)
        assert metrics.counter("requests").value == 3

    def test_cross_kind_reuse_is_a_loud_error(self):
        metrics = MetricsRegistry()
        metrics.counter("loop.lag")
        with pytest.raises(TypeError, match="already exists"):
            metrics.gauge("loop.lag")

    def test_counters_refuse_to_go_down(self):
        metrics = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            metrics.counter("requests").inc(-1)

    def test_snapshot_groups_by_kind(self):
        metrics = MetricsRegistry()
        metrics.counter("served").inc(5)
        metrics.gauge("depth").set(2.5)
        metrics.histogram("lat", bounds=(1.0,)).observe(0.5)
        view = metrics.snapshot()
        assert view["counters"] == {"served": 5}
        assert view["gauges"] == {"depth": 2.5}
        assert view["histograms"]["lat"]["count"] == 1

    def test_loop_lag_probe_records(self):
        metrics = MetricsRegistry()

        async def run():
            probe = asyncio.create_task(
                obs_metrics.loop_lag_probe(interval=0.01, metrics=metrics))
            await asyncio.sleep(0.08)
            probe.cancel()

        asyncio.run(run())
        assert metrics.histogram("loop.lag.seconds").count >= 2


# --------------------------------------------------------------------- #
# Engine phase spans
# --------------------------------------------------------------------- #

class TestEngineSpans:
    def test_certain_answers_produces_every_phase(self, library_pair):
        from repro import ExchangeEngine, compile_setting
        setting, tree, query = library_pair
        engine = ExchangeEngine(compile_setting(setting))
        obs_trace.configure(observe_metrics=False)
        result = engine.certain_answers(tree, query)
        obs_trace.disable()
        assert result.ok
        records = obs_trace.drain()
        trace_records = spans_of(records, records[-1]["trace"])
        root = assert_single_rooted(trace_records)
        assert root["name"] == "engine.certain_answers"
        names = {r["name"] for r in trace_records}
        assert {"engine.certain_answers", "engine.cache_lookup",
                "engine.chase", "engine.freeze", "engine.plan_compile",
                "engine.plan_run"} <= names
        # elapsed is read on the same clock as the span, just before its
        # __exit__ stamps dur — so dur is a hair larger, never smaller.
        assert 0 <= root["dur"] - result.elapsed < 0.01


# --------------------------------------------------------------------- #
# Cross-process propagation through the shard host
# --------------------------------------------------------------------- #

class TestHostTraces:
    def test_host_mode_request_is_one_rooted_tree(self, library_pair):
        setting, tree, query = library_pair

        async def run():
            service = AsyncExchangeService(executor="host", workers=2)
            try:
                fingerprint = service.register(setting)
                obs_trace.configure(observe_metrics=False)
                result = await service.submit(
                    certain_answers_request(fingerprint, tree, query))
                assert result.ok
            finally:
                obs_trace.disable()
                await service.aclose()

        asyncio.run(run())
        records = obs_trace.drain()
        roots = [r for r in records if r["parent"] is None
                 and r["name"] == "service.request"]
        assert len(roots) == 1
        trace_records = spans_of(records, roots[0]["trace"])
        root = assert_single_rooted(trace_records)
        names = {r["name"] for r in trace_records}
        assert {"service.request", "service.admission", "service.queue",
                "service.execute", "host.pipe", "host.worker",
                "engine.certain_answers", "engine.chase", "engine.freeze",
                "engine.plan_compile", "engine.plan_run"} <= names
        # The tree genuinely crosses the process boundary ...
        assert len({r["pid"] for r in trace_records}) >= 2
        # ... and the worker span parents under the supervisor's pipe span.
        by_id = {r["span"]: r for r in trace_records}
        worker = next(r for r in trace_records if r["name"] == "host.worker")
        assert by_id[worker["parent"]]["name"] == "host.pipe"
        # Phase attribution accounts for the request's wall-clock: the
        # root's direct children (admission, queue, execute) cover it.
        children = [r for r in trace_records if r["parent"] == root["span"]]
        assert sum(r["dur"] for r in children) >= 0.5 * root["dur"]

    def test_crash_retry_keeps_the_trace_rooted(self, library_pair):
        setting, tree, query = library_pair
        with ShardHost(workers=2) as host:
            fingerprint = host.register(setting)
            host.execute(certain_answers_request(fingerprint, tree, query))
            victim = host.worker_for(fingerprint)
            obs_trace.configure(observe_metrics=False)
            try:
                outcome = []

                def drive():
                    outcome.append(host.execute(
                        certain_answers_request(fingerprint, tree, query)))

                thread = threading.Thread(target=drive)
                thread.start()
                host.inject_crash(victim)
                thread.join(timeout=60)
                assert not thread.is_alive()
            finally:
                obs_trace.disable()
            wait_until(lambda: host.stats()["worker_restarts"] >= 1,
                       message="restart accounting")
            assert len(outcome) == 1 and outcome[0].ok
        records = obs_trace.drain()
        pipe_roots = [r for r in records if r["parent"] is None
                      and r["name"] == "host.pipe"]
        assert len(pipe_roots) == 1
        trace_records = spans_of(records, pipe_roots[0]["trace"])
        # Whether the reply beat the crash or the retry served it, the
        # trace must reconstruct as one tree with no orphaned spans.
        assert_single_rooted(trace_records)
        names = {r["name"] for r in trace_records}
        assert "host.worker" in names
        assert "engine.certain_answers" in names

    def test_in_flight_gauges_settle_to_zero(self, library_pair):
        setting, tree, query = library_pair
        with ShardHost(workers=2) as host:
            fingerprint = host.register(setting)
            host.execute(certain_answers_request(fingerprint, tree, query))
            for index in range(host.workers):
                gauge = obs_metrics.registry.gauge(
                    f"host.worker{index}.in_flight")
                assert gauge.value == 0


class TestHostStatsSnapshot:
    def test_views_are_tagged_with_pid_and_generation(self, library_pair):
        setting, tree, query = library_pair
        with ShardHost(workers=2) as host:
            host.register(setting)
            view = host.stats()
            assert [v["generation"] for v in view["per_worker"]] == [1, 1]
            assert [v["pid"] for v in view["per_worker"]] == \
                host.worker_pids()
            assert all(not v["stale"] for v in view["per_worker"])
            assert all(v["in_flight"] == 0 for v in view["per_worker"])

    def test_restart_bumps_the_generation(self, library_pair):
        setting, tree, query = library_pair
        with ShardHost(workers=2) as host:
            fingerprint = host.register(setting, prewarm=True)
            victim = host.worker_for(fingerprint)
            old_pid = host.worker_pids()[victim]
            host.inject_crash(victim)
            wait_until(lambda: host.worker_pids()[victim] != old_pid
                       and host.stats()["worker_restarts"] == 1,
                       message="worker restart")
            view = host.stats()
            generations = [v["generation"] for v in view["per_worker"]]
            assert generations[victim] == 2
            for index in range(host.workers):
                if index != victim:
                    assert generations[index] == 1
            # The replacement's view is fresh and attributable to its pid.
            assert view["per_worker"][victim]["pid"] == \
                host.worker_pids()[victim]
            assert not view["per_worker"][victim]["stale"]


# --------------------------------------------------------------------- #
# Report CLI
# --------------------------------------------------------------------- #

class TestReport:
    def make_dump(self, tmp_path):
        obs_trace.configure(observe_metrics=False,
                            trace_path=str(tmp_path / "dump.jsonl"))
        for _ in range(3):
            with obs_trace.span("service.request"):
                with obs_trace.span("engine.chase"):
                    pass
                with obs_trace.span("engine.plan_run"):
                    pass
        obs_trace.disable()
        obs_trace.drain()
        return tmp_path / "dump.jsonl"

    def test_table_markdown_and_collapsed(self, tmp_path, capsys):
        dump = self.make_dump(tmp_path)
        markdown = tmp_path / "report.md"
        collapsed = tmp_path / "spans.collapsed"
        code = obs_report.main([str(dump), "--markdown", str(markdown),
                                "--collapsed", str(collapsed), "--tree"])
        assert code == 0
        output = capsys.readouterr().out
        assert "service.request" in output and "p99 ms" in output
        table = markdown.read_text()
        assert table.startswith("| phase | count |")
        assert "| service.request | 3 |" in table
        stack_lines = collapsed.read_text().splitlines()
        assert stack_lines  # valid collapsed-stack syntax, leaf included
        for line in stack_lines:
            assert re.fullmatch(r"[\w.]+(;[\w.]+)* \d+", line), line
        assert any(line.startswith("service.request;engine.chase ")
                   for line in stack_lines)

    def test_self_time_subtracts_children(self):
        records = [
            {"trace": "t", "span": "a", "parent": None,
             "name": "root", "start": 0.0, "dur": 1.0, "pid": 1},
            {"trace": "t", "span": "b", "parent": "a",
             "name": "child", "start": 0.1, "dur": 0.4, "pid": 1},
        ]
        stacks = obs_report.collapsed_stacks(records)
        assert stacks["root"] == 600_000       # 1.0 s - 0.4 s, in µs
        assert stacks["root;child"] == 400_000

    def test_missing_parent_roots_its_own_stack(self):
        records = [{"trace": "t", "span": "x", "parent": "evicted",
                    "name": "leaf", "start": 0.0, "dur": 0.5, "pid": 1}]
        assert obs_report.collapsed_stacks(records) == {"leaf": 500_000}

    def test_empty_dump_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("not json\n")
        assert obs_report.main([str(empty)]) == 2
        assert obs_report.main([str(tmp_path / "absent.jsonl")]) == 2


# --------------------------------------------------------------------- #
# Server surface
# --------------------------------------------------------------------- #

class TestServerSurface:
    def test_trace_dump_and_extended_stats(self, library_pair):
        setting, tree, query = library_pair
        obs_trace.configure(observe_metrics=True)
        try:
            port, _, join = serve_in_background(executor="thread",
                                                parallel=2)
            with ServiceClient(port=port) as client:
                fingerprint = client.register(setting)
                answers = client.certain_answers(
                    fingerprint, tree,
                    "bib[writer(@name=w)[work(@title='Book-0')]]")
                assert answers is not None
                dump = client.trace_dump()
                assert dump["enabled"]
                names = {record["name"] for record in dump["spans"]}
                assert {"server.request", "service.request",
                        "engine.certain_answers"} <= names
                reply = client.request({"op": "stats"})
                assert reply["obs"]["tracing"] is True
                histograms = reply["obs"]["metrics"]["histograms"]
                assert "span.engine.certain_answers" in histograms
                limited = client.trace_dump(limit=2)
                assert len(limited["spans"]) == 2
                client.shutdown()
            join()
        finally:
            obs_trace.disable()
