"""The serving layer: registry, router and the async facade.

Covers admission/lazy compilation/LRU eviction of compiled settings,
order-preserving mixed-batch routing, executor parity and the per-setting
isolation of the bounded result caches.  (Error propagation has its own
file, ``test_service_errors.py``; the JSON-lines server has
``test_service_server.py``.)
"""

import asyncio
import threading

import pytest

from repro import DTD, DataExchangeSetting, ExchangeEngine, std
from repro.service import (AsyncExchangeService, ExchangeRequest, Router,
                           SettingRegistry, UnknownSettingError,
                           certain_answers_request, classify_request,
                           consistency_request, solve_request)
from repro.workloads import library, nested_relational


@pytest.fixture
def company_pair(company_setting):
    tree = nested_relational.generate_company_source(2, employees_per_dept=2,
                                                     projects_per_dept=1)
    query = nested_relational.query_projects_of("Dept-0")
    return company_setting, tree, query


@pytest.fixture
def library_pair(library_setting):
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = library.query_writer_of("Book-0")
    return library_setting, tree, query


class TestRequests:
    def test_validation(self, library_setting):
        fingerprint = library_setting.fingerprint()
        with pytest.raises(ValueError, match="unknown operation"):
            ExchangeRequest("frobnicate", fingerprint)
        with pytest.raises(ValueError, match="source tree"):
            ExchangeRequest("solve", fingerprint)
        with pytest.raises(ValueError, match="query"):
            ExchangeRequest("certain_answers", fingerprint,
                            tree=library.figure_1_source())

    def test_helpers_set_op(self, library_pair):
        setting, tree, query = library_pair
        fingerprint = setting.fingerprint()
        assert consistency_request(fingerprint).op == "consistency"
        assert classify_request(fingerprint).op == "classify"
        assert solve_request(fingerprint, tree).op == "solve"
        request = certain_answers_request(fingerprint, tree, query, ["w"])
        assert request.op == "certain_answers"
        assert request.variable_order == ("w",)


class TestSettingRegistry:
    def test_register_returns_fingerprint_and_is_idempotent(
            self, library_setting):
        registry = SettingRegistry()
        fingerprint = registry.register(library_setting)
        assert fingerprint == library_setting.fingerprint()
        assert registry.register(library.library_setting()) == fingerprint
        assert len(registry) == 1
        assert fingerprint in registry

    def test_compilation_is_lazy(self, library_setting):
        registry = SettingRegistry()
        fingerprint = registry.register(library_setting)
        assert registry.stats()["compiled_entries"] == 0
        shard = registry.shard(fingerprint)
        assert registry.stats()["compiled_entries"] == 1
        assert registry.shard(fingerprint) is shard  # cached, same shard
        stats = registry.stats()
        assert stats["compiled_hits"] == 1
        assert stats["compiled_misses"] == 1

    def test_unknown_fingerprint_raises(self):
        registry = SettingRegistry()
        with pytest.raises(UnknownSettingError, match="no setting registered"):
            registry.shard("f" * 64)
        with pytest.raises(UnknownSettingError):
            registry.setting("f" * 64)

    def test_compiled_lru_evicts_but_settings_survive(
            self, library_setting, company_setting, figure_6_setting):
        registry = SettingRegistry(max_compiled=2)
        keys = [registry.register(setting) for setting in
                (library_setting, company_setting, figure_6_setting)]
        registry.shard(keys[0])
        registry.shard(keys[1])
        registry.shard(keys[0])          # refresh: keys[1] is now the LRU
        registry.shard(keys[2])          # evicts keys[1]
        assert registry.compiled_fingerprints() == [keys[0], keys[2]]
        assert registry.stats()["compiled_evictions"] == 1
        # The evicted setting is still registered: the next request simply
        # recompiles it (counted as a fresh miss).
        misses = registry.stats()["compiled_misses"]
        shard = registry.shard(keys[1])
        assert shard.fingerprint == keys[1]
        assert registry.stats()["compiled_misses"] == misses + 1

    def test_len_and_contains_under_concurrent_register(self):
        """Regression: __len__/__contains__ read the settings map without
        the registry lock.  Hammer both while registrations mutate the map
        and assert nothing raises and the final view is exact."""
        def tiny(i):
            source = DTD("db", {"db": f"r{i}*", f"r{i}": ""},
                         {f"r{i}": ["v"]})
            target = DTD("t", {"t": f"a{i}*", f"a{i}": ""}, {f"a{i}": ["v"]})
            return DataExchangeSetting(
                source, target, [std(f"t[a{i}(@v=x)]", f"db[r{i}(@v=x)]")])

        registry = SettingRegistry()
        settings = [tiny(i) for i in range(24)]
        errors = []

        def register_chunk(chunk):
            try:
                for setting in chunk:
                    registry.register(setting)
            except BaseException as error:  # pragma: no cover - regression
                errors.append(error)

        def poll():
            try:
                for _ in range(400):
                    count = len(registry)
                    assert 0 <= count <= len(settings)
                    ("f" * 64) in registry
            except BaseException as error:  # pragma: no cover - regression
                errors.append(error)

        threads = [threading.Thread(target=register_chunk,
                                    args=(settings[i::4],))
                   for i in range(4)]
        threads += [threading.Thread(target=poll) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(registry) == len(settings)
        for setting in settings:
            assert setting.fingerprint() in registry

    def test_failing_compile_counts_failures_not_misses(self,
                                                        library_setting,
                                                        monkeypatch):
        """Regression: _obtain charged compiled_misses/prewarm_compiles
        *before* compile_setting ran, so a raising compile permanently
        skewed those counters against shards that were never admitted."""
        from repro.service import registry as registry_module
        real = registry_module.compile_setting
        registry = SettingRegistry()
        fingerprint = registry.register(library_setting)

        def failing(setting):
            raise RuntimeError("compile exploded")

        monkeypatch.setattr(registry_module, "compile_setting", failing)
        with pytest.raises(RuntimeError, match="compile exploded"):
            registry.shard(fingerprint)
        with pytest.raises(RuntimeError, match="compile exploded"):
            registry.prewarm(fingerprint)
        stats = registry.stats()
        assert stats["compile_failures"] == 2
        assert stats["compiled_misses"] == 0
        assert stats["prewarm_compiles"] == 0
        assert stats["compiled_entries"] == 0
        # Recovery: the next request elects a new compile owner and the
        # success is counted exactly once.
        monkeypatch.setattr(registry_module, "compile_setting", real)
        registry.shard(fingerprint)
        stats = registry.stats()
        assert stats["compiled_misses"] == 1
        assert stats["compiled_entries"] == 1
        assert stats["compile_failures"] == 2  # unchanged

    def test_register_compiled_preseeds_the_shard(self, library_setting):
        from repro import compile_setting
        registry = SettingRegistry()
        fingerprint = registry.register(compile_setting(library_setting))
        assert registry.stats()["compiled_entries"] == 1
        assert registry.shard(fingerprint).engine.compiled.setting \
            is library_setting

    def test_result_caches_are_per_setting(self, library_pair, company_pair):
        """One tenant's traffic cannot evict another tenant's entries."""
        registry = SettingRegistry(result_cache_maxsize=2)
        lib_setting, lib_tree, lib_query = library_pair
        com_setting, com_tree, com_query = company_pair
        lib = registry.shard(registry.register(lib_setting))
        com = registry.shard(registry.register(com_setting))
        fingerprint = lib.fingerprint
        lib.execute(certain_answers_request(fingerprint, lib_tree, lib_query))
        # A flood on the company shard fills (and overflows) only its cache.
        for seed in range(4):
            tree = nested_relational.generate_company_source(
                1 + seed % 2, employees_per_dept=1 + seed // 2,
                projects_per_dept=1)
            com.execute(certain_answers_request(com.fingerprint, tree,
                                                com_query))
        assert com.stats()["result_cache_evictions"] >= 1
        assert lib.stats()["result_cache_evictions"] == 0
        # ... and the library entry is still warm.
        result = lib.execute(certain_answers_request(fingerprint, lib_tree,
                                                     lib_query))
        assert result.cache["result_cache_hits"] == 1

    def test_invalid_max_compiled_rejected(self):
        with pytest.raises(ValueError, match="max_compiled"):
            SettingRegistry(max_compiled=0)

    def test_closed_shard_serves_process_requests_inline(self, library_pair):
        """Eviction is a performance event, never a correctness event: a
        stale shard reference whose pool was closed computes inline and
        never re-creates an unreachable pool."""
        setting, tree, query = library_pair
        registry = SettingRegistry()
        fingerprint = registry.register(setting)
        shard = registry.shard(fingerprint)
        shard.close()
        result = shard.execute(
            certain_answers_request(fingerprint, tree, query),
            process_parallel=2)
        assert result.ok
        assert result.payload == \
            ExchangeEngine(setting).certain_answers(tree, query).payload
        assert shard._pool is None  # closed shards stay pool-less


class TestRouter:
    def test_partition_preserves_positions(self, library_pair, company_pair):
        lib_setting, lib_tree, lib_query = library_pair
        com_setting, com_tree, com_query = company_pair
        lib_fp = lib_setting.fingerprint()
        com_fp = com_setting.fingerprint()
        requests = [consistency_request(lib_fp),
                    consistency_request(com_fp),
                    certain_answers_request(lib_fp, lib_tree, lib_query),
                    certain_answers_request(com_fp, com_tree, com_query),
                    solve_request(lib_fp, lib_tree)]
        router = Router(SettingRegistry())
        groups = router.partition(requests)
        assert list(groups) == [lib_fp, com_fp]  # first-appearance order
        assert [index for index, _ in groups[lib_fp]] == [0, 2, 4]
        assert [index for index, _ in groups[com_fp]] == [1, 3]

    def test_execute_batch_reassembles_in_order(self, library_pair,
                                                company_pair):
        lib_setting, lib_tree, lib_query = library_pair
        com_setting, com_tree, com_query = company_pair
        registry = SettingRegistry()
        lib_fp = registry.register(lib_setting)
        com_fp = registry.register(com_setting)
        requests = [certain_answers_request(com_fp, com_tree, com_query),
                    consistency_request(lib_fp),
                    certain_answers_request(lib_fp, lib_tree, lib_query),
                    consistency_request(com_fp)]
        slots = Router(registry).execute_batch(requests)
        assert [slot.index for slot in slots] == [0, 1, 2, 3]
        assert [slot.fingerprint for slot in slots] == \
            [com_fp, lib_fp, lib_fp, com_fp]
        assert all(slot.ok for slot in slots)
        # Spot-check payloads against direct engines.
        direct = ExchangeEngine(lib_setting)
        assert slots[2].result.payload == \
            direct.certain_answers(lib_tree, lib_query).payload

    def test_wrong_shard_is_rejected(self, library_pair, company_pair):
        registry = SettingRegistry()
        lib_fp = registry.register(library_pair[0])
        com_fp = registry.register(company_pair[0])
        shard = registry.shard(lib_fp)
        with pytest.raises(ValueError, match="routed to"):
            shard.execute(consistency_request(com_fp))


class TestAsyncService:
    def test_single_requests_match_direct_engine(self, library_pair):
        setting, tree, query = library_pair
        direct = ExchangeEngine(setting)

        async def scenario():
            async with AsyncExchangeService(parallel=2) as service:
                fingerprint = service.register(setting)
                consistency = await service.check_consistency(fingerprint)
                classify = await service.classify(fingerprint)
                solved = await service.solve(fingerprint, tree)
                answers = await service.certain_answers(fingerprint, tree,
                                                        query)
                return consistency, classify, solved, answers

        consistency, classify, solved, answers = asyncio.run(scenario())
        assert consistency.payload == direct.check_consistency().payload
        assert classify.payload.tractable == direct.classify().payload.tractable
        assert solved.payload.equals(direct.solve(tree).payload,
                                     respect_order=False)
        assert answers.payload == direct.certain_answers(tree, query).payload

    @pytest.mark.parametrize("executor,parallel", [
        ("serial", 1), ("thread", 3)])
    def test_mixed_batch_parity_across_executors(self, library_pair,
                                                 company_pair, executor,
                                                 parallel):
        lib_setting, lib_tree, lib_query = library_pair
        com_setting, com_tree, com_query = company_pair

        async def scenario():
            async with AsyncExchangeService(executor=executor,
                                            parallel=parallel) as service:
                lib_fp = service.register(lib_setting)
                com_fp = service.register(com_setting)
                requests = [
                    certain_answers_request(lib_fp, lib_tree, lib_query),
                    certain_answers_request(com_fp, com_tree, com_query),
                    consistency_request(lib_fp),
                    consistency_request(com_fp),
                    certain_answers_request(lib_fp, lib_tree, lib_query),
                ]
                return await service.batch(requests)

        slots = asyncio.run(scenario())
        assert all(slot.ok for slot in slots)
        lib_direct = ExchangeEngine(lib_setting)
        com_direct = ExchangeEngine(com_setting)
        assert slots[0].result.payload == \
            lib_direct.certain_answers(lib_tree, lib_query).payload
        assert slots[1].result.payload == \
            com_direct.certain_answers(com_tree, com_query).payload
        assert slots[2].result.payload is True
        assert slots[3].result.payload is True
        # The duplicate request was a result-cache hit on the library shard.
        assert slots[4].result.cache["result_cache_hits"] >= 1

    def test_process_executor_round_trip(self, library_pair):
        setting, tree, query = library_pair

        async def scenario():
            async with AsyncExchangeService(executor="process",
                                            parallel=2) as service:
                fingerprint = service.register(setting)
                first = await service.certain_answers(fingerprint, tree,
                                                      query)
                second = await service.certain_answers(fingerprint, tree,
                                                       query)
                return first, second

        first, second = asyncio.run(scenario())
        direct = ExchangeEngine(setting)
        assert first.payload == direct.certain_answers(tree, query).payload
        # The repeat was served by the parent's result cache, not a worker.
        assert second.cache["result_cache_hits"] == 1

    def test_empty_batch(self, library_setting):
        async def scenario():
            async with AsyncExchangeService() as service:
                service.register(library_setting)
                return await service.batch([])
        assert asyncio.run(scenario()) == []

    def test_submit_after_close_is_refused(self, library_pair):
        setting, tree, query = library_pair

        async def scenario():
            service = AsyncExchangeService()
            fingerprint = service.register(setting)
            await service.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await service.check_consistency(fingerprint)

        asyncio.run(scenario())

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown service executor"):
            AsyncExchangeService(executor="fiber")

    def test_cache_bounds_with_explicit_registry_rejected(self):
        """Silently dropping the caller's bounds would defeat the knob."""
        with pytest.raises(ValueError, match="not both"):
            AsyncExchangeService(registry=SettingRegistry(),
                                 result_cache_maxsize=4)
        with pytest.raises(ValueError, match="not both"):
            AsyncExchangeService(registry=SettingRegistry(), max_compiled=2)

    def test_stats_shape(self, library_pair):
        setting, tree, query = library_pair

        async def scenario():
            async with AsyncExchangeService(parallel=2) as service:
                fingerprint = service.register(setting)
                await service.certain_answers(fingerprint, tree, query)
                return service.stats(), fingerprint

        stats, fingerprint = asyncio.run(scenario())
        assert stats["registry"]["settings_registered"] == 1
        assert stats["registry"]["compiled_entries"] == 1
        shard = stats["shards"][fingerprint]
        assert shard["requests"] == 1
        assert shard["errors"] == 0
        assert shard["result_cache_misses"] == 1
