"""Tests for DTDs: conformance, consistency/trimming, classes (Section 2, Thm 4.5)."""

import pytest

from repro.xmlmodel import DTD, XMLTree, parse_dtd
from repro.xmlmodel.dtd import nested_relational_factors
from repro.regexlang import parse_regex
from repro.workloads import library


@pytest.fixture
def source_dtd():
    return library.source_dtd()


class TestExample21:
    """Example 2.1: the source DTD of Figure 1 (a)."""

    def test_element_types_and_attributes(self, source_dtd):
        assert source_dtd.element_types == {"db", "book", "author"}
        assert source_dtd.attributes_of("book") == {"title"}
        assert source_dtd.attributes_of("author") == {"name", "aff"}
        assert source_dtd.attributes_of("db") == set()
        assert source_dtd.root == "db"

    def test_content_models(self, source_dtd):
        assert str(source_dtd.content_model("db")) == "book*"
        assert str(source_dtd.content_model("author")) == "ε"


class TestConformance:
    def test_figure_1_document_conforms(self, source_dtd):
        assert source_dtd.conforms(library.figure_1_source())

    def test_wrong_root(self, source_dtd):
        tree = XMLTree("book")
        tree.set_attribute(tree.root, "title", "t")
        assert not source_dtd.conforms(tree)
        assert any("root" in v for v in source_dtd.conformance_violations(tree))

    def test_missing_attribute_detected(self, source_dtd):
        tree = XMLTree.build(("db", [("book", {})]))
        violations = source_dtd.conformance_violations(tree)
        assert any("attributes" in v for v in violations)

    def test_extra_attribute_detected(self, source_dtd):
        tree = XMLTree.build(("db", [("book", {"title": "x", "isbn": "1"})]))
        assert not source_dtd.conforms(tree)

    def test_children_order_matters_for_ordered_conformance(self):
        dtd = DTD("r", {"r": "a b"})
        good = XMLTree.build(("r", [("a",), ("b",)]))
        bad = XMLTree.build(("r", [("b",), ("a",)]))
        assert dtd.conforms(good)
        assert not dtd.conforms(bad)
        # Unordered (weak) conformance only checks the permutation language.
        assert dtd.weakly_conforms(bad)

    def test_unknown_element_type(self):
        dtd = DTD("r", {"r": "a*"})
        tree = XMLTree.build(("r", [("z",)]))
        assert not dtd.conforms(tree)


class TestSatisfiabilityAndTrimming:
    def test_satisfiable_and_consistent(self, source_dtd):
        assert source_dtd.is_satisfiable()
        assert source_dtd.is_consistent()

    def test_unsatisfiable_dtd(self):
        # r requires an ``a`` child and ``a`` requires an ``a`` child forever.
        dtd = DTD("r", {"r": "a", "a": "a"})
        assert not dtd.is_satisfiable()
        with pytest.raises(ValueError):
            dtd.trimmed()

    def test_lemma_2_2_trimming(self):
        # ``b`` can never occur in a conforming tree (it needs an impossible c).
        dtd = DTD("r", {"r": "a (b|EPSILON)", "a": "", "b": "c", "c": "c"})
        assert dtd.is_satisfiable()
        assert not dtd.is_consistent()
        assert "b" not in dtd.usable_types()
        trimmed = dtd.trimmed()
        assert trimmed.is_consistent()
        assert trimmed.element_types == {"r", "a"}
        # SAT(D) = SAT(D'): the only conforming skeleton is r[a].
        tree = XMLTree.build(("r", [("a",)]))
        assert dtd.conforms(tree) and trimmed.conforms(tree)

    def test_realizable_types(self):
        dtd = DTD("r", {"r": "a | b", "a": "", "b": "b"})
        assert dtd.realizable_types() == {"r", "a"}


class TestGraphAndRecursion:
    def test_graph(self, source_dtd):
        graph = source_dtd.graph()
        assert graph["db"] == {"book"}
        assert graph["book"] == {"author"}

    def test_recursive_detection(self):
        assert DTD("r", {"r": "a", "a": "r?"}).is_recursive()
        assert not DTD("r", {"r": "a", "a": ""}).is_recursive()

    def test_restriction(self, source_dtd):
        restricted = source_dtd.restricted_to("book")
        assert restricted.root == "book"
        assert restricted.element_types == {"book", "author"}


class TestNestedRelational:
    def test_factors(self):
        factors = nested_relational_factors(parse_regex("a b? c* d+"))
        assert factors == [("a", "1"), ("b", "?"), ("c", "*"), ("d", "+")]

    def test_not_nested_relational_shapes(self):
        assert nested_relational_factors(parse_regex("a a")) is None
        assert nested_relational_factors(parse_regex("(a b)*")) is None
        assert nested_relational_factors(parse_regex("a | b")) is None

    def test_dtd_class_detection(self, source_dtd):
        assert source_dtd.is_nested_relational()
        assert not DTD("r", {"r": "(a b)*"}).is_nested_relational()
        assert not DTD("r", {"r": "a", "a": "r*"}).is_nested_relational()

    def test_lower_and_upper_transforms(self):
        dtd = DTD("r", {"r": "a? b* c+ d", "a": "", "b": "", "c": "", "d": ""})
        lower = dtd.nested_relational_lower()
        upper = dtd.nested_relational_upper()
        assert str(lower.content_model("r")) == "c d"
        assert str(upper.content_model("r")) == "a b c d"

    def test_unique_tree(self):
        dtd = DTD("r", {"r": "a b", "a": "c", "b": "", "c": ""})
        tree = dtd.unique_tree()
        assert dtd.conforms(tree)
        assert tree.children_labels(tree.root) == ["a", "b"]

    def test_unique_tree_rejects_ambiguity(self):
        with pytest.raises(ValueError):
            DTD("r", {"r": "a*"}).unique_tree()


class TestClasses:
    def test_simple_dtd(self):
        assert DTD("r", {"r": "(a|b)*", "a": "", "b": ""}).is_simple()
        assert not DTD("r", {"r": "a b"}).is_simple()

    def test_univocal_dtd(self, source_dtd):
        assert source_dtd.is_univocal()
        assert not DTD("r", {"r": "a | b", "a": "", "b": ""}).is_univocal()


class TestParseDtd:
    def test_parse_figure_1(self):
        dtd = library.source_dtd()
        assert dtd.root == "db"
        assert dtd.attributes_of("author") == {"name", "aff"}

    def test_parse_empty_content(self):
        dtd = parse_dtd("<!ELEMENT r EMPTY>")
        assert str(dtd.content_model("r")) == "ε"

    def test_parse_requires_declaration(self):
        with pytest.raises(ValueError):
            parse_dtd("<!ATTLIST r a CDATA #REQUIRED>")

    def test_explicit_root_override(self):
        dtd = parse_dtd("<!ELEMENT a (b*)> <!ELEMENT b EMPTY>", root="b")
        assert dtd.root == "b"

    def test_size_and_text(self):
        dtd = library.source_dtd()
        assert dtd.size() > 0
        assert "book" in dtd.to_text()
