"""Cross-validation: brute-force certain answers vs the canonical solution.

Theorem 5.5 (coNP upper bound) guarantees that small counterexample solutions
suffice; Lemma 6.5 says that for univocal target DTDs the canonical solution
characterises certain answers.  On settings small enough for exhaustive
enumeration the two procedures must agree — this is experiment E8.
"""

import pytest

from repro.exchange import (DataExchangeSetting, certain_answers,
                            naive_certain_answers, enumerate_target_trees, std)
from repro.patterns import exists, parse_pattern, pattern_query
from repro.xmlmodel import DTD, XMLTree


@pytest.fixture
def tiny_setting():
    """A two-element-type target with a required C→D chain (Figure 6 shape)."""
    source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
    target_dtd = DTD("r", {"r": "B* C?", "B": "", "C": ""},
                     {"B": ["m"], "C": ["n"]})
    dependency = std("r[B(@m=x)]", "A(@a=x)")
    return DataExchangeSetting(source_dtd, target_dtd, [dependency])


def test_enumeration_produces_only_weakly_conforming_trees(tiny_setting):
    trees = list(enumerate_target_trees(tiny_setting.target_dtd, ["1"], max_repeat=1))
    assert trees
    assert all(tiny_setting.target_dtd.weakly_conforms(t) for t in trees)


def test_naive_agrees_with_canonical_on_unary_query(tiny_setting):
    source = XMLTree.build(("r", [("A", {"a": "1"}), ("A", {"a": "2"})]))
    query = pattern_query(parse_pattern("r[B(@m=x)]"))
    canonical = certain_answers(tiny_setting, source, query)
    naive = naive_certain_answers(tiny_setting, source, query, max_repeat=2)
    assert canonical.has_solution and naive.has_solution
    assert naive.answers == canonical.answers == {("1",), ("2",)}


def test_naive_agrees_on_boolean_query(tiny_setting):
    source = XMLTree.build(("r", [("A", {"a": "1"})]))
    # "is there a C node with some value?" — never certain: a solution without
    # a C node exists (C is optional), and even with one its value is a null.
    query = exists(["x"], pattern_query(parse_pattern("r[C(@n=x)]")))
    canonical = certain_answers(tiny_setting, source, query)
    naive = naive_certain_answers(tiny_setting, source, query, max_repeat=1)
    assert canonical.certain() is False
    assert naive.answers == set() == canonical.answers


def test_naive_agrees_on_positive_boolean_query(tiny_setting):
    source = XMLTree.build(("r", [("A", {"a": "1"})]))
    query = exists(["x"], pattern_query(parse_pattern("r[B(@m=x)]")))
    canonical = certain_answers(tiny_setting, source, query)
    naive = naive_certain_answers(tiny_setting, source, query, max_repeat=1)
    assert canonical.certain() is True
    assert naive.answers == {()}


def test_naive_detects_unsolvable_settings():
    source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
    target_dtd = DTD("r", {"r": "B", "B": ""}, {"B": ["m"]})
    setting = DataExchangeSetting(source_dtd, target_dtd,
                                  [std("r[B(@m=x)]", "A(@a=x)")])
    source = XMLTree.build(("r", [("A", {"a": "1"}), ("A", {"a": "2"})]))
    query = pattern_query(parse_pattern("B(@m=x)"))
    canonical = certain_answers(setting, source, query)
    naive = naive_certain_answers(setting, source, query, max_repeat=2)
    assert not canonical.has_solution
    assert not naive.has_solution


def test_naive_certain_answers_shrink_with_more_solutions(tiny_setting):
    """The intersection over more solutions can only lose tuples — sanity check
    of the certain-answer semantics itself."""
    source = XMLTree.build(("r", [("A", {"a": "1"})]))
    query = pattern_query(parse_pattern("r[_(@m=x)]"))
    naive = naive_certain_answers(tiny_setting, source, query, max_repeat=2)
    canonical = certain_answers(tiny_setting, source, query)
    assert naive.answers == canonical.answers == {("1",)}
