"""Tests for the Const / Var value domain (Section 3.2)."""

from repro.xmlmodel.values import (Null, NullFactory, fresh_null, is_constant,
                                   is_null)


def test_null_identity_equality():
    assert Null(1) == Null(1)
    assert Null(1) != Null(2)
    assert Null(1) != "⊥1"


def test_null_hashable_and_repr():
    assert len({Null(1), Null(1), Null(2)}) == 2
    assert repr(Null(3)) == "⊥3"


def test_factory_produces_distinct_nulls():
    factory = NullFactory()
    produced = [factory.fresh() for _ in range(100)]
    assert len(set(produced)) == 100


def test_factories_with_disjoint_ranges_do_not_collide():
    first = NullFactory(start=1)
    second = NullFactory(start=10_000)
    assert first.fresh() != second.fresh()


def test_global_fresh_null_progression():
    assert fresh_null() != fresh_null()


def test_constant_and_null_predicates():
    assert is_constant("abc")
    assert not is_constant(Null(1))
    assert is_null(Null(1))
    assert not is_null("abc")
