"""Tests for the XML tree model (Section 2)."""

import pytest

from repro.xmlmodel import XMLTree
from repro.xmlmodel.values import Null


@pytest.fixture
def sample():
    return XMLTree.build(("db", [
        ("book", {"title": "B1"}, [("author", {"name": "A", "aff": "U"})]),
        ("book", {"title": "B2"}),
    ]))


def test_build_and_labels(sample):
    assert sample.label(sample.root) == "db"
    assert sample.children_labels(sample.root) == ["book", "book"]
    assert len(sample) == 4


def test_attributes_and_values(sample):
    books = sample.children(sample.root)
    assert sample.attribute(books[0], "title") == "B1"
    assert sample.attribute(books[0], "missing") is None
    assert sample.constants() == {"B1", "B2", "A", "U"}
    assert sample.nulls() == set()


def test_add_child_and_positions():
    tree = XMLTree("r")
    first = tree.add_child(tree.root, "a")
    tree.add_child(tree.root, "c")
    tree.add_child(tree.root, "b", position=1)
    assert tree.children_labels(tree.root) == ["a", "b", "c"]
    assert tree.parent(first) == tree.root


def test_depth_and_size(sample):
    assert sample.depth() == 2
    assert sample.size() == 4 + 4  # 4 nodes + 4 attribute assignments


def test_descendants_and_ancestor(sample):
    books = sample.children(sample.root)
    descendants = list(sample.descendants(sample.root))
    assert len(descendants) == 3
    author = sample.children(books[0])[0]
    assert sample.is_ancestor(sample.root, author)
    assert not sample.is_ancestor(author, sample.root)


def test_remove_subtree(sample):
    books = sample.children(sample.root)
    sample.remove_subtree(books[0])
    assert sample.children_labels(sample.root) == ["book"]
    assert len(sample) == 2


def test_remove_root_rejected(sample):
    with pytest.raises(ValueError):
        sample.remove_subtree(sample.root)


def test_graft_subtree(sample):
    other = XMLTree.build(("book", {"title": "B3"}))
    sample.graft_subtree(sample.root, other)
    assert sample.children_labels(sample.root) == ["book", "book", "book"]


def test_replace_subtree(sample):
    books = sample.children(sample.root)
    other = XMLTree.build(("book", {"title": "B9"}, [("author", {"name": "X", "aff": "Y"})]))
    new_root = sample.replace_subtree(books[1], other)
    assert sample.attribute(new_root, "title") == "B9"
    assert sample.children_labels(new_root) == ["author"]


def test_merge_children():
    tree = XMLTree.build(("r", [
        ("a", {"k": "1"}, [("x",)]),
        ("a", {"k": "2"}, [("y",)]),
        ("b",),
    ]))
    children = tree.children(tree.root)
    merged = tree.merge_children(tree.root, children[:2])
    assert tree.children_labels(tree.root) == ["a", "b"]
    assert sorted(tree.children_labels(merged)) == ["x", "y"]


def test_copy_is_independent(sample):
    clone = sample.copy()
    clone.add_child(clone.root, "book", {"title": "B3"})
    assert len(clone) == len(sample) + 1


def test_structural_equality_ignores_order_when_unordered():
    left = XMLTree.build(("r", [("a",), ("b",)]), ordered=False)
    right = XMLTree.build(("r", [("b",), ("a",)]), ordered=False)
    assert left.equals(right)
    ordered_left = left.as_ordered()
    ordered_right = right.as_ordered()
    assert not ordered_left.equals(ordered_right)


def test_structural_key_distinguishes_nulls():
    left = XMLTree.build(("r", {"a": Null(1)}))
    right = XMLTree.build(("r", {"a": Null(2)}))
    assert not left.equals(right)


def test_to_xml_and_to_text(sample):
    xml = sample.to_xml()
    assert xml.startswith("<db>") and xml.endswith("</db>")
    assert 'title="B1"' in xml
    text = sample.to_text()
    assert "book" in text and "@title='B1'" in text
