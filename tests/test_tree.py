"""Tests for the XML tree model (Section 2)."""

import pytest

from repro.xmlmodel import XMLTree
from repro.xmlmodel.values import Null


@pytest.fixture
def sample():
    return XMLTree.build(("db", [
        ("book", {"title": "B1"}, [("author", {"name": "A", "aff": "U"})]),
        ("book", {"title": "B2"}),
    ]))


def test_build_and_labels(sample):
    assert sample.label(sample.root) == "db"
    assert sample.children_labels(sample.root) == ["book", "book"]
    assert len(sample) == 4


def test_attributes_and_values(sample):
    books = sample.children(sample.root)
    assert sample.attribute(books[0], "title") == "B1"
    assert sample.attribute(books[0], "missing") is None
    assert sample.constants() == {"B1", "B2", "A", "U"}
    assert sample.nulls() == set()


def test_add_child_and_positions():
    tree = XMLTree("r")
    first = tree.add_child(tree.root, "a")
    tree.add_child(tree.root, "c")
    tree.add_child(tree.root, "b", position=1)
    assert tree.children_labels(tree.root) == ["a", "b", "c"]
    assert tree.parent(first) == tree.root


def test_depth_and_size(sample):
    assert sample.depth() == 2
    assert sample.size() == 4 + 4  # 4 nodes + 4 attribute assignments


def test_descendants_and_ancestor(sample):
    books = sample.children(sample.root)
    descendants = list(sample.descendants(sample.root))
    assert len(descendants) == 3
    author = sample.children(books[0])[0]
    assert sample.is_ancestor(sample.root, author)
    assert not sample.is_ancestor(author, sample.root)


def test_remove_subtree(sample):
    books = sample.children(sample.root)
    sample.remove_subtree(books[0])
    assert sample.children_labels(sample.root) == ["book"]
    assert len(sample) == 2


def test_remove_root_rejected(sample):
    with pytest.raises(ValueError):
        sample.remove_subtree(sample.root)


def test_graft_subtree(sample):
    other = XMLTree.build(("book", {"title": "B3"}))
    sample.graft_subtree(sample.root, other)
    assert sample.children_labels(sample.root) == ["book", "book", "book"]


def test_replace_subtree(sample):
    books = sample.children(sample.root)
    other = XMLTree.build(("book", {"title": "B9"}, [("author", {"name": "X", "aff": "Y"})]))
    new_root = sample.replace_subtree(books[1], other)
    assert sample.attribute(new_root, "title") == "B9"
    assert sample.children_labels(new_root) == ["author"]


def test_merge_children():
    tree = XMLTree.build(("r", [
        ("a", {"k": "1"}, [("x",)]),
        ("a", {"k": "2"}, [("y",)]),
        ("b",),
    ]))
    children = tree.children(tree.root)
    merged = tree.merge_children(tree.root, children[:2])
    assert tree.children_labels(tree.root) == ["a", "b"]
    assert sorted(tree.children_labels(merged)) == ["x", "y"]


def test_merge_children_rejects_non_children():
    tree = XMLTree.build(("r", [("a", [("x",)]), ("a",)]))
    children = tree.children(tree.root)
    grandchild = tree.children(children[0])[0]
    size_before = len(tree)
    with pytest.raises(ValueError):
        tree.merge_children(tree.root, [grandchild, children[1]])
    # The guard fires before any mutation: the tree is untouched.
    assert len(tree) == size_before
    assert tree.children(tree.root) == children


def test_copy_is_independent(sample):
    clone = sample.copy()
    clone.add_child(clone.root, "book", {"title": "B3"})
    assert len(clone) == len(sample) + 1


def test_structural_equality_ignores_order_when_unordered():
    left = XMLTree.build(("r", [("a",), ("b",)]), ordered=False)
    right = XMLTree.build(("r", [("b",), ("a",)]), ordered=False)
    assert left.equals(right)
    ordered_left = left.as_ordered()
    ordered_right = right.as_ordered()
    assert not ordered_left.equals(ordered_right)


def test_structural_key_distinguishes_nulls():
    left = XMLTree.build(("r", {"a": Null(1)}))
    right = XMLTree.build(("r", {"a": Null(2)}))
    assert not left.equals(right)


def test_to_xml_and_to_text(sample):
    xml = sample.to_xml()
    assert xml.startswith("<db>") and xml.endswith("</db>")
    assert 'title="B1"' in xml
    text = sample.to_text()
    assert "book" in text and "@title='B1'" in text


def test_children_returns_shared_tuple(sample):
    """The read path never copies: children() hands out the node's own
    (immutable) child tuple, identical across calls."""
    first = sample.children(sample.root)
    assert isinstance(first, tuple)
    assert sample.children(sample.root) is first
    # A returned tuple is stable across mutation (the node gets a new one).
    sample.add_child(sample.root, "book", {"title": "B3"})
    assert len(first) == 2
    assert len(sample.children(sample.root)) == 3


def test_reorder_children_validates_permutation(sample):
    books = sample.children(sample.root)
    sample.reorder_children(sample.root, tuple(reversed(books)))
    assert sample.children(sample.root) == tuple(reversed(books))
    with pytest.raises(ValueError):
        sample.reorder_children(sample.root, books[:1])


def test_fingerprint_cache_invalidated_by_mutation(sample):
    before = sample.fingerprint()
    assert sample.fingerprint() == before  # memoised
    sample.set_attribute(sample.root, "note", "x")
    assert sample.fingerprint() != before
    sample.add_child(sample.root, "book", {"title": "B4"})
    changed = sample.fingerprint()
    sample.remove_subtree(sample.children(sample.root)[-1])
    assert sample.fingerprint() != changed


class TestDeepTrees:
    """Regression: every traversal must be iterative — a depth-5000 chain
    used to blow ``sys.getrecursionlimit()`` in the recursive versions of
    ``structural_key`` / ``to_xml`` / ``to_text`` / ``_copy_children``."""

    DEPTH = 5000

    @pytest.fixture(scope="class")
    def chain(self):
        tree = XMLTree("d0")
        node = tree.root
        for level in range(1, self.DEPTH + 1):
            node = tree.add_child(node, f"d{level % 7}", {"level": str(level)})
        return tree

    def test_structural_key_and_fingerprint(self, chain):
        assert chain.depth() == self.DEPTH
        key = chain.structural_key()
        assert key[0] == "d0"
        assert len(chain.fingerprint()) == 64

    def test_to_text_and_to_xml(self, chain):
        text = chain.to_text()
        assert text.count("\n") == self.DEPTH
        xml = chain.to_xml()
        assert xml.startswith("<d0>") and xml.endswith("</d0>")

    def test_copy_graft_and_replace(self, chain):
        clone = chain.copy()
        assert clone.equals(chain)
        host = XMLTree("host")
        grafted = host.graft_subtree(host.root, chain)
        assert host.label(grafted) == "d0"
        assert host.depth() == self.DEPTH + 1
        stub = host.add_child(host.root, "stub")
        replaced = host.replace_subtree(stub, chain)
        assert host.label(replaced) == "d0"

    def test_freeze_deep(self, chain):
        frozen = chain.freeze()
        assert len(frozen) == self.DEPTH + 1
        assert frozen.fingerprint() == chain.fingerprint()

    def test_wire_roundtrip_deep(self, chain):
        from repro.service.protocol import (decode_line, encode_line,
                                            tree_from_wire, tree_to_wire)
        wire = tree_to_wire(chain)
        assert isinstance(wire, dict) and "flat" in wire  # deep → flat form
        # Deep trees must survive the JSON layer too, not just the codec.
        line = encode_line({"tree": wire})
        rebuilt = tree_from_wire(decode_line(line)["tree"])
        assert rebuilt.fingerprint() == chain.fingerprint()


class _ReprImpostor:
    """A value whose ``repr`` collides with ``Null(1)`` but which equals
    nothing except itself — the collision the old repr-keyed identity
    schemes would have aliased."""

    def __repr__(self):
        return repr(Null(1))

    def __eq__(self, other):
        return isinstance(other, _ReprImpostor)

    def __hash__(self):
        return 0


class TestTypeAwareValueIdentity:
    """Regression: dedup/fingerprint keys are type-aware — two distinct
    values with equal ``repr`` must never alias."""

    def test_structural_key_distinguishes_repr_collisions(self):
        genuine = XMLTree.build(("r", {"a": Null(1)}))
        impostor = XMLTree.build(("r", {"a": _ReprImpostor()}))
        assert repr(Null(1)) == repr(_ReprImpostor())
        assert genuine.structural_key() != impostor.structural_key()
        assert genuine.fingerprint() != impostor.fingerprint()

    def test_dedup_distinguishes_repr_collisions(self):
        from repro.patterns.evaluate import _dedup
        first = {"x": Null(1)}
        second = {"x": _ReprImpostor()}
        assert len(_dedup([first, second, dict(first)])) == 2

    def test_null_never_aliases_its_rendering(self):
        # repr(Null(1)) == "⊥1": a *constant* with that spelling is a
        # different value and must fingerprint differently.
        as_null = XMLTree.build(("r", {"a": Null(1)}))
        as_text = XMLTree.build(("r", {"a": "⊥1"}))
        assert as_null.fingerprint() != as_text.fingerprint()
