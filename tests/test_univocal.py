"""Tests for fixed_a(r), c(r), rep(w, r), ⊑_w and univocality (Section 6)."""

import pytest

from repro.regexlang import (analyse, c_value, is_simple_regex, is_univocal,
                             max_repairs, parse_regex, preorder_leq, repairs)


class TestCValue:
    def test_paper_example_a_or_aab_star(self):
        # The paper: c_a(a | aab*) = 2, c_b(a | aab*) = 0, so c = 2.
        analysis = analyse(parse_regex("a | a a b*"))
        assert analysis.c_a("a") == 2
        assert analysis.c_a("b") == 0
        assert analysis.c_value() == 2

    def test_simple_regexes_have_c_zero(self):
        assert c_value(parse_regex("(a|b|c)*")) == 0

    def test_required_single_occurrence(self):
        # b c+ d* e? : every symbol's maximal fixed count is ≤ 1.
        assert c_value(parse_regex("b c+ d* e?")) == 1

    def test_exactly_two_required(self):
        assert c_value(parse_regex("a a b*")) == 2

    def test_fixed_witness(self):
        analysis = analyse(parse_regex("a | a a b*"))
        witness = analysis.fixed_witness("a")
        assert witness is not None and witness["a"] == 2
        assert analysis.permutation_contains(witness)

    def test_c_value_finite_lemma_6_8(self):
        # Lemma 6.8: c(r) is finite for every r — spot-check a few expressions.
        for text in ["(a b)*", "a+ b+", "(a|b)* c c", "a a a | a*"]:
            assert c_value(parse_regex(text)) >= 0


class TestPreorder:
    def test_paper_example_ccdd_preferred_to_cd(self):
        # rep(cc, (cd)*(cde)*) contains ccdd and cd; ccdd is preferred (⊑_w).
        w = {"c": 2}
        assert preorder_leq({"c": 1, "d": 1}, {"c": 2, "d": 2}, w)
        assert not preorder_leq({"c": 2, "d": 2}, {"c": 1, "d": 1}, w)

    def test_ccdd_preferred_to_ccdde(self):
        w = {"c": 2}
        assert preorder_leq({"c": 2, "d": 2, "e": 1}, {"c": 2, "d": 2}, w)
        assert not preorder_leq({"c": 2, "d": 2}, {"c": 2, "d": 2, "e": 1}, w)


class TestRepairs:
    def test_example_6_13_rep_bb(self):
        # rep(BB, (BC)*) = min_ext(B,·) ∪ min_ext(BB,·) = {BC} ∪ {BBCC} as vectors.
        expr = parse_regex("(B C)*")
        result = repairs(["B", "B"], expr)
        as_sets = {tuple(sorted(v.items())) for v in result}
        assert (("B", 1), ("C", 1)) in as_sets
        assert (("B", 2), ("C", 2)) in as_sets
        # The ⊑_BB-maximum is BBCC (no merging, nothing extra).
        maxima = max_repairs(["B", "B"], expr)
        assert {tuple(sorted(v.items())) for v in maxima} == {(("B", 2), ("C", 2))}

    def test_rep_of_conforming_word_contains_itself(self):
        expr = parse_regex("(B C)*")
        result = repairs(["B", "C"], expr)
        assert any(v == {"B": 1, "C": 1} for v in result)

    def test_rep_paper_example_cc(self):
        expr = parse_regex("(c d)* (c d e)*")
        result = repairs(["c", "c"], expr)
        vectors = {tuple(sorted(v.items())) for v in result}
        assert (("c", 2), ("d", 2)) in vectors
        assert (("c", 1), ("d", 1)) in vectors
        maxima = max_repairs(["c", "c"], expr)
        assert {tuple(sorted(v.items())) for v in maxima} == {(("c", 2), ("d", 2))}

    def test_rep_empty_when_unrepairable(self):
        # R(b c+): two b's can only merge; rep(bb, bc+) = min_ext(b, bc+) ≠ ∅,
        # but for a DTD forbidding b entirely rep is empty.
        expr = parse_regex("c+")
        assert repairs(["b", "b"], expr) == []


class TestUnivocality:
    @pytest.mark.parametrize("pattern", [
        "b c+ d* e?",      # paper example
        "(b*|c*)",         # paper example
        "(b c)* (d e)*",   # paper example
        "(a|b|c)*",        # simple
        "",                # ε
        "a? b* c+ d",      # nested-relational shape
    ])
    def test_univocal_examples(self, pattern):
        assert is_univocal(parse_regex(pattern))

    @pytest.mark.parametrize("pattern", [
        "a | a a b*",      # c(r) = 2
        "a a b*",          # c(r) = 2
        "a a",             # c(r) = 2
    ])
    def test_non_univocal_because_c_at_least_two(self, pattern):
        assert not is_univocal(parse_regex(pattern))

    def test_bbc_star_has_c_zero_and_is_univocal(self):
        # Every member of π((bbc)*) can gain further b's, so fixed_b is empty,
        # c(r) = 0, and all repair sets have ⊑_w-maxima.
        expr = parse_regex("(b b c)*")
        assert c_value(expr) == 0
        assert is_univocal(expr)

    def test_non_univocal_because_no_maximum_repair(self):
        # rep(ε, a|b) = {a, b} has two ⊑-maximal, incomparable elements.
        expr = parse_regex("a | b")
        assert analyse(expr).c_value() <= 1
        assert not is_univocal(expr)

    def test_simple_regex_detection(self):
        assert is_simple_regex(parse_regex("(a|b|c)*"))
        assert is_simple_regex(parse_regex(""))
        # (a_1 | … | a_n)* requires pairwise-distinct symbols.
        assert not is_simple_regex(parse_regex("(a|a)*"))
        # a* is the n = 1 instance of the simple shape.
        assert is_simple_regex(parse_regex("a*"))
        assert not is_simple_regex(parse_regex("a b*"))

    def test_maximum_repair_used_by_change_reg(self):
        expr = parse_regex("(B C)*")
        analysis = analyse(expr)
        assert analysis.maximum_repair({"B": 2}) == {"B": 2, "C": 2}
        assert analysis.maximum_repair({}) == {}
        assert analysis.has_max_repair({"B": 3})
