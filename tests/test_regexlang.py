"""Tests for the regular-expression substrate: AST, parser, NFAs."""

import pytest

from repro.regexlang import (Concat, Star, Symbol, Union, concat, epsilon,
                             parse_regex, plus, optional, regex_to_nfa, star,
                             sym, union, RegexParseError, empty)


class TestParsing:
    def test_single_symbol(self):
        assert parse_regex("book") == Symbol("book")

    def test_star_and_concat(self):
        expr = parse_regex("book author*")
        assert isinstance(expr, Concat)
        assert expr.right == Star(Symbol("author"))

    def test_union_precedence(self):
        expr = parse_regex("a b | c")
        assert isinstance(expr, Union)
        assert isinstance(expr.left, Concat)

    def test_commas_are_concatenation(self):
        assert parse_regex("a, b, c") == parse_regex("a b c")

    def test_plus_and_optional_shorthands(self):
        assert parse_regex("a+") == plus(sym("a"))
        assert parse_regex("a?") == optional(sym("a"))

    def test_empty_string_and_keywords(self):
        assert parse_regex("") == epsilon()
        assert parse_regex("EMPTY") == epsilon()
        assert parse_regex("EPSILON") == epsilon()

    def test_parentheses(self):
        expr = parse_regex("(B C)*")
        assert isinstance(expr, Star)
        assert expr.inner == Concat(Symbol("B"), Symbol("C"))

    def test_parse_error(self):
        with pytest.raises(RegexParseError):
            parse_regex("a ) b")
        with pytest.raises(RegexParseError):
            parse_regex("(a")
        with pytest.raises(RegexParseError):
            parse_regex("*a")


class TestAst:
    def test_alphabet(self):
        assert parse_regex("a (b|c)* d?").alphabet() == {"a", "b", "c", "d"}

    def test_norm_matches_paper_definition(self):
        # ‖r‖ : ε→0, symbol→1, union/concat add, ‖r*‖ = ‖r‖ (before Lemma 5.8)
        assert parse_regex("a b").norm() == 2
        assert parse_regex("(a b)*").norm() == 2
        assert parse_regex("a | b | c").norm() == 3
        assert epsilon().norm() == 0

    def test_nullable(self):
        assert parse_regex("a*").nullable()
        assert parse_regex("a? b*").nullable()
        assert not parse_regex("a b*").nullable()

    def test_smart_constructors_simplify_empty(self):
        assert concat(sym("a"), empty()) == empty()
        assert union(sym("a"), empty()) == sym("a")
        assert star(empty()) == epsilon()

    def test_str_round_trip(self):
        for text in ["a", "a b*", "(a|b)*", "a+ b? c"]:
            expr = parse_regex(text)
            assert parse_regex(str(expr)).alphabet() == expr.alphabet()


class TestNFA:
    @pytest.mark.parametrize("pattern, word, expected", [
        ("a*", [], True),
        ("a*", ["a", "a", "a"], True),
        ("a*", ["b"], False),
        ("a b", ["a", "b"], True),
        ("a b", ["b", "a"], False),
        ("(a|b)* c", ["a", "b", "a", "c"], True),
        ("(a|b)* c", ["c"], True),
        ("(a|b)* c", ["a"], False),
        ("a+ b?", ["a"], True),
        ("a+ b?", [], False),
        ("(a b)*", ["a", "b", "a", "b"], True),
        ("(a b)*", ["a", "b", "a"], False),
    ])
    def test_membership(self, pattern, word, expected):
        assert regex_to_nfa(parse_regex(pattern)).accepts(word) is expected

    def test_emptiness(self):
        assert regex_to_nfa(empty()).is_empty()
        assert not regex_to_nfa(parse_regex("a*")).is_empty()

    def test_shortest_word(self):
        assert regex_to_nfa(parse_regex("a*")).shortest_word() == []
        assert regex_to_nfa(parse_regex("a b c")).shortest_word() == ["a", "b", "c"]
        assert regex_to_nfa(parse_regex("a a | b")).shortest_word() == ["b"]

    def test_restricted_to(self):
        nfa = regex_to_nfa(parse_regex("a | b"))
        assert nfa.restricted_to({"a"}).accepts(["a"])
        assert not nfa.restricted_to({"a"}).accepts(["b"])
        assert nfa.restricted_to(set()).is_empty()
