"""The engine API: parity with the functional API, caching, batching, errors."""

import pytest

from repro import (ChaseError, CompiledSetting, DataExchangeSetting,
                   EngineResult, ExchangeEngine, ExchangeError, NoSolutionError,
                   canonical_solution, certain_answers, check_consistency,
                   check_consistency_general, classify_setting, compile_setting,
                   std)
from repro.workloads import library, nested_relational
from repro.xmlmodel import DTD, XMLTree


@pytest.fixture
def library_engine(library_setting):
    return ExchangeEngine(library_setting)


@pytest.fixture
def inconsistent_setting():
    """The Section-4 example: the STD forces l2 below l1, the DTD forbids it."""
    source_dtd = DTD("rs", {"rs": ""})
    target_dtd = DTD("r", {"r": "l1 | l2", "l1": "", "l2": ""}, {"l2": ["a"]})
    return DataExchangeSetting(source_dtd, target_dtd,
                               [std("r[l1[l2(@a=x)]]", "rs")])


class TestCompiledSetting:
    def test_structural_verdicts_match_legacy_predicates(self, library_setting):
        compiled = compile_setting(library_setting)
        assert compiled.fully_specified == library_setting.is_fully_specified()
        assert compiled.nested_relational
        assert compiled.target_univocal == library_setting.target_dtd.is_univocal()
        assert compiled.source_satisfiable
        assert compiled.std_classes == library_setting.std_classes()

    def test_compile_precompiles_every_content_model(self, library_setting):
        compiled = compile_setting(library_setting)
        info = library_setting.source_dtd.rule_cache_info()
        assert info["entries"] == len(library_setting.source_dtd.element_types)
        assert set(compiled.target_analyses) == \
            library_setting.target_dtd.element_types

    def test_dichotomy_matches_classify_setting(self, company_setting):
        compiled = compile_setting(company_setting)
        legacy = classify_setting(company_setting)
        assert compiled.dichotomy.tractable == legacy.tractable
        assert compiled.dichotomy.std_classes == legacy.std_classes
        assert compiled.dichotomy.target_rules == legacy.target_rules
        # classify_setting with the compiled handle serves the cached verdicts
        # through a defensive copy: mutating it must not poison the cache.
        served = classify_setting(company_setting, compiled=compiled)
        assert served == compiled.dichotomy
        served.reasons.append("mutated by caller")
        served.target_rules.clear()
        assert compiled.dichotomy.reasons == legacy.reasons
        assert compiled.dichotomy.target_rules == legacy.target_rules

    def test_mismatched_compiled_handle_is_rejected(self, library_setting,
                                                    company_setting):
        wrong = compile_setting(company_setting)
        with pytest.raises(ValueError):
            check_consistency(library_setting, compiled=wrong)
        with pytest.raises(ValueError):
            certain_answers(library_setting, library.figure_1_source(),
                            library.query_writer_of("X"), compiled=wrong)
        with pytest.raises(ValueError):
            classify_setting(library_setting, compiled=wrong)

    def test_nested_relational_skeletons_rejected_outside_class(
            self, figure_6_setting):
        compiled = compile_setting(figure_6_setting)
        assert not compiled.nested_relational
        with pytest.raises(ValueError):
            compiled.nested_relational_skeletons()


class TestEngineParityQuickstart:
    """Engine results equal the legacy functional API on Figures 1/2."""

    def test_consistency_parity(self, library_setting, library_engine):
        legacy = check_consistency(library_setting)
        result = library_engine.check_consistency()
        assert result.ok is legacy.consistent is True
        assert result.strategy == legacy.method == "nested-relational"
        assert result.raw.consistent == legacy.consistent

    def test_solve_parity(self, library_setting, library_engine, figure_1_source):
        legacy = canonical_solution(library_setting, figure_1_source)
        result = library_engine.solve(figure_1_source)
        assert result.ok is legacy.success is True
        assert sorted(result.payload.children_labels(result.payload.root)) == \
            sorted(legacy.tree.children_labels(legacy.tree.root))
        assert library_setting.is_unordered_solution(figure_1_source,
                                                     result.payload)

    def test_certain_answers_parity(self, library_setting, library_engine,
                                    figure_1_source):
        query = library.query_writer_of("Computational Complexity")
        legacy = certain_answers(library_setting, figure_1_source, query)
        result = library_engine.certain_answers(figure_1_source, query)
        assert result.ok is legacy.has_solution is True
        assert result.payload == legacy.answers == {("Papadimitriou",)}

    def test_boolean_certain_answers_parity(self, library_setting,
                                            library_engine, figure_1_source):
        query = library.query_writer_of("Computational Complexity")
        legacy = certain_answers(library_setting, figure_1_source, query)
        result = library_engine.certain_answer_boolean(figure_1_source, query)
        assert result.ok and result.payload is legacy.certain() is True


class TestEngineParityNestedRelational:
    def test_company_consistency_parity(self, company_setting):
        engine = ExchangeEngine(company_setting)
        legacy = check_consistency(company_setting)
        result = engine.check_consistency()
        assert result.ok is legacy.consistent is True
        assert result.strategy == "nested-relational"
        # Explicit override routes to the general procedure and agrees.
        general = engine.check_consistency(strategy="general")
        assert general.ok is check_consistency_general(company_setting).consistent
        assert general.strategy == "general"

    def test_company_certain_answers_parity(self, company_setting,
                                            company_source):
        engine = ExchangeEngine(company_setting)
        query = nested_relational.query_projects_of("Dept-0")
        legacy = certain_answers(company_setting, company_source, query)
        result = engine.certain_answers(company_source, query)
        assert result.ok is legacy.has_solution is True
        assert result.payload == legacy.answers

    def test_strategy_spelling_variants(self, company_setting):
        engine = ExchangeEngine(company_setting)
        assert engine.check_consistency(strategy="nested_relational").ok
        assert engine.check_consistency(strategy="nested-relational").ok
        with pytest.raises(ValueError):
            engine.check_consistency(strategy="quantum")


class TestEngineParityInconsistent:
    def test_consistency_parity(self, inconsistent_setting):
        engine = ExchangeEngine(inconsistent_setting)
        legacy = check_consistency(inconsistent_setting)
        result = engine.check_consistency()
        assert result.ok is legacy.consistent is False
        assert result.strategy == legacy.method == "general"
        # Repeated calls reuse the compiled machinery and agree.
        assert engine.check_consistency().ok is False

    def test_solve_and_certain_answers_report_no_solution(
            self, inconsistent_setting):
        engine = ExchangeEngine(inconsistent_setting)
        source = XMLTree("rs", ordered=True)
        legacy = certain_answers(inconsistent_setting, source,
                                 library.query_writer_of("X"))
        solved = engine.solve(source)
        answered = engine.certain_answers(source,
                                          library.query_writer_of("X"))
        assert legacy.has_solution is solved.ok is answered.ok is False
        assert not solved and not answered
        with pytest.raises(NoSolutionError):
            answered.unwrap()


class TestCacheReuse:
    def test_second_call_recompiles_nothing(self, library_setting,
                                            figure_1_source):
        # result_cache=False so the second call re-runs the full pipeline
        # and proves it still recompiles no content model.
        engine = ExchangeEngine(library_setting, result_cache=False)
        query = library.query_writer_of("Computational Complexity")

        first = engine.certain_answers(figure_1_source, query)
        after_first = first.cache
        second = engine.certain_answers(figure_1_source, query)
        after_second = second.cache

        assert after_second["rule_cache_misses"] == \
            after_first["rule_cache_misses"] == 0
        assert after_second["rule_cache_hits"] > after_first["rule_cache_hits"]
        assert after_second["result_cache_hits"] == 0  # cache disabled

    def test_explicit_null_factory_bypasses_the_result_cache(
            self, library_setting, figure_1_source):
        from repro import NullFactory
        engine = ExchangeEngine(library_setting)
        query = library.query_writer_of("Computational Complexity")
        engine.certain_answers(figure_1_source, query)  # populate the cache
        factory = NullFactory(start=500)
        result = engine.certain_answers(figure_1_source, query,
                                        nulls=factory)
        # The caller's factory really was consumed — a cache hit would have
        # left it untouched and returned nulls from another namespace.
        assert factory.fresh().ident > 500
        assert result.cache["result_cache_hits"] == 0
        assert {n.ident for n in result.raw.canonical.nulls()} == \
            set(range(500, 500 + len(result.raw.canonical.nulls())))

    def test_second_call_hits_the_result_cache(self, library_setting,
                                               figure_1_source):
        engine = ExchangeEngine(library_setting)
        query = library.query_writer_of("Computational Complexity")

        first = engine.certain_answers(figure_1_source, query)
        second = engine.certain_answers(figure_1_source, query)

        assert first.cache["result_cache_misses"] == 1
        assert second.cache["result_cache_hits"] == 1
        # A cache hit skips the chase entirely: rule-cache counters freeze.
        assert second.cache["rule_cache_hits"] == first.cache["rule_cache_hits"]
        assert (second.ok, second.payload, second.strategy, second.detail) == \
            (first.ok, first.payload, first.strategy, first.detail)

    def test_consistency_machinery_is_reused(self, inconsistent_setting):
        engine = ExchangeEngine(inconsistent_setting)
        first = engine.check_consistency()
        second = engine.check_consistency()
        delta_hits = (second.cache["skeletons_hits"]
                      - first.cache["skeletons_hits"])
        assert delta_hits == 1
        assert second.cache["skeletons_misses"] == 1  # only the first call
        assert second.cache["goal_search_misses"] == 1
        assert second.cache["goal_search_hits"] >= 1

    def test_fresh_compiled_setting_starts_at_zero_recompilations(
            self, library_setting):
        compiled = compile_setting(library_setting)
        stats = compiled.cache_stats()
        assert stats["rule_cache_misses"] == 0


class TestResultCacheEviction:
    """The bounded (LRU) result cache for long-lived engines."""

    @staticmethod
    def _sources(n):
        return [library.generate_source(3, seed=seed) for seed in range(n)]

    def test_default_stays_unbounded(self, library_setting):
        engine = ExchangeEngine(library_setting)
        assert engine.result_cache_maxsize is None
        query = library.query_writer_of("Book-0")
        for tree in self._sources(4):
            engine.certain_answers(tree, query)
        summary = engine.stats_summary()
        assert summary.result_cache_entries == 4
        assert summary.result_cache_evictions == 0
        assert summary.result_cache_maxsize is None

    def test_maxsize_evicts_least_recently_used(self, library_setting):
        engine = ExchangeEngine(library_setting, result_cache_maxsize=2)
        query = library.query_writer_of("Book-0")
        a, b, c = self._sources(3)
        engine.certain_answers(a, query)
        engine.certain_answers(b, query)
        engine.certain_answers(a, query)  # refresh a: b is now the LRU entry
        engine.certain_answers(c, query)  # evicts b
        summary = engine.stats_summary()
        assert summary.result_cache_entries == 2
        assert summary.result_cache_evictions == 1
        assert summary.result_cache_maxsize == 2
        # a survived the eviction (it was refreshed), b did not.
        assert engine.certain_answers(a, query).cache["result_cache_hits"] == 2
        before = engine.stats["result_cache_misses"]
        engine.certain_answers(b, query)
        assert engine.stats["result_cache_misses"] == before + 1

    def test_eviction_counter_reaches_stats_and_results(self, library_setting):
        engine = ExchangeEngine(library_setting, result_cache_maxsize=1)
        query = library.query_writer_of("Book-0")
        trees = self._sources(3)
        last = None
        for tree in trees:
            last = engine.certain_answers(tree, query)
        assert last is not None
        assert last.cache["result_cache_evictions"] == 2
        assert engine.stats["result_cache_evictions"] == 2
        assert engine.stats_summary().result_cache_entries == 1

    def test_results_identical_to_unbounded_engine(self, library_setting):
        bounded = ExchangeEngine(library_setting, result_cache_maxsize=1)
        unbounded = ExchangeEngine(library_setting)
        query = library.query_writer_of("Book-0")
        for tree in self._sources(3) + self._sources(3):
            ours = bounded.certain_answers(tree, query)
            theirs = unbounded.certain_answers(tree, query)
            assert (ours.ok, ours.payload) == (theirs.ok, theirs.payload)

    def test_invalid_maxsize_rejected(self, library_setting):
        with pytest.raises(ValueError, match="result_cache_maxsize"):
            ExchangeEngine(library_setting, result_cache_maxsize=0)

    def test_batch_executors_respect_the_bound(self, library_setting):
        engine = ExchangeEngine(library_setting, result_cache_maxsize=2)
        query = library.query_writer_of("Book-0")
        trees = self._sources(4)
        engine.certain_answers_batch(trees, query, parallel=2,
                                     executor="thread")
        summary = engine.stats_summary()
        assert summary.result_cache_entries <= 2
        assert summary.result_cache_evictions >= 2


class TestBatch:
    def test_batch_matches_single_calls(self, library_setting):
        engine = ExchangeEngine(library_setting)
        sources = [library.generate_source(4, seed=s) for s in range(5)]
        query = library.query_writer_of("Book-0")
        single = [engine.certain_answers(tree, query).payload
                  for tree in sources]
        sequential = engine.certain_answers_batch(sources, query)
        threaded = engine.certain_answers_batch(sources, query, parallel=3)
        assert [r.payload for r in sequential] == single
        assert [r.payload for r in threaded] == single
        assert all(r.ok for r in threaded)

    def test_batch_with_paired_queries(self, library_setting):
        engine = ExchangeEngine(library_setting)
        sources = [library.generate_source(3, seed=s) for s in range(3)]
        queries = [library.query_writer_of(f"Book-{i}") for i in range(3)]
        results = engine.certain_answers_batch(sources, queries, parallel=2)
        for tree, query, result in zip(sources, queries, results):
            assert result.payload == engine.certain_answers(tree, query).payload

    def test_batch_length_mismatch_raises(self, library_setting):
        engine = ExchangeEngine(library_setting)
        sources = [library.figure_1_source()]
        with pytest.raises(ValueError):
            engine.certain_answers_batch(
                sources, [library.query_writer_of("A"),
                          library.query_writer_of("B")])

    def test_solve_batch(self, library_setting):
        engine = ExchangeEngine(library_setting)
        sources = [library.generate_source(3, seed=s) for s in range(4)]
        results = engine.solve_batch(sources, parallel=2)
        assert all(r.ok for r in results)
        for tree, result in zip(sources, results):
            assert library_setting.is_unordered_solution(tree, result.payload)


class TestEngineResultProtocol:
    def test_uniform_fields(self, library_engine, figure_1_source):
        for result in (library_engine.classify(),
                       library_engine.check_consistency(),
                       library_engine.solve(figure_1_source)):
            assert isinstance(result, EngineResult)
            assert result.elapsed >= 0.0
            assert isinstance(result.strategy, str) and result.strategy
            assert isinstance(result.cache, dict)
            assert result.raw is not None

    def test_classify_payload_is_dichotomy_report(self, library_engine,
                                                  library_setting):
        result = library_engine.classify()
        assert result.ok
        assert result.payload.tractable == \
            classify_setting(library_setting).tractable

    def test_engine_accepts_precompiled_setting(self, library_setting):
        compiled = compile_setting(library_setting)
        engine = ExchangeEngine(compiled)
        assert engine.compiled is compiled
        assert isinstance(engine.compiled, CompiledSetting)
        with pytest.raises(TypeError):
            ExchangeEngine("not a setting")


class TestErrorHierarchy:
    def test_no_solution_error_is_value_error(self):
        assert issubclass(NoSolutionError, ValueError)
        assert issubclass(NoSolutionError, ExchangeError)

    def test_chase_error_is_runtime_error(self):
        assert issubclass(ChaseError, RuntimeError)
        assert issubclass(ChaseError, ExchangeError)

    def test_certain_answers_raise_dedicated_error(self, inconsistent_setting):
        source = XMLTree("rs", ordered=True)
        outcome = certain_answers(inconsistent_setting, source,
                                  library.query_writer_of("X"))
        with pytest.raises(NoSolutionError):
            outcome.certain()
        with pytest.raises(NoSolutionError):
            outcome.contains(("x",))
