"""Tests for the workload generators used by the benchmark harness."""

import pytest

from repro.exchange import canonical_solution, check_consistency, classify_setting
from repro.workloads import library, nested_relational


class TestLibraryWorkload:
    def test_figure_1_source_conforms(self):
        assert library.source_dtd().conforms(library.figure_1_source())

    @pytest.mark.parametrize("n_books", [1, 5, 20])
    def test_generated_sources_conform(self, n_books):
        source = library.generate_source(n_books, authors_per_book=2, seed=3)
        assert library.source_dtd().conforms(source)
        assert source.children_labels(source.root).count("book") == n_books

    def test_generation_is_deterministic_per_seed(self):
        first = library.generate_source(5, seed=7)
        second = library.generate_source(5, seed=7)
        assert first.equals(second)

    def test_exchange_scales(self):
        setting = library.library_setting()
        source = library.generate_source(15, authors_per_book=3, seed=1)
        result = canonical_solution(setting, source)
        assert result.success
        assert setting.is_unordered_solution(source, result.tree)


class TestCompanyWorkload:
    def test_source_conforms(self, company_setting, company_source):
        assert company_setting.source_dtd.conforms(company_source)

    def test_setting_is_nested_relational_and_tractable(self, company_setting):
        assert company_setting.source_dtd.is_nested_relational()
        assert company_setting.target_dtd.is_nested_relational()
        assert classify_setting(company_setting).tractable


class TestScalingWorkload:
    @pytest.mark.parametrize("levels,branching", [(1, 2), (2, 2), (2, 3)])
    def test_setting_shape(self, levels, branching):
        setting = nested_relational.scaling_setting(levels, branching, n_stds=3)
        assert setting.source_dtd.is_nested_relational()
        assert setting.target_dtd.is_nested_relational()
        assert setting.is_fully_specified()
        assert check_consistency(setting).consistent

    def test_source_generator(self):
        setting = nested_relational.scaling_setting(2, 2, n_stds=2)
        source = nested_relational.scaling_source(setting, fanout=4)
        assert setting.source_dtd.conforms(source)
        result = canonical_solution(setting, source)
        assert result.success

    def test_dtd_size_grows_with_levels(self):
        small = nested_relational.scaling_setting(1, 2, 2)
        large = nested_relational.scaling_setting(3, 2, 2)
        assert large.dtd_size() > small.dtd_size()
