"""ReproLint invariant-linter tests: one fixture trio per rule
(positive / negative / suppressed), directive hygiene (RL000), module
naming, the CLI, and a self-check that the committed tree is clean."""

import textwrap
from pathlib import Path

from repro.analysis import ALL_RULES, analyze_source, run
from repro.analysis.__main__ import main as lint_main
from repro.analysis.core import module_name_for, summary_markdown
from repro.analysis.directives import parse_directives


def findings_for(source, *, module, strict=False, rules=ALL_RULES):
    return analyze_source(textwrap.dedent(source), rules,
                          path="fixture.py", module=module, strict=strict)


def codes(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------- #
# RL001 — no blocking calls in repro.service coroutines
# --------------------------------------------------------------------- #

def test_rl001_flags_blocking_calls_in_async_def():
    found = findings_for("""
        import time

        async def handler(self):
            time.sleep(1)
            print("served")
    """, module="repro.service.server")
    assert codes(found) == ["RL001", "RL001"]
    assert "time.sleep" in found[0].message
    assert "print" in found[1].message


def test_rl001_flags_unawaited_engine_call_only():
    found = findings_for("""
        async def handler(self):
            result = self.engine.certain_answers(tree, query)
            awaited = await self.service.certain_answers(fp, tree, query)
            return result, awaited
    """, module="repro.service.server")
    assert codes(found) == ["RL001"]
    assert ".certain_answers" in found[0].message


def test_rl001_ignores_sync_defs_nested_defs_and_other_layers():
    # The same blocking calls outside repro.service, or in synchronous
    # (including nested-sync) contexts, are fine.
    clean = """
        import time

        def sync_helper():
            time.sleep(1)
            print("fine")

        async def handler(self):
            def render():
                print("fine: runs on the executor")
            await self.offload(render)
    """
    assert findings_for(clean, module="repro.service.server") == []
    blocking_elsewhere = """
        import time

        async def compute():
            time.sleep(1)
    """
    assert findings_for(blocking_elsewhere, module="repro.engine.engine") == []


def test_rl001_flags_unawaited_host_forwarding_calls():
    # ShardHost.execute / execute_group block on a worker pipe round-trip;
    # a coroutine must reach them through offload, never by direct call.
    found = findings_for("""
        async def submit(self, request):
            return self._host.execute(request)
    """, module="repro.service.service")
    assert codes(found) == ["RL001"]
    assert ".execute" in found[0].message
    found = findings_for("""
        async def batch(self, fingerprint, group):
            return self._host.execute_group(fingerprint, group)
    """, module="repro.service.service")
    assert codes(found) == ["RL001"]
    assert ".execute_group" in found[0].message


def test_rl001_host_forwarding_behind_offload_is_clean():
    clean = """
        from functools import partial

        async def submit(self, request):
            return await self._offload(partial(self._host.execute, request))
    """
    assert findings_for(clean, module="repro.service.service") == []


def test_rl001_host_forwarding_suppressed_with_reason():
    found = findings_for("""
        async def drain(self, request):
            # repro-lint: disable=RL001 -- test shim: loop has no traffic
            return self._host.execute(request)
    """, module="repro.service.service", strict=True)
    assert found == []


def test_rl001_suppressed_with_reason():
    found = findings_for("""
        async def serve(self):
            # repro-lint: disable=RL001 -- startup banner the smoke test reads
            print("listening")
    """, module="repro.service.server", strict=True)
    assert found == []


# --------------------------------------------------------------------- #
# RL002 — no await while holding a threading lock
# --------------------------------------------------------------------- #

def test_rl002_flags_await_under_sync_lock():
    found = findings_for("""
        async def transfer(self):
            with self._lock:
                await self.flush()
    """, module="repro.engine.registry")
    assert codes(found) == ["RL002"]
    assert "self._lock" in found[0].message


def test_rl002_flags_inline_threading_lock_factory():
    found = findings_for("""
        import threading

        async def transfer(self):
            with threading.Lock():
                await self.flush()
    """, module="repro.anything")
    assert codes(found) == ["RL002"]


def test_rl002_ignores_async_with_and_non_lock_contexts():
    clean = """
        async def transfer(self):
            async with self._lock:
                await self.flush()
            with self.tracer:
                await self.flush()

        async def outer(self):
            def sync_part():
                with self._lock:
                    pass
            await self.offload(sync_part)
    """
    assert findings_for(clean, module="repro.service.service") == []


def test_rl002_suppressed_with_reason():
    found = findings_for("""
        async def transfer(self):
            with self._lock:
                # repro-lint: disable=RL002 -- lock is re-entrant and private
                await self.flush()
    """, module="repro.engine.registry", strict=True)
    assert found == []


# --------------------------------------------------------------------- #
# RL003 — layering: restricted layers stay off the parity oracles
# --------------------------------------------------------------------- #

def test_rl003_flags_oracle_import_in_restricted_layer():
    found = findings_for("""
        from repro.patterns.evaluate import PatternMatcher
    """, module="repro.engine.compiled")
    assert codes(found) == ["RL003"]


def test_rl003_flags_oracle_name_via_package_and_relative_import():
    found = findings_for("""
        from repro.patterns import PatternMatcher
        from ..patterns import match_anywhere
    """, module="repro.engine.compiled")
    assert codes(found) == ["RL003", "RL003"]


def test_rl003_flags_bare_functional_call_without_compiled():
    found = findings_for("""
        from repro.exchange import certain_answers

        def serve(setting, tree, query):
            return certain_answers(setting, tree, query)
    """, module="repro.engine.engine")
    assert codes(found) == ["RL003"]
    assert "compiled=" in found[0].message


def test_rl003_allows_compiled_kwarg_methods_and_unrestricted_modules():
    clean = """
        from repro.exchange import certain_answers

        def serve(self, setting, tree, query):
            fast = certain_answers(setting, tree, query,
                                   compiled=self.compiled)
            also_fine = self.engine.certain_answers(tree, query)
            return fast, also_fine
    """
    assert findings_for(clean, module="repro.engine.engine") == []
    # The interpreter package itself is not a restricted layer.
    oracle_side = "from repro.patterns.evaluate import PatternMatcher\n"
    assert findings_for(oracle_side, module="repro.patterns.queries") == []


def test_rl003_parity_oracle_marker_exempts_module():
    found = findings_for("""
        # repro-lint: parity-oracle -- this module IS the interpreted oracle
        from repro.patterns.evaluate import PatternMatcher
    """, module="repro.engine.compiled", strict=True)
    assert found == []


# --------------------------------------------------------------------- #
# RL004 — cache counters move only through CacheStats
# --------------------------------------------------------------------- #

def test_rl004_flags_raw_counter_arithmetic():
    found = findings_for("""
        class Cache:
            def get(self, key):
                self.hits += 1
                self._probe_misses += 1
    """, module="repro.engine.registry")
    assert codes(found) == ["RL004", "RL004"]


def test_rl004_flags_cachestats_internal_mutation():
    found = findings_for("""
        def cheat(stats):
            stats._hits["plan_cache"] += 5
    """, module="repro.engine.compiled")
    assert codes(found) == ["RL004"]
    assert "_hits[...]" in found[0].message


def test_rl004_exempts_stats_module_and_non_repro_code():
    mutation = """
        class CacheStats:
            def hit(self, name):
                self._hits[name] += 1
    """
    assert findings_for(mutation, module="repro.engine.stats") == []
    assert findings_for(mutation, module="tests.test_helpers") == []


def test_rl004_suppressed_with_reason():
    found = findings_for("""
        class DTD:
            def _rule_cache(self, element):
                # repro-lint: disable=RL004 -- republished via set_counts
                self._cache_misses += 1
    """, module="repro.xmlmodel.dtd", strict=True)
    assert found == []


# --------------------------------------------------------------------- #
# RL005 — generator determinism
# --------------------------------------------------------------------- #

def test_rl005_flags_naked_random_and_wall_clock():
    found = findings_for("""
        import random
        import time

        def generate():
            return random.choice("abc"), time.time()
    """, module="repro.generators.scenarios")
    assert codes(found) == ["RL005", "RL005"]
    assert "random.choice" in found[0].message
    assert "time.time" in found[1].message


def test_rl005_allows_seeded_random_and_perf_counter():
    clean = """
        import random
        import time

        def generate(seed):
            rng = random.Random(seed)
            started = time.perf_counter()
            return rng.choice("abc"), time.perf_counter() - started
    """
    assert findings_for(clean, module="repro.generators.scenarios") == []
    # Out of RL005's scope: engine wall-clock reads are RL006's problem,
    # never a determinism finding.
    clocky = "import time\n\ndef now():\n    return time.time()\n"
    engine_findings = findings_for(clocky, module="repro.engine.engine")
    assert "RL005" not in codes(engine_findings)


def test_rl005_suppressed_with_reason():
    found = findings_for("""
        import time

        def stamp():
            # repro-lint: disable=RL005 -- run id only, never drawn content
            return time.time()
    """, module="repro.workloads.library", strict=True)
    assert found == []


# --------------------------------------------------------------------- #
# RL006 — latency is measured on the monotonic clock
# --------------------------------------------------------------------- #

def test_rl006_flags_wall_clock_latency_measurement():
    found = findings_for("""
        import time

        def timed_call(fn):
            started = time.time()
            result = fn()
            return result, time.time() - started
    """, module="repro.service.shard")
    assert codes(found) == ["RL006", "RL006"]
    assert "perf_counter" in found[0].message


def test_rl006_allows_perf_counter_and_defers_generators_to_rl005():
    clean = """
        import time

        def timed_call(fn):
            started = time.perf_counter()
            result = fn()
            return result, time.perf_counter() - started
    """
    assert findings_for(clean, module="repro.service.shard") == []
    # Generator wall-clock discipline belongs to RL005 — RL006 staying out
    # keeps it one finding per sin, not two.
    clocky = "import time\n\ndef now():\n    return time.time()\n"
    generator_findings = findings_for(clocky,
                                      module="repro.generators.scenarios")
    assert "RL006" not in codes(generator_findings)
    # ... and modules outside repro.* are out of scope entirely.
    assert findings_for(clocky, module="benchmarks.bench_service") == []


def test_rl006_suppressed_with_reason():
    found = findings_for("""
        import time

        def artifact_stamp():
            # repro-lint: disable=RL006 -- artifact timestamp, not a duration
            return time.time()
    """, module="repro.service.server", strict=True)
    assert found == []


# --------------------------------------------------------------------- #
# RL000 — directive hygiene
# --------------------------------------------------------------------- #

def test_reasonless_suppression_reports_rl000_and_does_not_suppress():
    found = findings_for("""
        import time

        async def handler(self):
            time.sleep(1)  # repro-lint: disable=RL001
    """, module="repro.service.server")
    assert sorted(codes(found)) == ["RL000", "RL001"]
    rl000 = next(f for f in found if f.rule == "RL000")
    assert "no reason" in rl000.message


def test_unknown_rule_id_reports_rl000():
    found = findings_for("""
        x = 1  # repro-lint: disable=RL099 -- typo for a real rule
    """, module="repro.engine.engine")
    assert codes(found) == ["RL000"]
    assert "RL099" in found[0].message


def test_malformed_directive_reports_rl000():
    found = findings_for("""
        x = 1  # repro-lint: disable RL001 -- missing equals sign
    """, module="repro.engine.engine")
    assert codes(found) == ["RL000"]


def test_strict_reports_unused_suppression():
    lax = findings_for("""
        x = 1  # repro-lint: disable=RL004 -- nothing here triggers it
    """, module="repro.engine.engine")
    assert lax == []
    strict = findings_for("""
        x = 1  # repro-lint: disable=RL004 -- nothing here triggers it
    """, module="repro.engine.engine", strict=True)
    assert codes(strict) == ["RL000"]
    assert "unused" in strict[0].message


def test_directive_in_string_literal_is_not_a_directive():
    found = findings_for('''
        TEXT = "# repro-lint: disable=RL001"
    ''', module="repro.service.docs", strict=True)
    assert found == []


def test_standalone_directive_covers_next_code_line_across_comments():
    directives = parse_directives(textwrap.dedent("""
        # repro-lint: disable=RL001 -- reason line one
        # continuation prose that is not a directive
        print("covered")
    """))
    assert len(directives.directives) == 1
    assert directives.directives[0].covers == 4


def test_syntax_error_is_reported_not_raised():
    found = findings_for("def broken(:\n", module="repro.engine.engine")
    assert codes(found) == ["RL000"]
    assert "does not parse" in found[0].message


# --------------------------------------------------------------------- #
# Module naming, CLI, self-check
# --------------------------------------------------------------------- #

def test_module_name_for_anchors():
    assert module_name_for(
        Path("src/repro/service/server.py")) == "repro.service.server"
    assert module_name_for(
        Path("/abs/src/repro/patterns/plan.py")) == "repro.patterns.plan"
    assert module_name_for(Path("src/repro/__init__.py")) == "repro"
    assert module_name_for(Path("tests/test_plan.py")) == "tests.test_plan"
    assert module_name_for(
        Path("benchmarks/bench_patterns.py")) == "benchmarks.bench_patterns"
    assert module_name_for(Path("examples/quickstart.py")) \
        == "examples.quickstart"


def test_cli_reports_findings_and_exit_codes(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "service" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\n\n"
                   "async def f():\n    time.sleep(1)\n",
                   encoding="utf-8")
    assert lint_main([str(tmp_path / "src")]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "bad.py:5:" in out
    assert "1 finding(s)" in out

    bad.write_text("async def f():\n    return 1\n", encoding="utf-8")
    assert lint_main([str(tmp_path / "src")]) == 0
    assert lint_main([str(tmp_path / "missing")]) == 2


def test_cli_summary_markdown(tmp_path):
    clean = tmp_path / "src" / "repro" / "ok.py"
    clean.parent.mkdir(parents=True)
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    summary = tmp_path / "summary.md"
    assert lint_main([str(tmp_path / "src"),
                      "--summary", str(summary)]) == 0
    text = summary.read_text(encoding="utf-8")
    assert "## ReproLint" in text
    for rule in ALL_RULES:
        assert rule.id in text


def test_summary_markdown_lists_findings_block():
    found = findings_for("""
        import time

        async def f():
            time.sleep(1)
    """, module="repro.service.x")
    text = summary_markdown(found, ALL_RULES, checked_files=1)
    assert "1 finding(s)" in text
    assert "```text" in text and "RL001" in text


def test_repository_tree_is_lint_clean():
    """The committed tree carries zero findings (strict: and zero unused
    suppressions) — the same bar the CI lint job enforces."""
    root = Path(__file__).resolve().parent.parent
    paths = [root / area for area in
             ("src", "tests", "benchmarks", "examples")
             if (root / area).exists()]
    findings = run(paths, ALL_RULES, strict=True, display_root=root)
    assert findings == [], "\n".join(f.format() for f in findings)
