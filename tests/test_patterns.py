"""Tests for tree-pattern formulae: parsing, structure, evaluation (Section 3.1)."""

import pytest

from repro.patterns import (DescendantPattern, NodePattern, descendant,
                            match_anywhere, match_at_node, node, parse_pattern,
                            pattern_holds, PatternParseError)
from repro.workloads import library
from repro.xmlmodel import XMLTree


@pytest.fixture
def source():
    return library.figure_1_source()


class TestParsing:
    def test_example_3_4_pattern(self):
        pattern = parse_pattern("db[book(@title=x)[author(@name=y)]]")
        assert isinstance(pattern, NodePattern)
        assert pattern.attribute.label == "db"
        assert [v.name for v in pattern.variables()] == ["x", "y"]

    def test_wildcard_and_descendant(self):
        pattern = parse_pattern("//_(@a1=x, @a2=x)")
        assert isinstance(pattern, DescendantPattern)
        assert pattern.uses_wildcard()
        assert pattern.uses_descendant()
        assert [v.name for v in pattern.variables()] == ["x"]

    def test_constants(self):
        pattern = parse_pattern('book(@title="Computational Complexity")')
        (name, term), = pattern.attribute.assignments
        assert name == "title" and term == "Computational Complexity"

    def test_multiple_children(self):
        pattern = parse_pattern("r[a, b[c], //d]")
        assert len(pattern.children) == 3

    def test_round_trip_via_str(self):
        text = "db[book(@title=x)[author(@name=y)]]"
        pattern = parse_pattern(text)
        assert parse_pattern(str(pattern)).variables() == pattern.variables()

    def test_parse_errors(self):
        with pytest.raises(PatternParseError):
            parse_pattern("a[b")
        with pytest.raises(PatternParseError):
            parse_pattern("a(@x)")
        with pytest.raises(PatternParseError):
            parse_pattern("")


class TestStructure:
    def test_constructor_helpers(self):
        pattern = node("db", None,
                       node("book", {"title": "$x"},
                            node("author", {"name": "$y"})))
        assert str(parse_pattern("db[book(@title=x)[author(@name=y)]]")) == str(pattern)

    def test_size_and_path_pattern(self):
        pattern = parse_pattern("r[a[b(@x=v)]]")
        assert pattern.size() == 4
        assert pattern.is_path_pattern()
        assert not parse_pattern("r[a, b]").is_path_pattern()

    def test_erase_attributes_claim_4_2(self):
        pattern = parse_pattern("r[a(@x=v)[b(@y=w)]]")
        erased = pattern.erase_attributes()
        assert erased.variables() == []
        assert str(erased) == "r[a[b]]"


class TestEvaluation:
    def test_example_from_section_3_1(self, source):
        """ψ(x, y) = book(@title=x)[author(@name=y)] — true iff x is a book
        title and y one of its authors (the book element is the witness)."""
        pattern = parse_pattern("book(@title=x)[author(@name=y)]")
        answers = {(a["x"], a["y"]) for a in match_anywhere(source, pattern)}
        assert ("Combinatorial Optimization", "Papadimitriou") in answers
        assert ("Combinatorial Optimization", "Steiglitz") in answers
        assert ("Computational Complexity", "Papadimitriou") in answers
        assert ("Computational Complexity", "Steiglitz") not in answers

    def test_pattern_holds_with_binding(self, source):
        pattern = parse_pattern("book(@title=x)[author(@name=y)]")
        assert pattern_holds(source, pattern,
                             binding={"x": "Computational Complexity",
                                      "y": "Papadimitriou"})
        assert not pattern_holds(source, pattern,
                                 binding={"x": "Computational Complexity",
                                          "y": "Steiglitz"})

    def test_witness_anywhere_not_only_root(self, source):
        # A pattern need not be anchored at the root (Section 3.1).
        assert pattern_holds(source, parse_pattern('author(@name="Steiglitz")'))

    def test_descendant_is_proper(self):
        tree = XMLTree.build(("r", [("a", [("b",)])]))
        # //b witnessed at r and at a (b is a proper descendant of both) …
        assert pattern_holds(tree, parse_pattern("r[//b]")) is False or True
        # … but r[//b] requires b strictly below a child of r:
        assert pattern_holds(tree, parse_pattern("r[//b]"))
        shallow = XMLTree.build(("r", [("b",)]))
        assert not pattern_holds(shallow, parse_pattern("r[//b]"))
        assert pattern_holds(shallow, parse_pattern("//b"))

    def test_wildcard_matches_any_label(self, source):
        assert pattern_holds(source, parse_pattern("_[_[_]]"))
        assert pattern_holds(source, parse_pattern('_(@title="Computational Complexity")'))

    def test_repeated_variable_forces_equality(self):
        tree = XMLTree.build(("r", [("n", {"a1": "v", "a2": "v"}),
                                    ("n", {"a1": "v", "a2": "w"})]))
        matches = match_anywhere(tree, parse_pattern("n(@a1=x, @a2=x)"))
        assert [m["x"] for m in matches] == ["v"]

    def test_same_child_may_witness_several_subpatterns(self):
        # Children in α[ϕ1, …, ϕk] need not be distinct (Section 3.1).
        tree = XMLTree.build(("r", [("a", {"u": "1", "v": "2"})]))
        pattern = parse_pattern("r[a(@u=x), a(@v=y)]")
        matches = match_anywhere(tree, pattern)
        assert {(m["x"], m["y"]) for m in matches} == {("1", "2")}

    def test_match_at_node(self, source):
        books = source.children(source.root)
        pattern = parse_pattern("book(@title=x)")
        assert match_at_node(source, books[0], pattern) == [
            {"x": "Combinatorial Optimization"}]
        assert match_at_node(source, source.root, pattern) == []

    def test_missing_attribute_never_matches(self):
        tree = XMLTree.build(("r", [("a", {"u": "1"})]))
        assert not pattern_holds(tree, parse_pattern("a(@missing=x)"))
