"""ReproStore: the persistent corpus store and its fingerprint-first API.

Covers the columnar record codec (pre/post interval correctness included),
the store's durability contract (kill-mid-ingest crash safety, orphan-byte
reclaim), cross-process / cross-``PYTHONHASHSEED`` persistence, the
fingerprint-addressed engine and service paths (bit-identical to inline
trees), plan-warm restarts via persisted compiled settings, and the
consolidated ``register(prewarm=, persist=)`` keyword surface.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro import ExchangeEngine
from repro.engine.compiled import compile_setting
from repro.service import SettingRegistry, ShardHost
from repro.storage import (CorpusStore, StoreError, StoreReadOnlyError,
                           UnknownDocumentError)
from repro.storage.encoding import (compute_pre_post, decode_document,
                                    decode_intervals, encode_document)
from repro.workloads import library
from repro.xmlmodel import XMLTree


def _tree(size=4, seed=1):
    return library.generate_source(size, authors_per_book=2, seed=seed)


# --------------------------------------------------------------------- #
# Record codec
# --------------------------------------------------------------------- #

class TestEncoding:
    def test_roundtrip_columns(self):
        frozen = _tree().freeze()
        back = decode_document(memoryview(encode_document(frozen)))
        assert back.ordered == frozen.ordered
        assert back.n == frozen.n
        assert back.labels == frozen.labels
        assert back.label_names == frozen.label_names
        assert back.label_ids == frozen.label_ids
        assert back.parents == frozen.parents
        assert back.child_start == frozen.child_start
        assert back.child_end == frozen.child_end
        assert back.post_order == frozen.post_order
        assert back.attr_names == frozen.attr_names
        assert back.attr_tables == frozen.attr_tables
        assert back.nodes_by_label == frozen.nodes_by_label

    def test_roundtrip_fingerprint_via_thaw(self):
        tree = _tree(size=3, seed=7)
        frozen = tree.freeze()
        back = decode_document(memoryview(encode_document(frozen)))
        # The decoder does not trust the record for the fingerprint; a
        # from-scratch rehash of the thawed tree must reproduce it.
        assert back.thaw().fingerprint() == tree.fingerprint()

    def test_roundtrip_null_attributes(self):
        # Solution trees carry nulls; the codec must round-trip them.
        from repro.xmlmodel.values import Null
        tree = XMLTree("r")
        node = tree.add_child(tree.root, "a")
        tree.set_attribute(node, "x", Null(7))
        tree.set_attribute(node, "y", "constant")
        back = decode_document(
            memoryview(encode_document(tree.freeze()))).thaw()
        attrs = back.attributes(next(iter(back.children(back.root))))
        assert attrs["x"] == Null(7)
        assert attrs["y"] == "constant"
        assert back.fingerprint() == tree.fingerprint()

    def test_pre_post_accelerator_invariant(self):
        """v is a proper ancestor of w  iff  pre(v) < pre(w) and
        post(v) > post(w) — the XPath-accelerator contract the interval
        columns exist for."""
        for seed in range(3):
            frozen = _tree(size=3, seed=seed).freeze()
            pre, post = compute_pre_post(frozen.child_start,
                                         frozen.child_end, frozen.n)
            ancestors = set()
            for w in range(frozen.n):
                v = frozen.parents[w]
                while v >= 0:
                    ancestors.add((v, w))
                    v = frozen.parents[v]
            for v in range(frozen.n):
                for w in range(frozen.n):
                    interval = pre[v] < pre[w] and post[v] > post[w]
                    assert interval == ((v, w) in ancestors)
            # pre and post are permutations of 0..n-1.
            assert sorted(pre) == list(range(frozen.n))
            assert sorted(post) == list(range(frozen.n))

    def test_decode_intervals_matches_full_decode(self):
        frozen = _tree(size=2, seed=3).freeze()
        record = memoryview(encode_document(frozen))
        pre, post = decode_intervals(record)
        assert (pre, post) == compute_pre_post(
            frozen.child_start, frozen.child_end, frozen.n)

    def test_deep_chain_is_iterative(self):
        tree = XMLTree("r")
        node = tree.root
        for _ in range(4000):
            node = tree.add_child(node, "r")
        back = decode_document(memoryview(encode_document(tree.freeze())))
        assert back.n == 4001
        assert decode_intervals(
            memoryview(encode_document(tree.freeze())))[0][0] == 0


# --------------------------------------------------------------------- #
# The store proper
# --------------------------------------------------------------------- #

class TestCorpusStore:
    def test_in_memory_roundtrip_and_counters(self):
        store = CorpusStore(None)
        tree = _tree()
        fingerprint = store.put_tree(tree)
        assert fingerprint == tree.fingerprint()
        assert store.has_tree(fingerprint)
        loaded = store.load_tree(fingerprint)
        assert loaded.fingerprint() == fingerprint
        snapshot = store.stats.snapshot()
        assert snapshot["store_hits"] == 1
        assert snapshot["store_misses"] == 0
        assert snapshot["store_bytes"] > 0
        summary = store.summary()
        assert summary["store_documents"] == 1
        assert summary["store_nodes"] == len(tree)

    def test_unknown_fingerprint_is_typed(self):
        store = CorpusStore(None)
        with pytest.raises(UnknownDocumentError,
                           match="no document with fingerprint"):
            store.get_frozen("ab" * 32)
        error = None
        try:
            store.load_tree("cd" * 32)
        except UnknownDocumentError as caught:
            error = caught
        assert error is not None and error.fingerprint == "cd" * 32
        assert isinstance(error, KeyError)
        assert store.stats.snapshot()["store_misses"] == 2

    def test_put_is_idempotent(self):
        store = CorpusStore(None)
        tree = _tree()
        first = store.put_tree(tree)
        again = store.put_tree(tree)
        assert first == again
        assert store.summary()["store_documents"] == 1

    def test_bulk_ingest_chunks_and_dedups(self, tmp_path):
        trees = [_tree(size=2, seed=seed) for seed in range(7)]
        trees.append(trees[0])  # in-batch duplicate
        with CorpusStore(tmp_path / "store", chunk_docs=3) as store:
            fingerprints = store.put_trees(trees)
            assert fingerprints == [t.fingerprint() for t in trees]
            assert store.summary()["store_documents"] == 7
            assert store.tree_fingerprints() == fingerprints[:7]

    def test_on_disk_survives_reopen(self, tmp_path):
        path = tmp_path / "store"
        tree = _tree()
        with CorpusStore(path) as store:
            fingerprint = store.put_tree(tree)
        with CorpusStore(path, read_only=True) as reader:
            assert reader.load_tree(fingerprint).fingerprint() == fingerprint
            with pytest.raises(StoreReadOnlyError):
                reader.put_tree(tree)
            with pytest.raises(StoreReadOnlyError):
                reader.put_setting(library.library_setting())

    def test_read_only_needs_existing_store(self, tmp_path):
        with pytest.raises(StoreError, match="no store at"):
            CorpusStore(tmp_path / "absent", read_only=True)
        with pytest.raises(ValueError):
            CorpusStore(None, read_only=True)

    def test_reader_sees_committed_writes_live(self, tmp_path):
        """Single writer, many readers: a read-only handle opened before an
        ingest observes it on its next query (no reopen)."""
        path = tmp_path / "store"
        writer = CorpusStore(path)
        first = writer.put_tree(_tree(seed=1))
        reader = CorpusStore(path, read_only=True)
        assert reader.has_tree(first)
        second = writer.put_tree(_tree(seed=2))
        assert reader.load_tree(second).fingerprint() == second
        writer.close()
        reader.close()

    def test_orphan_heap_bytes_are_reclaimed(self, tmp_path):
        """Bytes appended past the committed data_end (a killed ingest's
        leavings) are truncated by the next writable open and never reach
        a reader."""
        path = tmp_path / "store"
        with CorpusStore(path) as store:
            fingerprint = store.put_tree(_tree())
            committed = store.summary()["store_data_bytes"]
        heap = path / "trees.bin"
        with open(heap, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef" * 64)  # torn, uncommitted
        with CorpusStore(path) as store:
            assert os.path.getsize(heap) == committed
            assert store.load_tree(fingerprint).fingerprint() == fingerprint
            other = store.put_tree(_tree(seed=9))
            assert store.load_tree(other).fingerprint() == other

    def test_setting_roundtrip(self, tmp_path, library_setting):
        path = tmp_path / "store"
        with CorpusStore(path) as store:
            fingerprint = store.put_setting(library_setting, prewarm=True)
            assert fingerprint == library_setting.fingerprint()
        with CorpusStore(path, read_only=True) as reader:
            stored = reader.get_setting(fingerprint)
            assert stored.prewarm is True
            assert stored.compiled.setting.fingerprint() == fingerprint
            assert [s.fingerprint for s in reader.settings()] == [fingerprint]
            with pytest.raises(UnknownDocumentError):
                reader.get_setting("ef" * 32)


_CHILD_WRITER = textwrap.dedent("""
    import sys
    from repro.storage import CorpusStore
    from repro.workloads import library

    store = CorpusStore(sys.argv[1])
    tree = library.generate_source(3, authors_per_book=2, seed=11)
    fingerprint = store.put_tree(tree)
    store.put_setting(library.library_setting(), prewarm=True)
    store.close()
    print(fingerprint)
""")

_CHILD_KILL_TARGET = textwrap.dedent("""
    import sys
    from repro.storage import CorpusStore
    from repro.workloads import library

    store = CorpusStore(sys.argv[1], chunk_docs=1)
    seed = 0
    while True:
        seed += 1
        store.put_tree(library.generate_source(2, authors_per_book=2,
                                               seed=seed))
        print(seed, flush=True)
""")


class TestCrossProcess:
    def _run_child(self, program, *args, hash_seed="0"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH=os.pathsep.join(sys.path))
        return subprocess.run(
            [sys.executable, "-c", program, *map(str, args)],
            capture_output=True, text=True, env=env, check=True, timeout=120)

    def test_store_written_elsewhere_reads_here(self, tmp_path):
        """A store written by another process — under a different
        PYTHONHASHSEED — resolves the same fingerprints here: nothing
        hash-randomized leaks into the record format or the catalog keys."""
        path = tmp_path / "store"
        child = self._run_child(_CHILD_WRITER, path, hash_seed="12345")
        fingerprint = child.stdout.strip().splitlines()[-1]
        tree = library.generate_source(3, authors_per_book=2, seed=11)
        assert fingerprint == tree.fingerprint()
        with CorpusStore(path, read_only=True) as store:
            loaded = store.load_tree(fingerprint)
            assert loaded.fingerprint() == fingerprint
            assert store.get_setting(
                library.library_setting().fingerprint()).prewarm is True

    def test_kill_mid_ingest_never_corrupts(self, tmp_path):
        """SIGKILL a bulk ingest mid-flight, then reopen: every committed
        document decodes, the catalog and heap agree, and the store accepts
        further writes.  Repeated for good measure."""
        path = tmp_path / "store"
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
        survivors = 0
        for round_no in range(2):
            process = subprocess.Popen(
                [sys.executable, "-c", _CHILD_KILL_TARGET, str(path)],
                stdout=subprocess.PIPE, text=True, env=env)
            committed = 0
            for line in process.stdout:
                committed = int(line)
                if committed >= 4 * (round_no + 1):
                    break
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=30)
            process.stdout.close()
            with CorpusStore(path) as store:
                fingerprints = store.tree_fingerprints()
                # Everything the child reported committed must be there;
                # at most one in-flight chunk on top.
                assert len(fingerprints) >= committed >= survivors
                for fingerprint in fingerprints:
                    loaded = store.load_tree(fingerprint)
                    assert loaded.fingerprint() == fingerprint
                assert store.summary()["store_data_bytes"] == \
                    os.path.getsize(path / "trees.bin")
                survivors = len(fingerprints)
                extra = store.put_tree(_tree(seed=999))
                assert store.load_tree(extra).fingerprint() == extra
                survivors += 1


# --------------------------------------------------------------------- #
# Engine: fingerprint-addressed requests
# --------------------------------------------------------------------- #

class TestEngineStore:
    def test_resolution_without_store_is_typed(self, library_setting):
        engine = ExchangeEngine(compile_setting(library_setting))
        with pytest.raises(StoreError, match="cannot resolve"):
            engine.solve("ab" * 32)

    def test_fp_and_inline_share_result_cache_key(self, library_setting):
        engine = ExchangeEngine(compile_setting(library_setting))
        store = engine.attach_store(CorpusStore(None))
        tree = _tree()
        fingerprint = store.put_tree(tree)
        query, order = library.query_writer_of("Book-0"), ["w"]
        inline = engine.certain_answers(tree, query, order)
        by_fp = engine.certain_answers(fingerprint, query, order)
        assert by_fp.payload == inline.payload
        assert engine.stats["result_cache_hits"] == 1  # same key, no rerun

    def test_store_counters_in_stats_and_results(self, library_setting):
        engine = ExchangeEngine(compile_setting(library_setting))
        store = engine.attach_store(CorpusStore(None))
        fingerprint = store.put_tree(_tree())
        result = engine.solve(fingerprint)
        assert result.ok
        assert result.cache["store_hits"] == 1
        assert result.cache["store_bytes"] > 0
        bytes_after_first = engine.stats["store_bytes"]
        engine.solve(fingerprint)  # thawed-tree LRU: a hit, no heap read
        assert engine.stats["store_hits"] == 2
        assert engine.stats["store_bytes"] == bytes_after_first
        summary = engine.stats_summary()
        assert summary.store_hits == 2
        assert summary.store_misses == 0
        assert summary.store_bytes == bytes_after_first

    def test_unknown_document_surfaces_through_engine(self, library_setting):
        engine = ExchangeEngine(compile_setting(library_setting))
        engine.attach_store(CorpusStore(None))
        with pytest.raises(UnknownDocumentError):
            engine.solve("ab" * 32)
        assert engine.stats["store_misses"] == 1

    def test_parity_sweep_fp_vs_inline(self, library_setting):
        """Property sweep: for a spread of generated documents, the
        fingerprint-addressed path is bit-identical to the inline path —
        same certain answers, same canonical solution fingerprint —
        computed by *separate* engines so nothing is served from a shared
        result cache."""
        compiled = compile_setting(library_setting)
        query, order = library.query_writer_of("Book-0"), ["w"]
        for seed in range(5):
            tree = _tree(size=2 + seed % 3, seed=seed)
            inline_engine = ExchangeEngine(compiled)
            fp_engine = ExchangeEngine(compiled)
            store = fp_engine.attach_store(CorpusStore(None))
            fingerprint = store.put_tree(tree)
            inline_solution = inline_engine.solve(tree)
            fp_solution = fp_engine.solve(fingerprint)
            assert fp_solution.payload.fingerprint() == \
                inline_solution.payload.fingerprint()
            inline_answers = inline_engine.certain_answers(tree, query, order)
            fp_answers = fp_engine.certain_answers(fingerprint, query, order)
            assert fp_answers.payload == inline_answers.payload
            assert fp_answers.raw.variable_order == \
                inline_answers.raw.variable_order

    def test_batch_accepts_fingerprints(self, library_setting):
        engine = ExchangeEngine(compile_setting(library_setting))
        store = engine.attach_store(CorpusStore(None))
        trees = [_tree(seed=seed) for seed in (1, 2)]
        fingerprints = store.put_trees(trees)
        query = library.query_writer_of("Book-0")
        mixed = [trees[0], fingerprints[1]]
        results = engine.certain_answers_batch(mixed, query)
        pure = ExchangeEngine(compile_setting(library_setting))
        expected = [pure.certain_answers(tree, query).payload
                    for tree in trees]
        assert [r.payload for r in results] == expected


# --------------------------------------------------------------------- #
# Registry / host persistence and plan-warm restore
# --------------------------------------------------------------------- #

class TestRegistryPersistence:
    def test_persist_requires_store(self, library_setting):
        registry = SettingRegistry()
        with pytest.raises(StoreError, match="persist=True"):
            registry.register(library_setting, persist=True)

    def test_persist_compiles_under_prewarm_accounting(
            self, tmp_path, library_setting):
        registry = SettingRegistry(store=tmp_path / "store")
        fingerprint = registry.register(library_setting, persist=True)
        stats = registry.stats()
        assert stats["compiled_misses"] == 0
        assert stats["prewarm_compiles"] == 1
        assert registry.store.get_setting(fingerprint).prewarm is False
        # The persisted pickle answers like a fresh compile.
        stored = registry.store.get_setting(fingerprint)
        engine = ExchangeEngine(stored.compiled)
        assert engine.check_consistency().payload is True

    def test_restore_from_store_boots_plan_warm(self, tmp_path,
                                                library_setting):
        path = tmp_path / "store"
        first = SettingRegistry(store=path)
        fingerprint = first.register(library_setting, persist=True,
                                     prewarm=True)
        tree_fp = first.store.put_tree(_tree())
        first.close()
        first.store.close()

        # "Restart": a brand-new registry over the same directory.
        registry = SettingRegistry(store=path)
        assert registry.restore_from_store() == [fingerprint]
        stats = registry.stats()
        assert stats["compiled_misses"] == 0
        assert stats["prewarm_hits"] >= 1
        # First request after restore: compiled_hits, and the document is
        # resolved from disk through the shard's engine.
        request_answers = registry.shard(fingerprint).engine.certain_answers(
            tree_fp, library.query_writer_of("Book-0"), ["w"])
        assert request_answers.payload == {("Author-1",), ("Author-2",)}
        stats = registry.stats()
        assert stats["compiled_misses"] == 0
        assert stats["compiled_hits"] >= 1
        assert stats["store_hits"] >= 1
        assert stats["store_bytes"] > 0

    def test_registry_stats_overlay_store_counters(self, tmp_path,
                                                   library_setting):
        registry = SettingRegistry(store=tmp_path / "store")
        stats = registry.stats()
        assert stats["store_hits"] == 0
        assert stats["store_misses"] == 0
        assert stats["store_bytes"] == 0

    def test_shard_host_requires_on_disk_store(self):
        with pytest.raises(ValueError, match="in-memory"):
            ShardHost(workers=1, store=CorpusStore(None))

    def test_shard_host_restore_and_fp_requests(self, tmp_path,
                                                library_setting):
        from repro.service.requests import certain_answers_request
        path = tmp_path / "store"
        seed_store = CorpusStore(path)
        tree_fp = seed_store.put_tree(_tree())
        seed_store.put_setting(compile_setting(library_setting),
                               prewarm=True)
        seed_store.close()

        with ShardHost(workers=1, store=path) as host:
            restored = host.restore_from_store()
            assert restored == [library_setting.fingerprint()]
            result = host.execute(certain_answers_request(
                restored[0], tree_fp, library.query_writer_of("Book-0"),
                ["w"]))
            assert result.payload == {("Author-1",), ("Author-2",)}
            stats = host.stats()["registry"]
            assert stats["compiled_misses"] == 0
            assert stats["prewarm_hits"] >= 1
            assert stats["store_hits"] >= 1


# --------------------------------------------------------------------- #
# The consolidated register() surface
# --------------------------------------------------------------------- #

class TestRegisterConsolidation:
    def test_registry_legacy_positional_warns_and_prewarms(
            self, library_setting):
        registry = SettingRegistry()
        with pytest.warns(DeprecationWarning, match="prewarm="):
            fingerprint = registry.register(library_setting, True)
        assert registry.stats()["compiled_entries"] == 1
        assert fingerprint == library_setting.fingerprint()
        with pytest.raises(TypeError, match="keyword-only"):
            registry.register(library_setting, True, False)

    def test_service_legacy_positional_warns(self, library_setting):
        import asyncio

        from repro.service import AsyncExchangeService

        async def scenario():
            async with AsyncExchangeService(executor="serial") as service:
                with pytest.warns(DeprecationWarning, match="prewarm="):
                    service.register(library_setting, True)
                return service.stats()["registry"]["compiled_entries"]

        assert asyncio.run(scenario()) == 1

    def test_host_legacy_positional_warns(self, tmp_path, library_setting):
        with ShardHost(workers=1) as host:
            with pytest.warns(DeprecationWarning, match="prewarm="):
                fingerprint = host.register(library_setting, True)
            assert fingerprint == library_setting.fingerprint()
            assert host.stats()["registry"]["prewarm_compiles"] == 1

    def test_keyword_form_does_not_warn(self, recwarn, library_setting):
        registry = SettingRegistry()
        registry.register(library_setting, prewarm=True)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


# --------------------------------------------------------------------- #
# Service-level store integration
# --------------------------------------------------------------------- #

class TestServiceStore:
    def test_put_tree_and_fp_requests_default_store(self, library_setting):
        """Without any store configured, the service still accepts
        put_tree (ephemeral in-memory store) and fp-addressed requests."""
        import asyncio

        from repro.service import AsyncExchangeService

        async def scenario():
            async with AsyncExchangeService(executor="serial") as service:
                fingerprint = service.register(library_setting)
                tree = _tree()
                tree_fp = await service.put_tree(tree)
                assert tree_fp == tree.fingerprint()
                by_fp = await service.certain_answers(
                    fingerprint, tree_fp,
                    library.query_writer_of("Book-0"), ["w"])
                inline = await service.certain_answers(
                    fingerprint, tree,
                    library.query_writer_of("Book-0"), ["w"])
                assert by_fp.payload == inline.payload
                stats = service.stats()["registry"]
                assert stats["store_hits"] >= 1
                with pytest.raises(UnknownDocumentError):
                    await service.solve(fingerprint, "ab" * 32)
                return by_fp.payload

        assert asyncio.run(scenario()) == {("Author-1",), ("Author-2",)}

    def test_service_restore_settings(self, tmp_path, library_setting):
        import asyncio

        from repro.service import AsyncExchangeService

        path = tmp_path / "store"

        async def persist():
            async with AsyncExchangeService(executor="serial",
                                            store=path) as service:
                fingerprint = service.register(library_setting, persist=True)
                tree_fp = await service.put_tree(_tree())
                return fingerprint, tree_fp

        fingerprint, tree_fp = asyncio.run(persist())

        async def restart():
            async with AsyncExchangeService(executor="serial",
                                            store=path) as service:
                assert service.restore_settings() == [fingerprint]
                result = await service.certain_answers(
                    fingerprint, tree_fp,
                    library.query_writer_of("Book-0"), ["w"])
                stats = service.stats()["registry"]
                assert stats["compiled_misses"] == 0
                assert stats["prewarm_hits"] >= 1
                return result.payload

        assert asyncio.run(restart()) == {("Author-1",), ("Author-2",)}

    def test_explicit_registry_and_store_conflict(self, library_setting):
        from repro.service import AsyncExchangeService

        with pytest.raises(ValueError, match="not both"):
            AsyncExchangeService(registry=SettingRegistry(),
                                 store=CorpusStore(None))
