"""Tests for certain answers (Sections 5.1, 6.1; Theorem 6.2, Corollary 6.11)."""

import pytest

from repro.exchange import (DataExchangeSetting, certain_answer_boolean,
                            certain_answers, order_tree, std)
from repro.patterns import exists, parse_pattern, pattern_query, union_query
from repro.workloads import library, nested_relational
from repro.xmlmodel import DTD, XMLTree


class TestIntroductionQueries:
    """The two queries discussed in the introduction of the paper."""

    def test_writer_of_computational_complexity(self, library_setting, figure_1_source):
        query = library.query_writer_of("Computational Complexity")
        outcome = certain_answers(library_setting, figure_1_source, query)
        assert outcome.has_solution
        assert outcome.answers == {("Papadimitriou",)}

    def test_writer_of_joint_book(self, library_setting, figure_1_source):
        query = library.query_writer_of("Combinatorial Optimization")
        outcome = certain_answers(library_setting, figure_1_source, query)
        assert outcome.answers == {("Papadimitriou",), ("Steiglitz",)}

    def test_works_written_in_1994_cannot_be_answered(self, library_setting,
                                                      figure_1_source):
        # Years are invented nulls: no tuple is certain.
        query = library.query_works_in_year("1994")
        outcome = certain_answers(library_setting, figure_1_source, query)
        assert outcome.answers == set()

    def test_boolean_query(self, library_setting, figure_1_source):
        query = exists(["w", "t"], pattern_query(parse_pattern(
            "bib[writer(@name=w)[work(@title=t)]]")))
        assert certain_answer_boolean(library_setting, figure_1_source, query)
        absent = exists(["w"], pattern_query(parse_pattern(
            'bib[writer(@name="Knuth")]')))
        assert not certain_answer_boolean(library_setting, figure_1_source, absent)


class TestAnswerHygiene:
    def test_null_tuples_are_filtered(self, library_setting, figure_1_source):
        # @year binds to a null in every solution; tuples containing it are
        # never certain (only Const tuples can be certain answers).
        query = pattern_query(parse_pattern("bib[writer[work(@title=t, @year=y)]]"))
        outcome = certain_answers(library_setting, figure_1_source, query)
        assert outcome.answers == set()

    def test_variable_order_controls_tuple_layout(self, library_setting, figure_1_source):
        query = pattern_query(parse_pattern("bib[writer(@name=w)[work(@title=t)]]"))
        outcome = certain_answers(library_setting, figure_1_source, query,
                                  variable_order=["t", "w"])
        assert ("Computational Complexity", "Papadimitriou") in outcome.answers

    def test_union_queries_supported(self, library_setting, figure_1_source):
        q1 = pattern_query(parse_pattern('bib[writer(@name=w)[work(@title="Computational Complexity")]]'))
        q2 = pattern_query(parse_pattern('bib[writer(@name=w)[work(@title="No Such Book")]]'))
        outcome = certain_answers(library_setting, figure_1_source, union_query(q1, q2))
        assert outcome.answers == {("Papadimitriou",)}

    def test_descendant_queries_supported(self, library_setting, figure_1_source):
        query = pattern_query(parse_pattern('bib[//work(@title=t)]'))
        outcome = certain_answers(library_setting, figure_1_source, query)
        assert outcome.answers == {("Combinatorial Optimization",),
                                   ("Computational Complexity",)}

    def test_no_solution_reported(self):
        source_dtd = DTD("r", {"r": "A*"}, {"A": ["a"]})
        target_dtd = DTD("r", {"r": "B", "B": ""}, {"B": ["m"]})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("r[B(@m=x)]", "A(@a=x)")])
        source = XMLTree.build(("r", [("A", {"a": "1"}), ("A", {"a": "2"})]))
        query = pattern_query(parse_pattern("B(@m=x)"))
        outcome = certain_answers(setting, source, query)
        assert not outcome.has_solution
        assert outcome.answers is None
        with pytest.raises(ValueError):
            outcome.certain()

    def test_requires_fully_specified_setting(self, figure_1_source):
        setting = library.library_setting()
        setting.stds.append(std("writer(@name=y)", "db[book[author(@name=y)]]"))
        query = pattern_query(parse_pattern("bib[writer(@name=w)]"))
        with pytest.raises(ValueError):
            certain_answers(setting, figure_1_source, query)


class TestOrderIndependence:
    """Proposition 5.1 / 5.2: the certain answers do not depend on sibling
    order, and the unordered canonical solution can always be ordered."""

    def test_reordering_source_preserves_certain_answers(self, library_setting):
        source = library.figure_1_source()
        reordered = library.figure_1_source()
        reordered.reorder_children(
            reordered.root, tuple(reversed(reordered.children(reordered.root))))
        query = library.query_writer_of("Computational Complexity")
        first = certain_answers(library_setting, source, query)
        second = certain_answers(library_setting, reordered, query)
        assert first.answers == second.answers

    def test_canonical_solution_can_be_ordered(self, library_setting, figure_1_source):
        outcome = certain_answers(library_setting, figure_1_source,
                                  library.query_writer_of("Computational Complexity"))
        ordered = order_tree(outcome.canonical, library_setting.target_dtd)
        assert library_setting.target_dtd.conforms(ordered)
        assert library_setting.is_solution(figure_1_source, ordered)


class TestClioScenario:
    """Corollary 6.11: nested-relational (Clio-style) settings are tractable."""

    def test_company_projects(self, company_setting, company_source):
        query = nested_relational.query_projects_of("Dept-1")
        outcome = certain_answers(company_setting, company_source, query)
        assert outcome.has_solution
        assert outcome.answers == {("Project-1-0",), ("Project-1-1",)}

    def test_positions_have_null_salaries(self, company_setting, company_source):
        query = pattern_query(parse_pattern(
            "directory[person(@name=n)[position(@salary=s)]]"))
        outcome = certain_answers(company_setting, company_source, query)
        assert outcome.answers == set()

    def test_person_roles_are_certain(self, company_setting, company_source):
        query = pattern_query(parse_pattern(
            'directory[person(@name=n)[position(@dept="Dept-0", @role=r)]]'))
        outcome = certain_answers(company_setting, company_source, query)
        assert outcome.has_solution
        assert len(outcome.answers) == 2  # two employees in Dept-0
        assert all(name.startswith("Employee-0-") for name, _ in outcome.answers)

    def test_solution_is_valid_and_orderable(self, company_setting, company_source):
        outcome = certain_answers(company_setting, company_source,
                                  nested_relational.query_projects_of("Dept-0"))
        assert company_setting.is_unordered_solution(company_source, outcome.canonical)
        ordered = order_tree(outcome.canonical, company_setting.target_dtd)
        assert company_setting.target_dtd.conforms(ordered)
