"""The JSON-lines server: wire codec, live round-trips, clean shutdown.

Boots ``python -m repro.service.server`` as a real subprocess on a free
port and drives it through the client helper — the same conversation the CI
smoke job runs — then asserts the process exits 0 after a ``shutdown``
request.  Codec tests below need no server.
"""

import asyncio
import socket
import subprocess
import sys
import threading

import pytest

from repro import ChaseError, DataExchangeSetting, DTD, Null, XMLTree, std
from repro.service.client import ServiceClient
from repro.service.protocol import (answers_to_wire, setting_from_wire,
                                    setting_to_wire, tree_from_wire,
                                    tree_to_wire, value_from_wire,
                                    value_to_wire)
from repro.workloads import library


class TestProtocolCodec:
    def test_tree_round_trip_with_nulls(self):
        tree = XMLTree.build(("r", [("a", {"x": "1", "y": Null(3)}),
                                    ("b", [("c", {"z": Null(3)})])]))
        again = tree_from_wire(tree_to_wire(tree))
        assert again.equals(tree)
        assert again.fingerprint() == tree.fingerprint()

    def test_value_round_trip(self):
        assert value_from_wire(value_to_wire("v")) == "v"
        assert value_from_wire(value_to_wire(Null(7))) == Null(7)

    def test_setting_round_trip_preserves_fingerprint(self, library_setting,
                                                      company_setting,
                                                      figure_6_setting):
        for setting in (library_setting, company_setting, figure_6_setting):
            again = setting_from_wire(setting_to_wire(setting))
            assert again.fingerprint() == setting.fingerprint()

    def test_answers_to_wire(self):
        assert answers_to_wire(None) is None
        assert answers_to_wire({("b", "2"), ("a", "1")}) == \
            [["a", "1"], ["b", "2"]]
        assert answers_to_wire(set()) == []


@pytest.fixture(scope="module")
def live_server():
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server", "--port", "0",
         "--result-cache-maxsize", "32"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    banner = process.stdout.readline().strip()
    assert banner.startswith("listening on "), banner
    host, port = banner.split()[-1].rsplit(":", 1)
    yield host, int(port), process
    if process.poll() is None:  # tests normally shut it down themselves
        process.kill()
    process.wait()


class TestLiveServer:
    def test_full_conversation_and_clean_shutdown(self, live_server):
        host, port, process = live_server
        setting = library.library_setting()
        tree = library.generate_source(4, authors_per_book=2, seed=1)

        with ServiceClient(host, port) as client:
            assert client.ping()
            fingerprint = client.register(setting)
            assert fingerprint == setting.fingerprint()
            assert client.check_consistency(fingerprint) is True
            assert client.classify(fingerprint) is True
            answers = client.certain_answers(
                fingerprint, tree,
                "bib[writer(@name=w)[work(@title='Book-0')]]")
            assert answers == {("Author-1",), ("Author-2",)}

            solution = client.solve(fingerprint, tree)
            assert solution is not None
            assert setting.is_unordered_solution(tree, solution)

            # Server-side engine errors come back as typed responses on a
            # live connection, not connection drops.
            bad_source = DTD("db", {"db": "rec*", "rec": ""}, {"rec": ["v"]})
            bad_target = DTD("r", {"r": "a a", "a": ""}, {"a": ["v"]})
            bad = DataExchangeSetting(
                bad_source, bad_target, [std("r[a(@v=x)]", "db[rec(@v=x)]")])
            bad_fp = client.register(bad)
            with pytest.raises(ChaseError, match="not univocal"):
                client.solve(bad_fp, XMLTree.build(
                    ("db", [("rec", {"v": "1"}), ("rec", {"v": "2"}),
                            ("rec", {"v": "3"})])))
            with pytest.raises(ValueError, match="unknown operation"):
                client.request({"op": "frobnicate"})

            # Repeat request: served by the shard's result cache.
            before = client.stats()["shards"][fingerprint]
            client.certain_answers(
                fingerprint, tree,
                "bib[writer(@name=w)[work(@title='Book-0')]]")
            after = client.stats()["shards"][fingerprint]
            assert after["result_cache_hits"] == \
                before["result_cache_hits"] + 1

            assert client.shutdown()

        assert process.wait(timeout=30) == 0
        assert "server shut down cleanly" in process.stdout.read()

    def test_no_solution_round_trips_as_none(self):
        # Fresh server: the module fixture's one may already be shut down.
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.service.server", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            banner = process.stdout.readline().strip()
            host, port = banner.split()[-1].rsplit(":", 1)
            source = DTD("db", {"db": "book*", "book": ""},
                         {"book": ["title"]})
            target = DTD("lib", {"lib": "item", "item": ""}, {"item": ["t"]})
            clash = DataExchangeSetting(
                source, target, [std("lib[item(@t=x)]", "db[book(@title=x)]")])
            tree = XMLTree.build(("db", [("book", {"title": "A"}),
                                         ("book", {"title": "B"})]))
            with ServiceClient(host, int(port)) as client:
                fingerprint = client.register(clash)
                assert client.solve(fingerprint, tree) is None
                assert client.certain_answers(fingerprint, tree,
                                              "lib[item(@t=w)]") is None
                assert client.shutdown()
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()


class TestInProcessServer:
    """The same conversation against an in-process ``ExchangeServer`` (the
    server loop runs on a background thread; the sync client talks to it
    over a real socket)."""

    @pytest.fixture
    def server_thread(self):
        from repro.service import AsyncExchangeService
        from repro.service.server import ExchangeServer

        ready = threading.Event()
        holder = {}

        def run() -> None:
            async def serve() -> None:
                service = AsyncExchangeService(parallel=2,
                                               result_cache_maxsize=16)
                server = ExchangeServer(service, port=0)
                await server.start()
                holder["port"] = server.port
                holder["server"] = server
                ready.set()
                await server.serve_until_shutdown(announce=False)

            asyncio.run(serve())

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=30), "server did not come up"
        yield holder["port"], holder["server"]
        thread.join(timeout=30)
        assert not thread.is_alive(), "server loop did not exit"

    def test_conversation_and_malformed_lines(self, server_thread):
        port, server = server_thread
        setting = library.library_setting()
        tree = library.generate_source(3, authors_per_book=2, seed=2)
        with ServiceClient("127.0.0.1", port) as client:
            fingerprint = client.register(setting)
            assert client.check_consistency(fingerprint) is True
            assert client.classify(fingerprint) is True
            answers = client.certain_answers(
                fingerprint, tree, "bib[writer(@name=w)]")
            assert answers and all(len(row) == 1 for row in answers)
            solution = client.solve(fingerprint, tree)
            assert solution is not None and \
                setting.is_unordered_solution(tree, solution)
            stats = client.stats()
            assert stats["registry"]["settings_registered"] == 1
            with pytest.raises(ValueError, match="unknown operation"):
                client.request({"op": "frobnicate"})

            # A malformed line gets an error *response*, not a hangup ...
            client._sock.sendall(b"this is not json\n")
            reply = client._reader.readline()
            assert b'"ok":false' in reply.replace(b" ", b"")
            # ... and the connection keeps serving afterwards.
            assert client.ping()

            # An unknown fingerprint re-raises client-side with the
            # fingerprint prefix as the key, not the server's prose.
            from repro.service import UnknownSettingError
            with pytest.raises(UnknownSettingError) as excinfo:
                client.check_consistency("ab" * 32)
            assert excinfo.value.fingerprint == ("ab" * 32)[:16]

            assert client.shutdown()
        assert server.requests >= 8

    def test_shutdown_completes_with_idle_connections_open(self,
                                                           server_thread):
        """Regression: wait_closed() (3.12.1+) waits for connection
        handlers, so shutdown must close idle connections itself — the
        fixture teardown asserts the server loop actually exited."""
        port, _ = server_thread
        idle = socket.create_connection(("127.0.0.1", port))
        try:
            with ServiceClient("127.0.0.1", port) as client:
                assert client.ping()
                assert client.shutdown()
        finally:
            idle.close()


def test_big_line_decodes_the_query_off_loop(monkeypatch):
    """Regression: a big ``certain_answers`` line offloaded its tree decode
    and answer encode but parsed the *query* on the event loop — every
    payload decode of a big line must run on the service pool."""
    from repro.service import server as server_module
    from repro.service.server import ExchangeServer, serve_in_background

    seen = []
    real = server_module.query_from_wire

    def recording(wire):
        seen.append(threading.current_thread().name)
        return real(wire)

    monkeypatch.setattr(server_module, "query_from_wire", recording)
    port, server, join = serve_in_background(executor="thread", parallel=2)
    setting = library.library_setting()
    tree = library.generate_source(2, authors_per_book=1, seed=3)
    with ServiceClient("127.0.0.1", port) as client:
        fingerprint = client.register(setting)
        # Padding pushes the line over OFFLOAD_CODEC_BYTES without needing
        # a multi-megabyte tree; unknown keys are ignored by dispatch.
        reply = client.request({
            "op": "certain_answers", "fingerprint": fingerprint,
            "tree": tree_to_wire(tree), "query": "bib[writer(@name=w)]",
            "pad": "x" * (ExchangeServer.OFFLOAD_CODEC_BYTES + 1024)})
        assert reply["ok"] and reply["result_ok"]
        assert client.shutdown()
    join()
    assert seen, "query_from_wire was never reached"
    assert all(name.startswith("exchange-service") for name in seen), \
        f"big-line query parse ran on thread(s) {seen!r}, not the pool"


def test_smoke_entry_point_passes():
    """The exact command CI runs: client --smoke boots its own server."""
    completed = subprocess.run(
        [sys.executable, "-m", "repro.service.client", "--smoke"],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, completed.stderr + completed.stdout
    assert "SMOKE PASS" in completed.stdout


class TestWireStore:
    """The fingerprint-first wire surface: ``put_tree``, ``tree_fp`` in
    place of inline trees, the typed ``UnknownDocumentError`` response, and
    the client's consolidated ``register`` keywords."""

    def test_put_tree_and_fp_round_trip(self):
        from repro.service.server import serve_in_background
        from repro.storage import UnknownDocumentError

        port, _server, join = serve_in_background(parallel=2)
        setting = library.library_setting()
        tree = library.generate_source(3, authors_per_book=2, seed=2)
        query = "bib[writer(@name=w)]"
        with ServiceClient("127.0.0.1", port) as client:
            fingerprint = client.register(setting)
            tree_fp = client.put_tree(tree)
            assert tree_fp == tree.fingerprint()
            assert client.certain_answers(fingerprint, tree_fp, query) == \
                client.certain_answers(fingerprint, tree, query)
            solution = client.solve(fingerprint, tree_fp)
            assert solution is not None
            assert setting.is_unordered_solution(tree, solution)

            # An unknown document fingerprint is a typed error *response*
            # carrying the fingerprint, never a connection drop.
            with pytest.raises(UnknownDocumentError) as info:
                client.solve(fingerprint, "ab" * 32)
            assert info.value.fingerprint == "ab" * 32
            assert client.ping()  # connection survived

            with pytest.warns(DeprecationWarning, match="prewarm="):
                client.register(setting, True)
            assert client.shutdown()
        join()

    def test_restart_smoke_entry_point_passes(self):
        """The persistence leg CI runs: --smoke-restart persists into a
        --store, restarts the server on it and asserts the first request
        of the new process is answered plan-warm."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro.service.client", "--smoke-restart"],
            capture_output=True, text=True, timeout=180)
        assert completed.returncode == 0, completed.stderr + completed.stdout
        assert "RESTART SMOKE PASS" in completed.stdout
