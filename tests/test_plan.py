"""Compiled query plans: slot mapping, lowering, evaluation, plan cache.

The generated property harness (tests/test_properties_generated.py) sweeps
plan-vs-interpreter parity across hundreds of scenarios; this file pins the
plan layer's *mechanics* — slot allocation and ∃-scoping, ``//`` lowering,
union alignment, the frozen-tree layout, and plan-cache hit/miss/eviction
accounting through the engine and the serving layer.
"""

import pytest

from repro import ExchangeEngine, XMLTree, compile_setting
from repro.patterns import (PlanCache, compile_pattern, compile_query,
                            conjunction, descendant, exists, match_anywhere,
                            node, pattern_query, union_query, wildcard)
from repro.service import SettingRegistry
from repro.service.requests import ExchangeRequest
from repro.workloads import library


@pytest.fixture
def tree():
    return XMLTree.build(("db", [
        ("book", {"title": "B1"}, [("author", {"name": "A", "aff": "U"}),
                                   ("author", {"name": "B", "aff": "V"})]),
        ("book", {"title": "B2"}, [("author", {"name": "A", "aff": "W"})]),
        ("shelf", [("book", {"title": "B3"},
                    [("author", {"name": "C", "aff": "U"})])]),
    ]))


def _norm(assignments):
    return sorted(sorted(a.items(), key=lambda kv: kv[0])
                  for a in assignments)


class TestFrozenTree:
    def test_layout_invariants(self, tree):
        frozen = tree.freeze()
        assert len(frozen) == len(tree)
        assert frozen.label(0) == "db"
        assert frozen.parent(0) is None
        # BFS numbering: every child span is contiguous and below its parent.
        for pos in range(frozen.n):
            for child in frozen.children(pos):
                assert child > pos
                assert frozen.parent(child) == pos
        # Per-label index covers exactly the nodes carrying the label.
        for label in ("db", "book", "author", "shelf"):
            lid = frozen.label_id(label)
            assert lid >= 0
            index = frozen.nodes_by_label[lid]
            assert all(frozen.label(pos) == label for pos in index)
        assert len(frozen.nodes_by_label[frozen.label_id("book")]) == 3
        assert frozen.label_id("nowhere") == -1

    def test_attributes_and_snapshot_isolation(self, tree):
        frozen = tree.freeze()
        book = frozen.nodes_by_label[frozen.label_id("book")][0]
        assert frozen.attribute(book, "title") == "B1"
        assert frozen.attribute(book, "missing") is None
        assert frozen.attributes(book) == {"title": "B1"}
        fingerprint = frozen.fingerprint()
        assert fingerprint == tree.fingerprint()
        # Snapshot semantics: later mutations don't leak into the freeze.
        tree.set_attribute(tree.root, "note", "changed")
        assert frozen.attribute(0, "note") is None
        assert frozen.fingerprint() == fingerprint
        assert tree.fingerprint() != fingerprint

    def test_post_order_is_bottom_up(self, tree):
        frozen = tree.freeze()
        seen = set()
        for pos in frozen.post_order:
            for child in frozen.children(pos):
                assert child in seen
            seen.add(pos)
        assert seen == set(range(frozen.n))


class TestSlotMapping:
    def test_free_variables_keep_interpreter_order(self):
        query = pattern_query(node("db", None,
                                   node("book", {"title": "$t"},
                                        node("author", {"name": "$n"}))))
        plan = compile_query(query)
        assert list(plan.free_variables) == query.free_variables() == ["t", "n"]
        assert len(set(plan.free_slots)) == 2

    def test_conjunction_members_share_slots_by_name(self):
        left = pattern_query(node("db", None, node("book", {"title": "$x"})))
        right = pattern_query(
            node("db", None, node("book", {"title": "$x"},
                                  node("author", {"name": "$y"}))))
        plan = compile_query(conjunction(left, right))
        # One slot for x (the join), one for y.
        assert plan.width == 2
        assert sorted(plan.free_variables) == ["x", "y"]

    def test_exists_allocates_fresh_shadowing_slots(self):
        inner = pattern_query(node("db", None,
                                   node("book", {"title": "$x"},
                                        node("author", {"name": "$y"}))))
        shadowing = conjunction(
            pattern_query(node("db", None, node("book", {"title": "$x"}))),
            exists(["x"], pattern_query(
                node("db", None, node("book", {"title": "$x"},
                                      node("author", {"name": "$y"}))))))
        plan = compile_query(shadowing)
        # Three slots: the free x, the shadowed ∃x, and y.
        assert plan.width == 3
        assert sorted(plan.free_variables) == ["x", "y"]
        del inner

    def test_exists_parity_with_interpreter(self, tree):
        query = exists(["n"], pattern_query(
            node("book", {"title": "$t"}, node("author", {"name": "$n"}))))
        plan = compile_query(query)
        assert _norm(plan.evaluate(tree.freeze())) == _norm(query.evaluate(tree))
        assert plan.answers(tree.freeze()) == query.answers(tree)


class TestDescendantLowering:
    def test_descendant_matches_proper_descendants_only(self, tree):
        # //book(@title=t): the shelf's book is a descendant of the root,
        # so all three titles appear; the root itself never witnesses its
        # own label.
        pattern = descendant(node("book", {"title": "$t"}))
        plan = compile_pattern(pattern)
        got = {row[plan.slot_of("t")] for row in plan.matches(tree.freeze())}
        assert got == {"B1", "B2", "B3"}
        assert _norm(plan.assignments(tree.freeze())) == \
            _norm(match_anywhere(tree, pattern))

    def test_nested_descendant_under_child(self, tree):
        # db[//author(@aff=a)]: a descendant pattern as a child formula is
        # witnessed at a *child* of db having a proper descendant author —
        # only the shelf's author qualifies under shelf.
        pattern = node("db", None, descendant(node("author", {"aff": "$a"})))
        plan = compile_pattern(pattern)
        assert _norm(plan.assignments(tree.freeze())) == \
            _norm(match_anywhere(tree, pattern))

    def test_wildcard_descendant(self, tree):
        pattern = descendant(wildcard({"name": "$n"}))
        plan = compile_pattern(pattern)
        got = {row[plan.slot_of("n")] for row in plan.matches(tree.freeze())}
        assert got == {"A", "B", "C"}

    def test_absent_label_disables_op_at_bind_time(self, tree):
        plan = compile_pattern(node("nowhere", {"x": "$x"}))
        assert plan.matches(tree.freeze()) == ()


class TestUnionPlans:
    def test_union_members_align_on_free_slots(self, tree):
        by_title = exists(["n"], pattern_query(
            node("book", {"title": "$t"}, node("author", {"name": "$n"}))))
        anywhere = pattern_query(descendant(node("book", {"title": "$t"})))
        query = union_query(by_title, anywhere)
        plan = compile_query(query)
        frozen = tree.freeze()
        assert plan.answers(frozen) == query.answers(tree)
        assert plan.answers(frozen, ["t"]) == query.answers(tree, ["t"])

    def test_boolean_union(self, tree):
        query = union_query(
            exists(["t"], pattern_query(node("book", {"title": "$t"}))),
            exists(["z"], pattern_query(node("zine", {"title": "$z"}))))
        plan = compile_query(query)
        assert plan.holds(tree.freeze()) is query.holds(tree)
        assert plan.answers(tree.freeze()) == {()}


class TestPlanCache:
    def test_hit_miss_accounting(self):
        cache = PlanCache(maxsize=8)
        query = library.query_writer_of("B")
        first = cache.get(query)
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.get(query) is first
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    def test_lru_eviction_accounting(self):
        cache = PlanCache(maxsize=2)
        queries = [library.query_writer_of(title)
                   for title in ("A", "B", "C")]
        for query in queries:
            cache.get(query)
        assert cache.evictions == 1
        assert len(cache) == 2
        # The evicted (least recently used) entry recompiles: a miss.
        cache.get(queries[0])
        assert cache.misses == 4
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)

    def test_engine_surfaces_plan_cache_counters(self):
        engine = ExchangeEngine(library.library_setting(), result_cache=False)
        source = library.generate_source(3, authors_per_book=1, seed=1)
        query = library.query_writer_of("Book-0")
        first = engine.certain_answers(source, query)
        assert first.cache["plan_cache_misses"] == 1
        second = engine.certain_answers(source, query)
        # The acceptance invariant: second evaluation of any query on a
        # compiled setting never recompiles its plan.
        assert second.cache["plan_cache_misses"] == 1
        assert second.cache["plan_cache_hits"] >= 1
        summary = engine.stats_summary()
        assert summary.plan_cache_misses == 1
        assert summary.plan_cache_entries == 1
        assert summary.plan_cache_evictions == 0

    def test_result_cache_hits_bypass_plan_lookup(self):
        engine = ExchangeEngine(library.library_setting())
        source = library.generate_source(3, authors_per_book=1, seed=1)
        query = library.query_writer_of("Book-0")
        engine.certain_answers(source, query)
        before = engine.stats["plan_cache_hits"]
        engine.certain_answers(source, query)  # served from the result cache
        assert engine.stats["plan_cache_hits"] == before
        assert engine.stats["plan_cache_misses"] == 1

    def test_plans_shared_by_functional_and_engine_paths(self):
        from repro import certain_answers
        compiled = compile_setting(library.library_setting())
        engine = ExchangeEngine(compiled, result_cache=False)
        source = library.generate_source(3, authors_per_book=1, seed=1)
        query = library.query_writer_of("Book-0")
        engine.certain_answers(source, query)
        certain_answers(compiled.setting, source, query, compiled=compiled)
        assert engine.stats["plan_cache_misses"] == 1
        assert engine.stats["plan_cache_hits"] == 1


class TestServicePlanStats:
    def test_shard_and_registry_surface_plan_cache(self):
        registry = SettingRegistry()
        setting = library.library_setting()
        fingerprint = registry.register(setting)
        source = library.generate_source(3, authors_per_book=1, seed=1)
        query = library.query_writer_of("Book-0")
        request = ExchangeRequest(op="certain_answers",
                                  fingerprint=fingerprint, tree=source,
                                  query=query)
        shard = registry.shard(fingerprint)
        shard.execute(request)
        stats = shard.stats()
        assert stats["plan_cache_misses"] == 1
        assert stats["plan_cache_entries"] == 1
        fresh_tree = library.generate_source(3, authors_per_book=1, seed=2)
        shard.execute(ExchangeRequest(op="certain_answers",
                                      fingerprint=fingerprint,
                                      tree=fresh_tree, query=query))
        stats = shard.stats()
        assert stats["plan_cache_misses"] == 1  # plans are reused per shard
        assert stats["plan_cache_hits"] >= 1
        registry_stats = registry.stats()
        assert registry_stats["plan_cache_misses"] == 1
        assert registry_stats["plan_cache_hits"] >= 1
        assert registry_stats["plan_cache_entries"] == 1

    def test_registry_plan_counters_survive_eviction(self):
        from repro.generators import generate_scenario
        registry = SettingRegistry(max_compiled=1)
        first = registry.register(library.library_setting())
        second = registry.register(
            generate_scenario(11, profile="nested_relational").setting)
        source = library.generate_source(3, authors_per_book=1, seed=1)
        query = library.query_writer_of("Book-0")
        registry.shard(first).execute(ExchangeRequest(
            op="certain_answers", fingerprint=first, tree=source,
            query=query))
        before = registry.stats()
        assert before["plan_cache_misses"] == 1
        registry.shard(second)  # evicts the first shard (max_compiled=1)
        after = registry.stats()
        # Monotonic: the evicted shard's counters are folded in, not lost.
        assert after["compiled_evictions"] == 1
        assert after["plan_cache_misses"] >= before["plan_cache_misses"]
        assert after["plan_cache_hits"] >= before["plan_cache_hits"]
        assert after["plan_cache_entries"] == 0  # live caches only
