"""Tests for the consistency problem (Section 4, Theorems 4.1 / 4.5, Prop 4.4)."""

import itertools

import pytest

from repro.exchange import (DataExchangeSetting, check_consistency,
                            check_consistency_general,
                            check_consistency_nested_relational,
                            minimal_source_skeletons, pattern_satisfiable,
                            target_satisfiable, std)
from repro.patterns import parse_pattern
from repro.reductions import proposition_4_4
from repro.reductions.sat import CNFFormula, dpll_satisfiable, random_3cnf
from repro.workloads import library
from repro.xmlmodel import DTD


class TestPatternSatisfiability:
    def test_satisfiable_patterns(self):
        dtd = library.source_dtd()
        assert pattern_satisfiable(dtd, parse_pattern("db[book[author]]"))
        assert pattern_satisfiable(dtd, parse_pattern("//author"))
        assert pattern_satisfiable(dtd, parse_pattern("db[book, book]"))
        assert pattern_satisfiable(dtd, parse_pattern("_[_[_]]"))

    def test_unsatisfiable_patterns(self):
        dtd = library.source_dtd()
        assert not pattern_satisfiable(dtd, parse_pattern("db[author]"))
        assert not pattern_satisfiable(dtd, parse_pattern("book[db]"))
        assert not pattern_satisfiable(dtd, parse_pattern("//journal"))
        assert not pattern_satisfiable(dtd, parse_pattern("author[_]"))

    def test_joint_satisfiability(self):
        # r → 1|2 : the two children are mutually exclusive (the Section 4 example).
        dtd = DTD("r", {"r": "l1 | l2", "l1": "", "l2": ""})
        assert target_satisfiable(dtd, [parse_pattern("r[l1]")])
        assert target_satisfiable(dtd, [parse_pattern("r[l2]")])
        assert not target_satisfiable(dtd, [parse_pattern("r[l1]"),
                                            parse_pattern("r[l2]")])

    def test_satisfiability_with_recursion_and_descendant(self):
        dtd = DTD("r", {"r": "a", "a": "a | b", "b": ""})
        assert pattern_satisfiable(dtd, parse_pattern("//b"))
        assert pattern_satisfiable(dtd, parse_pattern("r[a[a[a[b]]]]"))
        assert not pattern_satisfiable(dtd, parse_pattern("b[a]"))


class TestSection4Example:
    """The inconsistent setting r[1[2(@a=x)]] :– r with target r → 1|2."""

    def _setting(self):
        source_dtd = DTD("rs", {"rs": ""})
        target_dtd = DTD("r", {"r": "l1 | l2", "l1": "", "l2": ""},
                         {"l2": ["a"]})
        dependency = std("r[l1[l2(@a=x)]]", "rs")
        return DataExchangeSetting(source_dtd, target_dtd, [dependency])

    def test_inconsistent(self):
        result = check_consistency(self._setting())
        assert not result.consistent
        assert result.complete

    def test_becomes_consistent_with_richer_target(self):
        source_dtd = DTD("rs", {"rs": ""})
        target_dtd = DTD("r", {"r": "l1 | l2", "l1": "l2?", "l2": ""},
                         {"l2": ["a"]})
        dependency = std("r[l1[l2(@a=x)]]", "rs")
        setting = DataExchangeSetting(source_dtd, target_dtd, [dependency])
        assert check_consistency(setting).consistent


class TestMinimalSkeletons:
    def test_non_recursive_enumeration_is_complete(self):
        dtd = DTD("r", {"r": "a | b", "a": "c?", "b": "", "c": ""})
        skeletons, complete = minimal_source_skeletons(dtd)
        assert complete
        shapes = {tuple(t.children_labels(t.root)) for t in skeletons}
        assert shapes == {("a",), ("b",)}

    def test_every_skeleton_weakly_conforms(self):
        dtd = library.source_dtd()
        skeletons, complete = minimal_source_skeletons(dtd)
        assert complete
        assert skeletons and all(dtd.weakly_conforms(t) for t in skeletons)

    def test_recursive_dtd_is_depth_bounded(self):
        dtd = DTD("r", {"r": "a", "a": "r | b", "b": ""})
        skeletons, _complete = minimal_source_skeletons(dtd, max_depth=6)
        assert skeletons  # at least the r[a[b]] witness


class TestNestedRelationalConsistency:
    def test_library_setting_consistent(self, library_setting):
        outcome = check_consistency_nested_relational(library_setting)
        assert outcome.consistent
        assert not outcome.culprits

    def test_company_setting_consistent(self, company_setting):
        assert check_consistency(company_setting).method == "nested-relational"
        assert check_consistency(company_setting).consistent

    def test_inconsistent_nested_relational_setting(self):
        # Every source tree has an ``a`` child (it is required), so the STD
        # always fires and forces a ``forbidden`` child below the target root,
        # which the target DTD does not allow → inconsistent.
        source_dtd = DTD("s", {"s": "a"}, {"a": ["v"]})
        target_dtd = DTD("t", {"t": "allowed", "allowed": "", "forbidden": ""},
                         {"forbidden": ["v"]})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("t[forbidden(@v=x)]", "a(@v=x)")])
        outcome = check_consistency_nested_relational(setting)
        assert not outcome.consistent
        assert len(outcome.culprits) == 1
        # The general method agrees (Theorem 4.5 is a special case of 4.1).
        assert not check_consistency_general(setting).consistent

    def test_optional_source_children_keep_the_setting_consistent(self):
        # With ``a`` optional, the empty source document has the trivial
        # solution, so the setting is consistent even though the STD head is
        # unsatisfiable in the target (the paper's notion is existential).
        source_dtd = DTD("s", {"s": "a*"}, {"a": ["v"]})
        target_dtd = DTD("t", {"t": "allowed", "allowed": "", "forbidden": ""},
                         {"forbidden": ["v"]})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("t[forbidden(@v=x)]", "a(@v=x)")])
        assert check_consistency_nested_relational(setting).consistent
        assert check_consistency_general(setting).consistent

    def test_agreement_with_general_method(self, library_setting, company_setting):
        for setting in (library_setting, company_setting):
            fast = check_consistency(setting, method="nested-relational")
            slow = check_consistency(setting, method="general")
            assert fast.consistent == slow.consistent

    def test_rejects_non_nested_relational_dtd(self):
        source_dtd = DTD("s", {"s": "(a b)*", "a": "", "b": ""})
        target_dtd = DTD("t", {"t": ""})
        setting = DataExchangeSetting(source_dtd, target_dtd, [])
        with pytest.raises(ValueError):
            check_consistency_nested_relational(setting)

    def test_distinct_variable_proviso_enforced(self):
        source_dtd = DTD("s", {"s": "a*"}, {"a": ["u", "v"]})
        target_dtd = DTD("t", {"t": "b?", "b": ""}, {"b": ["w"]})
        setting = DataExchangeSetting(source_dtd, target_dtd,
                                      [std("t[b(@w=x)]", "a(@u=x, @v=x)")])
        with pytest.raises(ValueError):
            check_consistency_nested_relational(setting)
        # The check can be bypassed explicitly.
        outcome = check_consistency_nested_relational(
            setting, require_distinct_variables=False)
        assert outcome.consistent


class TestProposition44:
    """Consistency of the Prop 4.4(b) instances coincides with satisfiability."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances_agree_with_dpll(self, seed):
        formula = random_3cnf(n_variables=4, n_clauses=6, seed=seed)
        setting = proposition_4_4.consistency_instance(formula)
        expected = dpll_satisfiable(formula) is not None
        assert check_consistency(setting).consistent is expected

    def test_unsatisfiable_formula_gives_inconsistent_setting(self):
        clauses = [tuple(v if s else -v for v, s in zip((1, 2, 3), signs))
                   for signs in itertools.product([True, False], repeat=3)]
        formula = CNFFormula.of(clauses)
        assert dpll_satisfiable(formula) is None
        setting = proposition_4_4.consistency_instance(formula)
        result = check_consistency(setting)
        assert not result.consistent and result.complete

    def test_rejects_degenerate_clauses(self):
        with pytest.raises(ValueError):
            proposition_4_4.consistency_instance(CNFFormula.of([(1, 1, 2)]))


class TestFrontDoor:
    def test_auto_dispatch(self, library_setting):
        assert check_consistency(library_setting).method == "nested-relational"
        general = check_consistency(library_setting, method="general")
        assert general.method == "general" and general.consistent

    def test_unknown_method_rejected(self, library_setting):
        with pytest.raises(ValueError):
            check_consistency(library_setting, method="magic")

    def test_unsatisfiable_source_dtd(self):
        source_dtd = DTD("s", {"s": "a", "a": "a"})
        target_dtd = DTD("t", {"t": ""})
        setting = DataExchangeSetting(source_dtd, target_dtd, [])
        result = check_consistency(setting, method="general")
        assert not result.consistent
        assert "empty" in result.detail
