"""Error-path parity: failures surface identically through every entry point.

Two failure families matter to callers:

* ``NoSolutionError`` — the *legitimate* "no solution exists" outcome:
  reported as a failed result (``has_solution`` / ``ok`` false) and raised
  only when the caller demands an answer anyway (``certain()``,
  ``contains()``, ``unwrap()``);
* ``ChaseError`` — the chase applied outside its supported class (a
  non-univocal merge with target multiplicity above one): always raised.

Both must behave identically through the functional API, a warm engine, a
result-cached engine (first *and* repeat calls — the cache must never mask
or swallow an exception) and every batch executor.
"""

import pytest

from repro import (ChaseError, DataExchangeSetting, DTD, ExchangeEngine,
                   NoSolutionError, XMLTree, certain_answers,
                   canonical_solution, std)
from repro.patterns.parse import parse_pattern
from repro.patterns.queries import pattern_query


@pytest.fixture()
def clash_setting():
    """Forcing two distinct titles into the single ``item`` slot of the
    target clashes on a constant attribute: a clean no-solution case."""
    source = DTD("db", {"db": "book*", "book": ""},
                 {"book": ["title"]})
    target = DTD("lib", {"lib": "item", "item": ""},
                 {"item": ["t"]})
    dependency = std("lib[item(@t=x)]", "db[book(@title=x)]")
    return DataExchangeSetting(source, target, [dependency])


@pytest.fixture()
def clash_tree():
    return XMLTree.build(("db", [("book", {"title": "A"}),
                                 ("book", {"title": "B"})]))


@pytest.fixture()
def non_univocal_setting():
    """Target rule ``r → a a`` is non-univocal (c = 2): merging three
    ``a``-children down to two is outside Figure 7's merge step and must
    raise ``ChaseError``."""
    source = DTD("db", {"db": "rec*", "rec": ""}, {"rec": ["v"]})
    target = DTD("r", {"r": "a a", "a": ""}, {"a": ["v"]})
    dependency = std("r[a(@v=x)]", "db[rec(@v=x)]")
    return DataExchangeSetting(source, target, [dependency])


@pytest.fixture()
def three_records():
    return XMLTree.build(("db", [("rec", {"v": "1"}), ("rec", {"v": "2"}),
                                 ("rec", {"v": "3"})]))


QUERY = pattern_query(parse_pattern("lib[item(@t=w)]"))
R_QUERY = pattern_query(parse_pattern("r[a(@v=w)]"))


class TestNoSolution:
    def test_functional_api(self, clash_setting, clash_tree):
        outcome = certain_answers(clash_setting, clash_tree, QUERY)
        assert not outcome.has_solution
        with pytest.raises(NoSolutionError):
            outcome.certain()
        with pytest.raises(NoSolutionError):
            outcome.contains(("A",))

    def test_warm_engine(self, clash_setting, clash_tree):
        engine = ExchangeEngine(clash_setting, result_cache=False)
        result = engine.certain_answers(clash_tree, QUERY)
        assert not result.ok
        assert result.detail == "the source tree has no solution"
        with pytest.raises(NoSolutionError):
            result.unwrap()

    def test_cached_engine_first_and_repeat(self, clash_setting, clash_tree):
        engine = ExchangeEngine(clash_setting)
        first = engine.certain_answers(clash_tree, QUERY)
        second = engine.certain_answers(clash_tree, QUERY)  # cache hit
        assert second.cache["result_cache_hits"] == 1
        for result in (first, second):
            assert not result.ok
            with pytest.raises(NoSolutionError) as excinfo:
                result.unwrap()
            assert "no result" in str(excinfo.value) or \
                "no solution" in str(excinfo.value)
        assert first.detail == second.detail

    def test_solve_reports_failure_not_exception(self, clash_setting,
                                                 clash_tree):
        engine = ExchangeEngine(clash_setting)
        result = engine.solve(clash_tree)
        assert not result.ok and "clash" in result.detail
        functional = canonical_solution(clash_setting, clash_tree)
        assert not functional.success and functional.failure == result.detail

    @pytest.mark.parametrize("executor,parallel", [
        ("serial", None), ("thread", 2), ("process", 2)])
    def test_batch_executors_report_identically(self, clash_setting,
                                                clash_tree, executor,
                                                parallel):
        engine = ExchangeEngine(clash_setting)
        results = engine.certain_answers_batch([clash_tree, clash_tree],
                                               QUERY, parallel=parallel,
                                               executor=executor)
        for result in results:
            assert not result.ok
            assert result.detail == "the source tree has no solution"
            with pytest.raises(NoSolutionError):
                result.unwrap()


class TestChaseError:
    def test_functional_api(self, non_univocal_setting, three_records):
        with pytest.raises(ChaseError, match="not univocal"):
            certain_answers(non_univocal_setting, three_records, R_QUERY)
        with pytest.raises(ChaseError):
            canonical_solution(non_univocal_setting, three_records)

    def test_warm_engine(self, non_univocal_setting, three_records):
        engine = ExchangeEngine(non_univocal_setting, result_cache=False)
        with pytest.raises(ChaseError, match="not univocal"):
            engine.certain_answers(three_records, R_QUERY)
        with pytest.raises(ChaseError):
            engine.solve(three_records)

    def test_cache_never_masks_or_stores_the_exception(
            self, non_univocal_setting, three_records):
        engine = ExchangeEngine(non_univocal_setting)
        for _ in range(2):  # identical on first call and on repeat
            with pytest.raises(ChaseError, match="not univocal"):
                engine.certain_answers(three_records, R_QUERY)
        summary = engine.stats_summary()
        assert summary.result_cache_entries == 0  # exceptions are not cached
        assert summary.result_cache_misses == 2   # ... and each retry recomputes

    @pytest.mark.parametrize("executor,parallel", [
        ("serial", None), ("thread", 2), ("process", 2)])
    def test_batch_executors_propagate(self, non_univocal_setting,
                                       three_records, executor, parallel):
        engine = ExchangeEngine(non_univocal_setting)
        with pytest.raises(ChaseError):
            engine.certain_answers_batch([three_records, three_records],
                                         R_QUERY, parallel=parallel,
                                         executor=executor)


class TestPreconditionErrors:
    def test_not_fully_specified_raises_everywhere(self):
        source = DTD("db", {"db": "book*", "book": ""}, {"book": ["title"]})
        target = DTD("lib", {"lib": "item*", "item": ""}, {"item": ["t"]})
        dependency = std("//item(@t=x)", "db[book(@title=x)]")
        setting = DataExchangeSetting(source, target, [dependency])
        tree = XMLTree.build(("db", [("book", {"title": "A"})]))
        with pytest.raises(ValueError, match="fully-specified"):
            certain_answers(setting, tree, QUERY)
        engine = ExchangeEngine(setting)
        for _ in range(2):  # the cache must not swallow this either
            with pytest.raises(ValueError, match="fully-specified"):
                engine.certain_answers(tree, QUERY)
