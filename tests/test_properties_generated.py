"""Property-test harness over generated scenarios (the ScenarioForge lock).

Instead of hand-written fixtures, these tests sweep hundreds of seeded
random scenarios (``repro.generators.scenario_batch``) and assert pipeline
*properties* on each:

1. **Engine/functional parity** — ``ExchangeEngine.certain_answers`` and the
   functional ``certain_answers`` return identical answer sets, solution
   flags and canonical-solution shapes for every (tree, query) pair.
2. **Consistency ↔ solve agreement** — an inconsistent setting admits no
   canonical solution for any conforming source tree, and any successful
   solve proves the setting consistent; successful solves really are
   unordered solutions (target conformance + STD satisfaction).
3. **Cache transparency** — repeating every request on the same engine hits
   the result cache and returns results indistinguishable from the first
   pass, and a cache-disabled engine agrees with a cache-enabled one.
4. **Plan/interpreter parity** — the compiled plan evaluator
   (:mod:`repro.patterns.plan`, the hot path) returns exactly the
   interpreter's assignments on every (tree, query) pair, and the plan-based
   certain answers equal the interpreted read-off from the same canonical
   solution.

The scenario count defaults to 200 and scales with the
``REPRO_GENERATED_SCENARIOS`` environment variable (the CI property job sets
it to 25 for a fast signal).  Every assertion message carries the scenario's
``describe()`` line — ``(seed, spec)`` reproduces the exact failing case via
``generate_scenario(seed)``.
"""

import os

import pytest

from repro import ExchangeEngine, certain_answers, check_consistency
from repro.analysis import verify_plan
from repro.generators import scenario_batch
from repro.patterns import assignment_key, compile_query
from repro.xmlmodel.values import is_constant

#: Harness size: seeds are derived from BATCH_SEED, so runs are identical
#: across machines for a fixed count.
SCENARIO_COUNT = int(os.environ.get("REPRO_GENERATED_SCENARIOS", "200"))
BATCH_SEED = 20260730


@pytest.fixture(scope="module")
def scenarios():
    return scenario_batch(SCENARIO_COUNT, seed=BATCH_SEED)


def test_scenario_count_meets_floor(scenarios):
    assert len(scenarios) == SCENARIO_COUNT >= 25


def test_engine_functional_parity(scenarios):
    """Property 1: the engine is a cache/batch facade, never a different
    algorithm — its answers equal the functional API's on every pair."""
    checked = 0
    for scenario in scenarios:
        engine = ExchangeEngine(scenario.setting)
        for tree in scenario.source_trees:
            for query in scenario.queries:
                functional = certain_answers(scenario.setting, tree, query)
                via_engine = engine.certain_answers(tree, query)
                context = (f"{scenario.describe()} tree={tree.fingerprint()} "
                           f"query={query.fingerprint()}")
                assert via_engine.ok == functional.has_solution, context
                assert via_engine.payload == functional.answers, context
                checked += 1
    assert checked >= SCENARIO_COUNT  # every scenario contributed pairs


def test_consistency_solve_agreement(scenarios):
    """Property 2: per-tree solve outcomes never contradict the setting-level
    consistency verdict, and produced solutions verify."""
    solved = failed = 0
    for scenario in scenarios:
        engine = ExchangeEngine(scenario.setting)
        consistency = engine.check_consistency()
        for tree in scenario.source_trees:
            result = engine.solve(tree)
            context = f"{scenario.describe()} tree={tree.fingerprint()}"
            if result.ok:
                solved += 1
                # A successful solve is a consistency witness.
                assert consistency.payload is True, context
                report = scenario.setting.solution_report(
                    tree, result.payload, ordered=False)
                assert report.is_solution, f"{context}: {report.summary()}"
            else:
                failed += 1
                assert result.detail, context  # failures carry their reason
    # The generator must exercise both outcomes, otherwise the properties
    # above are vacuous.
    assert solved > 0
    assert failed > 0


def test_cache_transparency(scenarios):
    """Property 3: the result cache changes counters, never answers."""
    hits_seen = 0
    for scenario in scenarios[:max(25, SCENARIO_COUNT // 4)]:
        cached_engine = ExchangeEngine(scenario.setting)
        uncached_engine = ExchangeEngine(scenario.setting,
                                         result_cache=False)
        for tree in scenario.source_trees:
            for query in scenario.queries:
                first = cached_engine.certain_answers(tree, query)
                second = cached_engine.certain_answers(tree, query)
                plain = uncached_engine.certain_answers(tree, query)
                context = (f"{scenario.describe()} "
                           f"tree={tree.fingerprint()} "
                           f"query={query.fingerprint()}")
                assert (first.ok, first.payload, first.strategy,
                        first.detail) == \
                    (second.ok, second.payload, second.strategy,
                     second.detail), context
                assert (plain.ok, plain.payload) == \
                    (first.ok, first.payload), context
        summary = cached_engine.stats_summary()
        assert summary.result_cache_hits >= summary.result_cache_entries > 0
        assert uncached_engine.stats_summary().result_cache_hits == 0
        hits_seen += summary.result_cache_hits
    assert hits_seen > 0


def test_plan_interpreter_parity(scenarios):
    """Property 4: compiling a query to a slot-based plan changes *how* it
    is evaluated, never *what* it returns — assignments and certain answers
    agree with the interpreter oracle on every generated pair."""
    checked = 0
    for scenario in scenarios:
        engine = ExchangeEngine(scenario.setting)
        for tree in scenario.source_trees:
            frozen = tree.freeze()
            for query in scenario.queries:
                context = (f"{scenario.describe()} tree={tree.fingerprint()} "
                           f"query={query.fingerprint()}")
                plan = compile_query(query)
                # Every swept plan is structurally sound (and, with
                # REPRO_PLAN_VERIFY=1 from conftest, was already verified
                # and stamped at compile time).
                verify_plan(plan)
                if os.environ.get("REPRO_PLAN_VERIFY") == "1":
                    assert plan.verified, context
                # Same satisfying assignments over the source tree itself.
                planned = sorted(map(assignment_key, plan.evaluate(frozen)))
                interpreted = sorted(map(assignment_key,
                                         query.evaluate(tree)))
                assert planned == interpreted, context
                # Same certain answers: the engine's plan-based pipeline vs
                # the interpreted read-off from its own canonical solution.
                via_plan = engine.certain_answers(tree, query)
                solved = engine.solve(tree)
                assert via_plan.ok == solved.ok, context
                if solved.ok:
                    order = tuple(query.free_variables())
                    oracle = {tup for tup in query.answers(solved.payload,
                                                           order)
                              if all(is_constant(value) for value in tup)}
                    assert via_plan.payload == oracle, context
                checked += 1
        # Per-setting plans are compiled at most once per query fingerprint.
        stats = engine.stats
        assert stats["plan_cache_misses"] <= len(scenario.queries), \
            scenario.describe()
    assert checked >= SCENARIO_COUNT


def test_forced_strategy_parity(scenarios, monkeypatch):
    """Tentpole lock: forcing ``REPRO_EVAL_STRATEGY`` each way, the
    structural-join evaluator returns bit-identical rows in bit-identical
    order to the bottom-up recurrence on every generated pair — and the
    full solve pipeline (chase null allocation included) produces
    fingerprint-identical canonical solutions and equal certain answers
    under either strategy.  (Generated queries are descendant-free;
    adversarial ``//``/wildcard coverage lives in ``test_join_plan.py``.)"""
    checked = 0
    for scenario in scenarios:
        for tree in scenario.source_trees:
            frozen = tree.freeze()
            for query in scenario.queries:
                context = (f"{scenario.describe()} tree={tree.fingerprint()} "
                           f"query={query.fingerprint()}")
                plan = compile_query(query)
                monkeypatch.setenv("REPRO_EVAL_STRATEGY", "join")
                join_rows = plan.rows(frozen)
                monkeypatch.setenv("REPRO_EVAL_STRATEGY", "recurrence")
                recurrence_rows = plan.rows(frozen)
                monkeypatch.delenv("REPRO_EVAL_STRATEGY")
                # Ordered equality: downstream null allocation depends on
                # row *order*, not only the row set.
                assert join_rows == recurrence_rows, context
                checked += 1
    assert checked >= SCENARIO_COUNT


def test_forced_strategy_solve_parity(scenarios, monkeypatch):
    """The end-to-end pipeline is strategy-blind: canonical solutions come
    out fingerprint-identical and certain answers equal whichever evaluator
    serves the STD source plans and the query."""
    for scenario in scenarios[:max(25, SCENARIO_COUNT // 4)]:
        for tree in scenario.source_trees:
            for query in scenario.queries:
                context = (f"{scenario.describe()} tree={tree.fingerprint()} "
                           f"query={query.fingerprint()}")
                monkeypatch.setenv("REPRO_EVAL_STRATEGY", "join")
                via_join = certain_answers(scenario.setting, tree, query)
                monkeypatch.setenv("REPRO_EVAL_STRATEGY", "recurrence")
                via_recurrence = certain_answers(scenario.setting, tree,
                                                 query)
                monkeypatch.delenv("REPRO_EVAL_STRATEGY")
                assert via_join.has_solution == \
                    via_recurrence.has_solution, context
                assert via_join.answers == via_recurrence.answers, context
                if via_join.has_solution:
                    assert via_join.canonical.fingerprint() == \
                        via_recurrence.canonical.fingerprint(), context


def test_functional_consistency_matches_engine(scenarios):
    """The engine's strategy routing returns the same verdict as the
    functional front door on every generated setting."""
    for scenario in scenarios[:max(25, SCENARIO_COUNT // 4)]:
        engine = ExchangeEngine(scenario.setting)
        functional = check_consistency(scenario.setting)
        via_engine = engine.check_consistency()
        assert via_engine.payload == functional.consistent, \
            scenario.describe()
        if scenario.profile == "nested_relational":
            assert via_engine.strategy == "nested-relational", \
                scenario.describe()
