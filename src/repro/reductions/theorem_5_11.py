"""The hardness gadget of Theorem 5.11, class STD(_, //) (Figures 3 and 4).

Theorem 5.11 shows that as soon as target patterns in STDs may be witnessed
away from the root (class ``STD(_, //)``: wildcard and descendant are still
forbidden), computing certain answers becomes coNP-complete even over simple
DTDs.  The reduction maps a 3-CNF formula ``θ`` to

* a source tree ``T_θ`` over the simple source DTD (one ``C`` node per clause
  carrying the codes of its three literals, one ``L`` node per variable
  carrying the codes of ``x`` and ``¬x``),
* a fixed data exchange setting and a fixed Boolean CTQ query ``Q``,

such that ``θ`` is satisfiable iff ``certain(Q, T_θ) = false``.

Besides the encoding this module implements the *constructive* direction of
the proof: :func:`solution_from_assignment` builds, from a truth assignment
``σ``, the solution ``T'`` described in the proof (each clause's
``H1[H2[H3]]`` chain is hung below a ``G1`` node at depth 1, 2 or 3 according
to which literal ``σ`` makes true), so that ``T' ⊭ Q`` exactly when ``σ`` is a
well-defined satisfying assignment.  The test-suite and the hardness benchmark
use this to exercise both directions of the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..patterns.parse import parse_pattern
from ..patterns.queries import Query, conjunction, exists, pattern_query
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from ..exchange.setting import DataExchangeSetting
from ..exchange.std import STD, std
from .sat import CNFFormula

__all__ = ["Theorem511Gadget", "build_gadget", "encode_formula",
           "solution_from_assignment"]


@dataclass
class Theorem511Gadget:
    """The fixed setting and query of the STD(_, //) case of Theorem 5.11."""

    setting: DataExchangeSetting
    query: Query


def build_gadget() -> Theorem511Gadget:
    """The data exchange setting ``(D_S, D_T, Σ_ST)`` and Boolean query ``Q``
    from the proof of Theorem 5.11 (case STD(_, //))."""
    source_dtd = DTD(
        root="K",
        rules={"K": "C* L*", "C": "", "L": ""},
        attributes={"C": ["f", "s", "t"], "L": ["p", "n"]},
    )
    target_dtd = DTD(
        root="K",
        rules={
            "K": "G1* L*",
            "G1": "H1* G2*",
            "H1": "H2*",
            "H2": "H3*",
            "H3": "",
            "G2": "H1* G3*",
            "G3": "H1*",
            "L": "",
        },
        attributes={
            "H1": ["l"], "H2": ["l"], "H3": ["l"], "L": ["p", "n"],
        },
    )
    stds = [
        # Every L node (a variable with its two literal codes) is copied.
        std("K[L(@p=x, @n=y)]", "K[L(@p=x, @n=y)]"),
        # Every clause forces an H1[H2[H3]] chain carrying its literal codes;
        # crucially the target pattern is *not* anchored at the root, so the
        # chain may hang at depth 1, 2 or 3 below a G1 node.
        std("H1(@l=x)[H2(@l=y)[H3(@l=z)]]", "K[C(@f=x, @s=y, @t=z)]"),
    ]
    setting = DataExchangeSetting(source_dtd, target_dtd, stds)
    query = exists(
        ["x", "y"],
        conjunction(
            pattern_query(parse_pattern("L(@p=x, @n=y)")),
            pattern_query(parse_pattern("G1[_[_[_(@l=x)]]]")),
            pattern_query(parse_pattern("G1[_[_[_(@l=y)]]]")),
        ),
    )
    return Theorem511Gadget(setting=setting, query=query)


def encode_formula(formula: CNFFormula) -> XMLTree:
    """The source tree ``T_θ`` of Figure 3."""
    if not formula.is_3cnf():
        raise ValueError("the Theorem 5.11 encoding requires a 3-CNF formula")
    codes = formula.literal_codes()
    tree = XMLTree("K", ordered=True)
    for clause in formula.clauses:
        first, second, third = clause
        tree.add_child(tree.root, "C", {
            "f": codes[first], "s": codes[second], "t": codes[third]})
    for variable in formula.variables:
        tree.add_child(tree.root, "L", {
            "p": codes[variable], "n": codes[-variable]})
    return tree


def solution_from_assignment(formula: CNFFormula,
                             assignment: Dict[int, bool]) -> XMLTree:
    """The candidate solution ``T'`` built from a truth assignment ``σ``
    (the (⇒) direction of the proof, Figure 4).

    For each clause, the ``H1[H2[H3]]`` chain is attached so that the literal
    made true by ``σ`` (preferring the third, then second, then first, as in
    the proof) ends up as the value of ``@l`` of a great-grandchild of the
    ``G1`` node.  If ``σ`` satisfies ``θ`` the result is a solution for
    ``T_θ`` on which the query ``Q`` is false.
    """
    codes = formula.literal_codes()
    tree = XMLTree("K", ordered=False)
    # Copy the variable nodes (first STD).
    for variable in formula.variables:
        tree.add_child(tree.root, "L", {
            "p": codes[variable], "n": codes[-variable]})
    for clause in formula.clauses:
        first, second, third = clause
        g1 = tree.add_child(tree.root, "G1")
        truths = [assignment.get(abs(lit), False) == (lit > 0)
                  for lit in (first, second, third)]
        if truths[2]:
            parent = g1                                    # Figure 4 (c)
        elif truths[1]:
            g2 = tree.add_child(g1, "G2")                  # Figure 4 (d)
            parent = g2
        else:
            # Figure 4 (e); also the fall-back when the clause is unsatisfied
            # (the construction still yields a tree, just not a Q-free one).
            g2 = tree.add_child(g1, "G2")
            g3 = tree.add_child(g2, "G3")
            parent = g3
        h1 = tree.add_child(parent, "H1", {"l": codes[first]})
        h2 = tree.add_child(h1, "H2", {"l": codes[second]})
        tree.add_child(h2, "H3", {"l": codes[third]})
    return tree
