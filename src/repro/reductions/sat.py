"""Propositional 3-CNF substrate for the paper's hardness reductions.

The intractability results of the paper (Theorem 5.11, Lemmas 6.20/6.21,
Proposition 4.4 b) are proved by reductions from 3-SAT: a 3-CNF formula ``θ``
is encoded as a source tree ``T_θ`` and the encoded question becomes
``certain(Q, T_θ) = false`` (or a consistency question).  To *run* those
reductions as workloads we need the CNF machinery itself: a formula
representation, a literal-numbering scheme matching the paper's encoding, a
complete DPLL solver (the ground truth), and a random instance generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Literal", "Clause", "CNFFormula", "dpll_satisfiable", "random_3cnf"]

#: A literal: positive integer ``v`` for variable ``x_v``, ``-v`` for ``¬x_v``.
Literal = int

#: A clause: a tuple of literals (disjunction).
Clause = Tuple[Literal, ...]


@dataclass(frozen=True)
class CNFFormula:
    """A CNF formula over variables ``1 … n_variables``."""

    clauses: Tuple[Clause, ...]

    @staticmethod
    def of(clauses: Iterable[Sequence[Literal]]) -> "CNFFormula":
        return CNFFormula(tuple(tuple(clause) for clause in clauses))

    @property
    def variables(self) -> List[int]:
        """Variables occurring in the formula, in increasing order."""
        return sorted({abs(lit) for clause in self.clauses for lit in clause})

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    def is_3cnf(self) -> bool:
        return all(len(clause) == 3 for clause in self.clauses)

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """Truth value of the formula under a (total) assignment."""
        for clause in self.clauses:
            if not any(assignment.get(abs(lit), False) == (lit > 0)
                       for lit in clause):
                return False
        return True

    # -- the paper's literal numbering ------------------------------------ #

    def literal_codes(self) -> Dict[Literal, str]:
        """The injective numbering of literals used by the reductions: the
        paper assigns ``x_i → 2i-1`` and ``¬x_i → 2i`` (as strings, since the
        encodings store them in attribute values)."""
        codes: Dict[Literal, str] = {}
        for rank, variable in enumerate(self.variables, start=1):
            codes[variable] = str(2 * rank - 1)
            codes[-variable] = str(2 * rank)
        return codes

    def __str__(self) -> str:
        def lit(literal: Literal) -> str:
            return f"x{literal}" if literal > 0 else f"¬x{-literal}"
        return " ∧ ".join("(" + " ∨ ".join(lit(term) for term in clause) + ")"
                          for clause in self.clauses)


def dpll_satisfiable(formula: CNFFormula) -> Optional[Dict[int, bool]]:
    """A complete DPLL solver: returns a satisfying assignment or ``None``.

    Unit propagation and pure-literal elimination plus branching on the most
    frequent variable — entirely adequate for the reduction-sized instances
    used in tests and benchmarks.
    """
    clauses = [frozenset(clause) for clause in formula.clauses]
    assignment: Dict[int, bool] = {}

    def solve(active: List[FrozenSet[int]], current: Dict[int, bool]) -> Optional[Dict[int, bool]]:
        active = list(active)
        current = dict(current)
        changed = True
        while changed:
            changed = False
            simplified: List[FrozenSet[int]] = []
            for clause in active:
                satisfied = False
                remaining: Set[int] = set()
                for lit in clause:
                    var, positive = abs(lit), lit > 0
                    if var in current:
                        if current[var] == positive:
                            satisfied = True
                            break
                    else:
                        remaining.add(lit)
                if satisfied:
                    continue
                if not remaining:
                    return None
                if len(remaining) == 1:
                    lit = next(iter(remaining))
                    current[abs(lit)] = lit > 0
                    changed = True
                else:
                    simplified.append(frozenset(remaining))
            active = simplified
        if not active:
            # Complete with arbitrary values for untouched variables.
            result = dict(current)
            for variable in formula.variables:
                result.setdefault(variable, False)
            return result
        counts: Dict[int, int] = {}
        for clause in active:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        variable = max(counts, key=counts.get)
        for value in (True, False):
            attempt = dict(current)
            attempt[variable] = value
            result = solve(active, attempt)
            if result is not None:
                return result
        return None

    return solve(clauses, assignment)


def random_3cnf(n_variables: int, n_clauses: int,
                seed: Optional[int] = None) -> CNFFormula:
    """A random 3-CNF formula (three distinct variables per clause)."""
    rng = random.Random(seed)
    clauses: List[Clause] = []
    for _ in range(n_clauses):
        variables = rng.sample(range(1, n_variables + 1), k=min(3, n_variables))
        while len(variables) < 3:
            variables.append(rng.randint(1, n_variables))
        clause = tuple(v if rng.random() < 0.5 else -v for v in variables)
        clauses.append(clause)
    return CNFFormula(tuple(clauses))
