"""The hardness gadget of Lemma 6.20 (Figures 9 and 10).

Lemma 6.20: any admissible class containing a regular expression ``r`` with
``c(r) ≥ 2`` is strongly coNP-complete for CTQ queries.  The reduction picks a
symbol ``a ∈ alph(r)`` and a string ``w ∈ fixed_a(r)`` with ``k = #a(w) ≥ 2``
and builds, from a 3-CNF formula ``θ``,

* a source tree ``T_θ`` over a simple source DTD (clauses, variables, one
  ``H`` node carrying the truth-value codes, and ``I_1 … I_k`` / ``J_1 … J_ℓ``
  id-providers),
* a fully-specified setting whose target DTD embeds ``r`` as the content
  model of ``G``, and
* a Boolean CTQ query ``Q``,

such that ``θ`` is satisfiable iff ``certain(Q, T_θ) = false``: the third STD
forces ``k + 2`` children of type ``a`` under each ``G`` node, but ``w`` being
in ``fixed_a(r)`` means any solution must merge the two "literal-carrying"
``a`` nodes into the ``k`` id-carrying ones, thereby choosing truth values.

The module also implements the proof's constructive direction
(:func:`solution_from_assignment`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..patterns.formula import TreePattern, node
from ..patterns.queries import Query, conjunction, exists, pattern_query
from ..regexlang.ast import Regex
from ..regexlang.parse import parse_regex
from ..regexlang.univocal import analyse
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import NullFactory
from ..exchange.setting import DataExchangeSetting
from ..exchange.std import STD
from .sat import CNFFormula

__all__ = ["Lemma620Gadget", "build_gadget", "encode_formula",
           "solution_from_assignment"]


@dataclass
class Lemma620Gadget:
    """The setting, query and combinatorial data of the Lemma 6.20 reduction."""

    setting: DataExchangeSetting
    query: Query
    regex: Regex
    pivot: str                     # the symbol ``a``
    k: int                         # ``#a(w) = c_a(r) ≥ 2``
    #: the non-pivot part of ``w`` as a flat list ``a_1 … a_ℓ`` (symbols may repeat)
    tail: List[str]
    witness_vector: Dict[str, int]


def build_gadget(regex) -> Lemma620Gadget:
    """Build the Lemma 6.20 setting and query for a regular expression with
    ``c(r) ≥ 2`` (pass the expression or its textual form)."""
    expr = regex if isinstance(regex, Regex) else parse_regex(str(regex))
    analysis = analyse(expr)
    pivot = None
    for symbol in sorted(expr.alphabet()):
        if analysis.c_a(symbol) >= 2:
            pivot = symbol
            break
    if pivot is None:
        raise ValueError(f"c({expr}) < 2; the Lemma 6.20 gadget does not apply")
    witness = analysis.fixed_witness(pivot)
    assert witness is not None
    k = witness[pivot]
    tail: List[str] = []
    for symbol in sorted(witness):
        if symbol == pivot:
            continue
        tail.extend([symbol] * witness[symbol])
    ell = len(tail)

    # ---------------- source DTD and target DTD ---------------- #
    i_types = [f"I{i}" for i in range(1, k + 1)]
    j_types = [f"J{j}" for j in range(1, ell + 1)]
    source_rules = {"B": " ".join(["C*", "H*", "L*"]
                                  + [f"{t}*" for t in i_types + j_types])}
    source_attrs = {"C": ["f", "s", "t"], "H": ["t", "f"], "L": ["p", "n"]}
    for t in i_types + j_types:
        source_rules[t] = ""
        source_attrs[t] = ["id"]
    source_rules.update({"C": "", "H": "", "L": ""})
    source_dtd = DTD("B", source_rules, source_attrs)

    target_rules = {"B": "C* H* G*", "G": expr, "C": "", "H": ""}
    target_attrs: Dict[str, List[str]] = {"C": ["f", "s", "t"], "H": ["f"]}
    for symbol in sorted(expr.alphabet()):
        target_rules.setdefault(symbol, "")
        if symbol == pivot:
            target_attrs[symbol] = ["id", "e", "l"]
        else:
            target_attrs[symbol] = ["id"]
    target_dtd = DTD("B", target_rules, target_attrs)

    # ---------------- the three STDs ---------------- #
    copy_clause = STD(
        target=node("B", None, node("C", {"f": "$x", "s": "$y", "t": "$z"})),
        source=node("B", None, node("C", {"f": "$x", "s": "$y", "t": "$z"})),
    )
    copy_h = STD(
        target=node("B", None, node("H", {"f": "$x"})),
        source=node("B", None, node("H", {"f": "$x"})),
    )
    # Third STD: forces k + 2 children of type ``pivot`` plus the tail under G.
    g_children: List[TreePattern] = []
    g_children.append(node(pivot, {"id": "$u1", "e": "$x"}))
    for i in range(2, k + 1):
        g_children.append(node(pivot, {"id": f"$u{i}", "e": "$xp"}))
    for j, symbol in enumerate(tail, start=1):
        g_children.append(node(symbol, {"id": f"$v{j}"}))
    g_children.append(node(pivot, {"l": "$y"}))
    g_children.append(node(pivot, {"l": "$yp"}))
    target_pattern = node("B", None, node("G", None, *g_children))

    source_children: List[TreePattern] = [
        node("H", {"t": "$x", "f": "$xp"}),
        node("L", {"p": "$y", "n": "$yp"}),
    ]
    for i in range(1, k + 1):
        source_children.append(node(f"I{i}", {"id": f"$u{i}"}))
    for j in range(1, ell + 1):
        source_children.append(node(f"J{j}", {"id": f"$v{j}"}))
    source_pattern = node("B", None, *source_children)
    force_g = STD(target=target_pattern, source=source_pattern)

    setting = DataExchangeSetting(source_dtd, target_dtd,
                                  [copy_clause, copy_h, force_g])

    # ---------------- the Boolean CTQ query ---------------- #
    query = exists(
        ["x", "y", "z", "u"],
        conjunction(
            pattern_query(node("B", None,
                               node("C", {"f": "$x", "s": "$y", "t": "$z"}),
                               node("H", {"f": "$u"}),
                               node("G", None, node(pivot, {"e": "$u", "l": "$x"})),
                               node("G", None, node(pivot, {"e": "$u", "l": "$y"})),
                               node("G", None, node(pivot, {"e": "$u", "l": "$z"})))),
        ),
    )
    return Lemma620Gadget(setting=setting, query=query, regex=expr,
                          pivot=pivot, k=k, tail=tail,
                          witness_vector=dict(witness))


def encode_formula(gadget: Lemma620Gadget, formula: CNFFormula) -> XMLTree:
    """The source tree ``T_θ`` of Figure 9."""
    if not formula.is_3cnf():
        raise ValueError("the Lemma 6.20 encoding requires a 3-CNF formula")
    codes = formula.literal_codes()
    tree = XMLTree("B", ordered=True)
    for clause in formula.clauses:
        first, second, third = clause
        tree.add_child(tree.root, "C", {
            "f": codes[first], "s": codes[second], "t": codes[third]})
    tree.add_child(tree.root, "H", {"t": "1", "f": "0"})
    for variable in formula.variables:
        tree.add_child(tree.root, "L", {
            "p": codes[variable], "n": codes[-variable]})
    for i in range(1, gadget.k + 1):
        tree.add_child(tree.root, f"I{i}", {"id": f"i{i}"})
    for j in range(1, len(gadget.tail) + 1):
        tree.add_child(tree.root, f"J{j}", {"id": f"j{j}"})
    return tree


def solution_from_assignment(gadget: Lemma620Gadget, formula: CNFFormula,
                             assignment: Dict[int, bool]) -> XMLTree:
    """The candidate solution ``T'`` built from a truth assignment ``σ``
    (the (⇒) direction of the proof of Lemma 6.20, Figure 10).

    For every variable ``x`` a ``G`` node realising the witness string ``w``
    is created; the code of the literal made *true* by ``σ`` is placed as the
    ``@l`` attribute of the first ``pivot`` child (the one with ``@e = 1``)
    and the code of the false literal on the second one (``@e = 0``).
    """
    codes = formula.literal_codes()
    nulls = NullFactory(start=500_000)
    tree = XMLTree("B", ordered=False)
    for clause in formula.clauses:
        first, second, third = clause
        tree.add_child(tree.root, "C", {
            "f": codes[first], "s": codes[second], "t": codes[third]})
    tree.add_child(tree.root, "H", {"f": "0"})
    for variable in formula.variables:
        g_node = tree.add_child(tree.root, "G")
        true_literal = variable if assignment.get(variable, False) else -variable
        false_literal = -true_literal
        pivot_attrs = []
        pivot_attrs.append({"id": "i1", "e": "1", "l": codes[true_literal]})
        if gadget.k >= 2:
            pivot_attrs.append({"id": "i2", "e": "0", "l": codes[false_literal]})
        for i in range(3, gadget.k + 1):
            pivot_attrs.append({"id": f"i{i}", "e": "0", "l": nulls.fresh()})
        for attrs in pivot_attrs:
            tree.add_child(g_node, gadget.pivot, attrs)
        for j, symbol in enumerate(gadget.tail, start=1):
            tree.add_child(g_node, symbol, {"id": f"j{j}"})
    return tree
