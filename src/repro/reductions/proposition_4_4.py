"""Consistency hardness instances of Proposition 4.4 (b).

Proposition 4.4 (b) proves NP-completeness of consistency for a fixed
non-recursive, star-free target DTD and source DTDs whose rules are all of the
form ``ℓ → ℓ_1 | … | ℓ_m`` or ``ℓ → ε``, with path-pattern STDs.  The
reduction (the all-existential case of the QBF reduction in Appendix B.1)
encodes a 3-CNF formula ``θ``:

* the source DTD is a chain of binary choices ``x_i^+ | x_i^-`` — each
  conforming source tree is a truth assignment;
* for every clause, an STD fires on the assignment that *falsifies* it and
  forces the element type ``f`` in the target, which the (fixed) target DTD
  forbids;
* hence the setting is consistent iff some assignment falsifies no clause,
  i.e. iff ``θ`` is satisfiable.
"""

from __future__ import annotations

from typing import Dict, List

from ..patterns.formula import DescendantPattern, TreePattern, node
from ..xmlmodel.dtd import DTD
from ..exchange.setting import DataExchangeSetting
from ..exchange.std import STD
from .sat import CNFFormula

__all__ = ["consistency_instance"]


def consistency_instance(formula: CNFFormula) -> DataExchangeSetting:
    """Build the Proposition 4.4 (b) consistency instance for a 3-CNF formula.

    The returned setting is consistent iff ``formula`` is satisfiable.
    """
    variables = formula.variables
    if not variables:
        raise ValueError("the formula must mention at least one variable")
    if any(len({abs(lit) for lit in clause}) != len(clause)
           for clause in formula.clauses):
        raise ValueError(
            "the Proposition 4.4 encoding requires clauses over pairwise "
            "distinct variables (the standard 3-SAT normal form)")

    def pos(var: int) -> str:
        return f"x{var}p"

    def neg(var: int) -> str:
        return f"x{var}n"

    rules: Dict[str, str] = {}
    rules["r"] = f"{pos(variables[0])} | {neg(variables[0])}"
    for index, var in enumerate(variables):
        if index + 1 < len(variables):
            nxt = variables[index + 1]
            content = f"{pos(nxt)} | {neg(nxt)}"
        else:
            content = ""
        rules[pos(var)] = content
        rules[neg(var)] = content
    source_dtd = DTD("r", rules)

    # Fixed target DTD: just the root, so any STD head mentioning ``f`` is
    # unsatisfiable in the target.
    target_dtd = DTD("rt", {"rt": ""})

    stds: List[STD] = []
    head = node("rt", None, node("f"))
    for clause in formula.clauses:
        # The assignment falsifying the clause sets every literal to false.
        ordered = sorted(clause, key=abs)
        falsifying = [neg(lit) if lit > 0 else pos(-lit) for lit in ordered]
        positions = [variables.index(abs(lit)) + 1 for lit in ordered]
        body = _path_pattern(falsifying, positions, len(variables))
        stds.append(STD(target=head, source=body))
    return DataExchangeSetting(source_dtd, target_dtd, stds)


def _path_pattern(labels: List[str], depths: List[int], n_variables: int) -> TreePattern:
    """The path pattern ``r[…]`` hitting the given labels at the given depths,
    using descendant ``//`` to skip over intermediate levels (as in the
    Appendix B.1 construction)."""
    pattern: TreePattern = node(labels[-1])
    for index in range(len(labels) - 1, 0, -1):
        gap = depths[index] - depths[index - 1]
        if gap > 1:
            pattern = DescendantPattern(pattern)
        pattern = node(labels[index - 1], None, pattern)
    if depths[0] > 1:
        pattern = DescendantPattern(pattern)
    return node("r", None, pattern)
