"""The paper's hardness reductions, runnable as workloads.

* :mod:`repro.reductions.sat` — 3-CNF formulas, DPLL, random instances;
* :mod:`repro.reductions.theorem_5_11` — the STD(_, //) certain-answer
  hardness gadget (Figures 3–4);
* :mod:`repro.reductions.lemma_6_20` — the ``c(r) ≥ 2`` dichotomy gadget
  (Figures 9–10);
* :mod:`repro.reductions.proposition_4_4` — the consistency NP-hardness
  instances (fixed star-free target DTD, disjunctive source DTD).
"""

from .sat import CNFFormula, dpll_satisfiable, random_3cnf
from . import lemma_6_20, proposition_4_4, theorem_5_11

__all__ = [
    "CNFFormula", "dpll_satisfiable", "random_3cnf",
    "theorem_5_11", "lemma_6_20", "proposition_4_4",
]
