"""Regular expressions over element types, NFAs, Parikh images and univocality.

This subpackage is the string-language substrate used by DTDs
(:mod:`repro.xmlmodel.dtd`), the tree automata (:mod:`repro.automata`), the
chase (:mod:`repro.exchange.chase`) and the dichotomy classifier
(:mod:`repro.exchange.dichotomy`).
"""

from .ast import (Concat, Empty, Epsilon, Regex, Star, Symbol, Union,
                  concat, empty, epsilon, optional, plus, star, sym, union)
from .nfa import DFA, NFA, nfa_to_dfa, regex_to_dfa, regex_to_nfa
from .parikh import (CountVector, LinearSet, SemilinearSet, SemilinearSizeError,
                     in_permutation_language, minimal_extensions, parikh_vector,
                     semilinear_of)
from .parse import RegexParseError, parse_regex
from .univocal import (RegexAnalysis, analyse, c_value, is_simple_regex,
                       is_univocal, max_repairs, preorder_leq, repairs)

__all__ = [
    "Regex", "Epsilon", "Empty", "Symbol", "Concat", "Union", "Star",
    "epsilon", "empty", "sym", "concat", "union", "star", "plus", "optional",
    "parse_regex", "RegexParseError",
    "NFA", "DFA", "regex_to_nfa", "nfa_to_dfa", "regex_to_dfa",
    "CountVector", "LinearSet", "SemilinearSet", "SemilinearSizeError",
    "parikh_vector", "semilinear_of", "in_permutation_language",
    "minimal_extensions",
    "RegexAnalysis", "analyse", "c_value", "is_univocal", "is_simple_regex",
    "repairs", "max_repairs", "preorder_leq",
]
