"""Regular expressions over element types (paper, Section 2).

DTD content models are regular expressions built by the grammar

    e ::= ε | ℓ | e|e | ee | e*          (ℓ an element type)

with the standard shorthands ``e+`` for ``ee*`` and ``e?`` for ``ε|e``.
This module provides the AST, constructors, and basic structural measures
(``alph(r)``, the paper's norm ``‖r‖`` defined before Lemma 5.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator

__all__ = [
    "Regex", "Epsilon", "Empty", "Symbol", "Concat", "Union", "Star",
    "epsilon", "empty", "sym", "concat", "union", "star", "plus", "optional",
]


class Regex:
    """Base class for regular-expression AST nodes."""

    def alphabet(self) -> FrozenSet[str]:
        """``alph(r)``: the set of element types mentioned in the expression."""
        raise NotImplementedError

    def norm(self) -> int:
        """The paper's ``‖r‖``: ε and ∅ count 0, symbols count 1,
        union/concatenation add, and ``‖r*‖ = ‖r‖``."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """True iff ε belongs to the language of the expression."""
        raise NotImplementedError

    def subexpressions(self) -> Iterator["Regex"]:
        """Iterate over all subexpressions (including ``self``)."""
        yield self

    # The AST is treated as immutable; concrete classes are dataclasses with
    # ``frozen=True`` so expressions can be used as dict keys and set members.

    def __or__(self, other: "Regex") -> "Regex":
        return union(self, other)

    def __add__(self, other: "Regex") -> "Regex":
        return concat(self, other)


@dataclass(frozen=True)
class Epsilon(Regex):
    """The expression ε (only the empty string)."""

    def alphabet(self) -> FrozenSet[str]:
        return frozenset()

    def norm(self) -> int:
        return 0

    def nullable(self) -> bool:
        return True

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Empty(Regex):
    """The empty language ∅ (used internally by DTD trimming, Lemma 2.2)."""

    def alphabet(self) -> FrozenSet[str]:
        return frozenset()

    def norm(self) -> int:
        return 0

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True)
class Symbol(Regex):
    """A single element type ℓ."""

    name: str

    def alphabet(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def norm(self) -> int:
        return 1

    def nullable(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Concat(Regex):
    """Concatenation ``left · right``."""

    left: Regex
    right: Regex

    def alphabet(self) -> FrozenSet[str]:
        return self.left.alphabet() | self.right.alphabet()

    def norm(self) -> int:
        return self.left.norm() + self.right.norm()

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def subexpressions(self) -> Iterator[Regex]:
        yield self
        yield from self.left.subexpressions()
        yield from self.right.subexpressions()

    def __str__(self) -> str:
        return f"{self._wrap(self.left)} {self._wrap(self.right)}"

    @staticmethod
    def _wrap(expr: Regex) -> str:
        if isinstance(expr, Union):
            return f"({expr})"
        return str(expr)


@dataclass(frozen=True)
class Union(Regex):
    """Alternation ``left | right``."""

    left: Regex
    right: Regex

    def alphabet(self) -> FrozenSet[str]:
        return self.left.alphabet() | self.right.alphabet()

    def norm(self) -> int:
        return self.left.norm() + self.right.norm()

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def subexpressions(self) -> Iterator[Regex]:
        yield self
        yield from self.left.subexpressions()
        yield from self.right.subexpressions()

    def __str__(self) -> str:
        return f"{self.left}|{self.right}"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star ``inner*``."""

    inner: Regex

    def alphabet(self) -> FrozenSet[str]:
        return self.inner.alphabet()

    def norm(self) -> int:
        return self.inner.norm()

    def nullable(self) -> bool:
        return True

    def subexpressions(self) -> Iterator[Regex]:
        yield self
        yield from self.inner.subexpressions()

    def __str__(self) -> str:
        inner = str(self.inner)
        if isinstance(self.inner, (Symbol, Epsilon, Empty)):
            return f"{inner}*"
        return f"({inner})*"


# --------------------------------------------------------------------- #
# Smart constructors (light simplification keeps automata small)
# --------------------------------------------------------------------- #

def epsilon() -> Regex:
    """The expression ε."""
    return Epsilon()


def empty() -> Regex:
    """The empty language ∅."""
    return Empty()


def sym(name: str) -> Regex:
    """A single element-type symbol."""
    return Symbol(name)


def concat(*parts: Regex) -> Regex:
    """Concatenation of any number of expressions (ε and ∅ simplified away)."""
    result: Regex = Epsilon()
    for part in parts:
        if isinstance(part, Empty) or isinstance(result, Empty):
            return Empty()
        if isinstance(part, Epsilon):
            continue
        if isinstance(result, Epsilon):
            result = part
        else:
            result = Concat(result, part)
    return result


def union(*parts: Regex) -> Regex:
    """Union of any number of expressions (∅ simplified away)."""
    live = [p for p in parts if not isinstance(p, Empty)]
    if not live:
        return Empty()
    result = live[0]
    for part in live[1:]:
        result = Union(result, part)
    return result


def star(inner: Regex) -> Regex:
    """Kleene star (``∅* = ε* = ε``)."""
    if isinstance(inner, (Empty, Epsilon)):
        return Epsilon()
    if isinstance(inner, Star):
        return inner
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """``e+`` as the paper's shorthand for ``e e*``."""
    return concat(inner, star(inner))


def optional(inner: Regex) -> Regex:
    """``e?`` as the paper's shorthand for ``ε | e``."""
    if inner.nullable():
        return inner
    return union(epsilon(), inner)
