"""Univocal regular expressions (paper, Section 6 / Definition 6.9).

The dichotomy theorem (Theorem 6.2) classifies data exchange settings by the
class of regular expressions used in the *target* DTD: settings whose target
content models are all *univocal* admit polynomial-time certain-answer
computation, all other admissible classes are strongly coNP-complete.

A regular expression ``r`` is **univocal** iff

1. ``c(r) ≤ 1``, where ``c(r) = max_a c_a(r)`` and ``c_a(r)`` is the largest
   number of ``a``'s in a string of ``fixed_a(r)`` (strings of ``π(r)`` whose
   ``a``-count cannot be increased by any ⪯-extension inside ``π(r)``), and
2. for every string ``w`` with ``rep(w, r) ≠ ∅`` the set of possible repairs
   ``rep(w, r)`` has a maximum with respect to the preorder ``⊑_w``.

This module computes, exactly and from the semilinear representation of
``π(r)`` (:mod:`repro.regexlang.parikh`):

* ``fixed_a`` membership, ``c_a(r)`` and ``c(r)`` (Lemma 6.8 guarantees the
  latter are finite; we use the linear-set analysis described below),
* ``min_ext(w, r)``, ``rep(w, r)`` and the ``⊑_w`` maxima (Section 6.1),
* the univocality test itself.

Deciding condition 2 quantifies over *all* strings ``w``.  The paper reduces
it to Presburger arithmetic (Proposition 6.10) without giving complexity
bounds; we check it for all Parikh vectors with support in ``alph(r)`` and
counts up to a bound derived from the semilinear representation (every base
and period entry plus a safety margin), which is exact for the expression
classes exercised by the paper (simple and nested-relational expressions are
recognised directly and are always univocal).  The bound can be raised by the
caller.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional

from .ast import Epsilon, Regex, Star, Symbol, Union
from .parikh import CountVector, parikh_vector, semilinear_of

__all__ = [
    "RegexAnalysis", "analyse", "c_value", "is_univocal", "is_simple_regex",
    "repairs", "max_repairs", "preorder_leq",
]


def is_simple_regex(expr: Regex) -> bool:
    """Simple regular expressions (Section 5.3): ``ε`` or ``(a_1|…|a_n)*``
    with pairwise distinct symbols.  Every simple expression is univocal."""
    if isinstance(expr, Epsilon):
        return True
    if isinstance(expr, Star):
        symbols = _union_of_symbols(expr.inner)
        return symbols is not None and len(symbols) == len(set(symbols))
    return False


def _union_of_symbols(expr: Regex) -> Optional[List[str]]:
    if isinstance(expr, Symbol):
        return [expr.name]
    if isinstance(expr, Union):
        left = _union_of_symbols(expr.left)
        right = _union_of_symbols(expr.right)
        if left is None or right is None:
            return None
        return left + right
    return None


# --------------------------------------------------------------------- #
# The ⊑_w preorder (Section 6.1)
# --------------------------------------------------------------------- #

def preorder_leq(w1: Mapping[str, int], w2: Mapping[str, int],
                 w: Mapping[str, int]) -> bool:
    """``w1 ⊑_w w2``: (1) ``#b(w2) ≥ min(#b(w1), #b(w))`` for all ``b ∈ alph(w)``
    and (2) ``alph(w2) \\ alph(w) ⊆ alph(w1) \\ alph(w)``."""
    alph_w = {s for s, c in w.items() if c}
    for symbol in alph_w:
        if w2.get(symbol, 0) < min(w1.get(symbol, 0), w[symbol]):
            return False
    extra_w2 = {s for s, c in w2.items() if c} - alph_w
    extra_w1 = {s for s, c in w1.items() if c} - alph_w
    return extra_w2 <= extra_w1


class RegexAnalysis:
    """Bundles the semilinear representation of ``π(r)`` with the univocality
    machinery, so that a DTD rule analysed once can be reused by the chase."""

    def __init__(self, expr: Regex, univocality_bound: Optional[int] = None) -> None:
        self.expr = expr
        self.semilinear = semilinear_of(expr)
        self.alphabet = sorted(expr.alphabet())
        self._bound = univocality_bound
        self._c_values: Dict[str, int] = {}
        self._univocal: Optional[bool] = None

    # -- π(r) membership ------------------------------------------------ #

    def permutation_contains(self, word_or_vector) -> bool:
        """Membership in ``π(r)`` of a word (sequence) or a Parikh vector."""
        vector = self._as_vector(word_or_vector)
        return self.semilinear.contains(vector)

    @staticmethod
    def _as_vector(word_or_vector) -> CountVector:
        if isinstance(word_or_vector, Mapping):
            return {s: c for s, c in word_or_vector.items() if c}
        return parikh_vector(word_or_vector)

    # -- fixed_a / c_a / c ----------------------------------------------- #

    def c_a(self, symbol: str) -> int:
        """``c_a(r)`` of Lemma 6.8 (0 when ``fixed_a(r)`` is empty)."""
        if symbol in self._c_values:
            return self._c_values[symbol]
        best = 0
        for ls in self.semilinear.linear_sets:
            periods = ls.period_vectors()
            if any(p.get(symbol, 0) for p in periods):
                continue  # every member can still gain more of ``symbol``
            if self._has_fixed_member(ls, symbol):
                best = max(best, ls.base_vector().get(symbol, 0))
        self._c_values[symbol] = best
        return best

    def _has_fixed_member(self, ls, symbol: str) -> bool:
        """Does the (symbol-bounded) linear set contain a member of
        ``fixed_symbol(r)``?

        A member ``v`` fails to be fixed iff some linear set of ``π(r)``
        contains ``v' ≥ v`` with strictly more occurrences of ``symbol``.
        Taking the period multiplicities of ``ls`` arbitrarily large produces
        the hardest-to-dominate member, and domination of that member reduces
        to period-coverage conditions (see the module docstring of
        :mod:`repro.regexlang.parikh`).
        """
        base = ls.base_vector()
        unbounded = set()
        for period in ls.period_vectors():
            unbounded |= {s for s, c in period.items() if c}
        required = {s: c for s, c in base.items() if c and s not in unbounded}
        required[symbol] = base.get(symbol, 0) + 1
        for other in self.semilinear.linear_sets:
            other_base = other.base_vector()
            other_periods = other.period_vectors()
            covers_unbounded = all(
                any(p.get(s, 0) for p in other_periods) for s in unbounded
            )
            if not covers_unbounded:
                continue
            covers_required = True
            for sym, count in required.items():
                deficit = count - other_base.get(sym, 0)
                if deficit > 0 and not any(p.get(sym, 0) for p in other_periods):
                    covers_required = False
                    break
            if covers_required:
                return False
        return True

    def c_value(self) -> int:
        """``c(r) = max_a c_a(r)`` over ``alph(r)``."""
        if not self.alphabet:
            return 0
        return max(self.c_a(symbol) for symbol in self.alphabet)

    def fixed_witness(self, symbol: str) -> Optional[CountVector]:
        """A concrete Parikh vector ``w ∈ fixed_symbol(r)`` with
        ``#symbol(w) = c_symbol(r)``, or ``None`` when ``fixed_symbol(r)`` is
        empty.  Used by the Lemma 6.20 hardness gadget, which needs an actual
        string ``w = a^k a_1 … a_ℓ`` of ``fixed_a(r)``.

        The witness is the base of an undominated symbol-bounded linear set,
        pumped on all its periods often enough that no other linear set can
        dominate it with a strictly larger ``symbol`` count.
        """
        target_count = self.c_a(symbol)
        if target_count == 0 and not any(
                ls.base_vector().get(symbol, 0) == 0 and self._has_fixed_member(ls, symbol)
                and not any(p.get(symbol, 0) for p in ls.period_vectors())
                for ls in self.semilinear.linear_sets):
            return None
        pump = 1 + max((count for ls in self.semilinear.linear_sets
                        for count in ls.base_vector().values()), default=0)
        for ls in self.semilinear.linear_sets:
            if any(p.get(symbol, 0) for p in ls.period_vectors()):
                continue
            if ls.base_vector().get(symbol, 0) != target_count:
                continue
            if not self._has_fixed_member(ls, symbol):
                continue
            witness = dict(ls.base_vector())
            for period in ls.period_vectors():
                for sym, count in period.items():
                    witness[sym] = witness.get(sym, 0) + pump * count
            return {s: c for s, c in witness.items() if c}
        return None

    # -- rep(w, r) and its maxima ---------------------------------------- #

    def min_ext(self, w: Mapping[str, int]) -> List[CountVector]:
        """``min_ext(w, r)``: ⪯-minimal members of ``π(r)`` dominating ``w``."""
        return self.semilinear.minimal_ge(w)

    def repairs(self, w) -> List[CountVector]:
        """``rep(w, r)``: union of ``min_ext(w', r)`` over all ``w' ⪯ w`` with
        ``alph(w') = alph(w)`` (Section 6.1)."""
        vector = self._as_vector(w)
        support = sorted(s for s, c in vector.items() if c)
        if not support:
            return self.min_ext({})
        ranges = [range(1, vector[s] + 1) for s in support]
        collected: List[CountVector] = []
        seen = set()
        for counts in itertools.product(*ranges):
            sub = dict(zip(support, counts))
            for ext in self.min_ext(sub):
                key = tuple(sorted(ext.items()))
                if key not in seen:
                    seen.add(key)
                    collected.append(ext)
        return collected

    def max_repairs(self, w) -> List[CountVector]:
        """The ⊑_w-maximal elements of ``rep(w, r)`` (ChangeReg's candidates)."""
        vector = self._as_vector(w)
        reps = self.repairs(vector)
        maxima = []
        for candidate in reps:
            if all(preorder_leq(other, candidate, vector) or
                   not preorder_leq(candidate, other, vector) or
                   _vec_eq(candidate, other)
                   for other in reps):
                # candidate is maximal if no other is strictly above it
                if not any(preorder_leq(candidate, other, vector)
                           and not preorder_leq(other, candidate, vector)
                           for other in reps):
                    maxima.append(candidate)
        return maxima

    def has_max_repair(self, w) -> bool:
        """Does ``rep(w, r)`` have a ⊑_w-*maximum* (an element above all others)?"""
        vector = self._as_vector(w)
        reps = self.repairs(vector)
        if not reps:
            return True  # vacuously: the condition only applies when rep ≠ ∅
        for candidate in reps:
            if all(preorder_leq(other, candidate, vector) for other in reps):
                return True
        return False

    def maximum_repair(self, w) -> Optional[CountVector]:
        """The ⊑_w-maximum of ``rep(w, r)`` if it exists, else ``None``."""
        vector = self._as_vector(w)
        reps = self.repairs(vector)
        for candidate in reps:
            if all(preorder_leq(other, candidate, vector) for other in reps):
                return candidate
        return None

    # -- univocality ------------------------------------------------------ #

    def default_bound(self) -> int:
        """Count bound used for the bounded univocality sweep."""
        if self._bound is not None:
            return self._bound
        largest = 1
        for ls in self.semilinear.linear_sets:
            for vec in [ls.base_vector()] + ls.period_vectors():
                for count in vec.values():
                    largest = max(largest, count)
        return largest + 2

    def is_univocal(self, bound: Optional[int] = None) -> bool:
        """Definition 6.9: ``c(r) ≤ 1`` and every ``rep(w, r) ≠ ∅`` has a
        ⊑_w-maximum.  See the module docstring for the bounded sweep."""
        if self._univocal is not None and bound is None:
            return self._univocal
        result = self._decide_univocal(bound)
        if bound is None:
            self._univocal = result
        return result

    def _decide_univocal(self, bound: Optional[int]) -> bool:
        if is_simple_regex(self.expr):
            return True
        if self.c_value() > 1:
            return False
        limit = bound if bound is not None else self.default_bound()
        symbols = self.alphabet
        if not symbols:
            return True
        if not self.has_max_repair({}):
            return False
        for support_size in range(1, len(symbols) + 1):
            for support in itertools.combinations(symbols, support_size):
                for counts in itertools.product(range(1, limit + 1),
                                                repeat=support_size):
                    w = dict(zip(support, counts))
                    if not self.has_max_repair(w):
                        return False
        return True


def _vec_eq(left: Mapping[str, int], right: Mapping[str, int]) -> bool:
    return ({s: c for s, c in left.items() if c}
            == {s: c for s, c in right.items() if c})


# --------------------------------------------------------------------- #
# Module-level convenience wrappers
# --------------------------------------------------------------------- #

_ANALYSIS_CACHE: Dict[Regex, RegexAnalysis] = {}


def analyse(expr: Regex) -> RegexAnalysis:
    """Return (and cache) the :class:`RegexAnalysis` of an expression."""
    if expr not in _ANALYSIS_CACHE:
        _ANALYSIS_CACHE[expr] = RegexAnalysis(expr)
    return _ANALYSIS_CACHE[expr]


def c_value(expr: Regex) -> int:
    """``c(r)`` (Lemma 6.8)."""
    return analyse(expr).c_value()


def is_univocal(expr: Regex, bound: Optional[int] = None) -> bool:
    """Decide whether ``expr`` is univocal (Definition 6.9 / Proposition 6.10)."""
    return analyse(expr).is_univocal(bound)


def repairs(word, expr: Regex) -> List[CountVector]:
    """``rep(w, r)`` as count vectors."""
    return analyse(expr).repairs(word)


def max_repairs(word, expr: Regex) -> List[CountVector]:
    """The ⊑_w-maximal elements of ``rep(w, r)``."""
    return analyse(expr).max_repairs(word)
