"""Parikh images, permutation languages π(r) and semilinear sets.

Section 5.2 of the paper introduces, for a regular expression ``r``, the
permutation language ``π(r)``: all strings that are permutations of strings in
``L(r)``.  Membership of a string in ``π(r)`` depends only on its *Parikh
vector* (the multiset of symbol counts), and the set of Parikh vectors of a
regular language is a *semilinear set* — a finite union of linear sets
``b + N·{p_1, …, p_k}`` (Lemma 5.4 states the equivalent Pilling normal form
``w_0 (w_1)* ⋯ (w_m)*``).

This module computes an exact semilinear representation *structurally* from
the regex AST:

* ``Parikh(ε) = {0}``,  ``Parikh(ℓ) = {e_ℓ}``,
* union        → union of the linear sets,
* concatenation → pairwise Minkowski sums,
* Kleene star  → the classical subset construction
  ``{0} ∪ ⋃_{∅≠S} (Σ_{i∈S} b_i + N·({b_i}_{i∈S} ∪ ⋃_{i∈S} P_i))``.

On top of the representation we provide the queries used throughout the
paper's algorithms:

* membership of a count vector (hence ``w ∈ π(r)``, Proposition 5.3),
* "is there ``v ∈ π(r)`` with ``v ≥ u``?" (coverability, used by ChangeReg
  failure detection and by ``fixed_a(r)``),
* the minimal extensions ``min_ext(w, r)`` of Section 6.1,
* boundedness of a symbol's count (used to compute ``c_a(r)``, Lemma 6.8).

Everything is exact; the only resource guard is a cap on the number of linear
sets produced by Kleene star over a union of many period-carrying components
(never hit by DTD-sized expressions; a compact exact form is used for the
common ``(a_1 | … | a_n)*`` shape).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .ast import Concat, Empty, Epsilon, Regex, Star, Symbol, Union

__all__ = [
    "CountVector", "LinearSet", "SemilinearSet",
    "parikh_vector", "semilinear_of", "in_permutation_language",
    "minimal_extensions", "SemilinearSizeError",
]

#: A count vector: mapping from symbol to a non-negative count.  Symbols not
#: present are implicitly 0.
CountVector = Dict[str, int]

_STAR_SUBSET_CAP = 16
_LINEAR_SET_CAP = 100_000


class SemilinearSizeError(RuntimeError):
    """Raised when the semilinear representation would exceed the safety cap."""


def parikh_vector(word: Iterable[str]) -> CountVector:
    """The Parikh vector ``(#a(w))_a`` of a word."""
    counts: CountVector = {}
    for symbol in word:
        counts[symbol] = counts.get(symbol, 0) + 1
    return counts


def _normalise(vector: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((s, c) for s, c in vector.items() if c))


@dataclass(frozen=True)
class LinearSet:
    """The linear set ``base + N·periods`` (periods is a frozen set of vectors)."""

    base: Tuple[Tuple[str, int], ...]
    periods: FrozenSet[Tuple[Tuple[str, int], ...]]

    @staticmethod
    def make(base: Mapping[str, int],
             periods: Iterable[Mapping[str, int]] = ()) -> "LinearSet":
        norm_periods = frozenset(
            _normalise(p) for p in periods if any(c for c in p.values())
        )
        return LinearSet(_normalise(base), norm_periods)

    def base_vector(self) -> CountVector:
        return dict(self.base)

    def period_vectors(self) -> List[CountVector]:
        return [dict(p) for p in self.periods]

    def symbols(self) -> Set[str]:
        symbols = {s for s, _ in self.base}
        for period in self.periods:
            symbols |= {s for s, _ in period}
        return symbols

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def contains(self, vector: Mapping[str, int]) -> bool:
        """Exact membership: is ``vector = base + Σ λ_j p_j`` solvable in N?"""
        target: CountVector = {}
        symbols = set(vector) | self.symbols()
        base = self.base_vector()
        for symbol in symbols:
            diff = vector.get(symbol, 0) - base.get(symbol, 0)
            if diff < 0:
                return False
            if diff:
                target[symbol] = diff
        periods = [p for p in self.period_vectors()
                   if all(s in target or not c for s, c in p.items())]
        return _solvable(target, periods)

    def coverable(self, lower: Mapping[str, int],
                  forbidden: FrozenSet[str] = frozenset()) -> bool:
        """Is there ``v`` in the set with ``v ≥ lower`` and ``v_f = 0`` for
        every forbidden symbol ``f``?

        Because periods may be used arbitrarily often, this reduces to: the
        base is zero on forbidden symbols, and every positive deficit
        component is touched by some allowed period.
        """
        base = self.base_vector()
        if any(base.get(f, 0) for f in forbidden):
            return False
        periods = [p for p in self.period_vectors()
                   if not any(p.get(f, 0) for f in forbidden)]
        for symbol, count in lower.items():
            deficit = count - base.get(symbol, 0)
            if deficit > 0 and not any(p.get(symbol, 0) for p in periods):
                return False
        return True

    def minimal_ge(self, lower: Mapping[str, int],
                   forbidden: FrozenSet[str] = frozenset()) -> List[CountVector]:
        """All ⪯-minimal vectors ``v`` of the set with ``v ≥ lower`` (and zero
        on forbidden symbols)."""
        if not self.coverable(lower, forbidden):
            return []
        base = self.base_vector()
        periods = [p for p in self.period_vectors()
                   if not any(p.get(f, 0) for f in forbidden)]
        # In a minimal solution no period is used more than max(lower) times
        # (dropping one copy would still dominate ``lower``), see module doc.
        bound = max([c for c in lower.values()] + [0]) + 1
        candidates: List[CountVector] = []
        deficits = {s: max(0, c - base.get(s, 0)) for s, c in lower.items()}
        deficits = {s: c for s, c in deficits.items() if c}
        useful = [p for p in periods if any(p.get(s, 0) for s in deficits)] or []
        for lambdas in itertools.product(range(bound + 1), repeat=len(useful)):
            vector = dict(base)
            for lam, period in zip(lambdas, useful):
                if not lam:
                    continue
                for symbol, count in period.items():
                    vector[symbol] = vector.get(symbol, 0) + lam * count
            if all(vector.get(s, 0) >= c for s, c in lower.items()):
                candidates.append({s: c for s, c in vector.items() if c})
        return _pareto_minimal(candidates)


def _solvable(target: CountVector, periods: List[CountVector]) -> bool:
    """Is ``target = Σ λ_j periods_j`` solvable with ``λ ∈ N``?  (DFS + memo)"""
    if not target:
        return True
    if not periods:
        return False
    memo: Dict[Tuple[Tuple[str, int], ...], bool] = {}

    items = periods

    def solve(remaining: CountVector, index: int) -> bool:
        if not remaining:
            return True
        if index == len(items):
            return False
        key = (_normalise(remaining), index)
        if key in memo:
            return memo[key]
        period = items[index]
        # Maximum multiplicity of this period.
        limit = None
        for symbol, count in period.items():
            if count:
                available = remaining.get(symbol, 0) // count
                limit = available if limit is None else min(limit, available)
        limit = limit or 0
        result = False
        for lam in range(limit + 1):
            nxt = dict(remaining)
            ok = True
            for symbol, count in period.items():
                if not count:
                    continue
                value = nxt.get(symbol, 0) - lam * count
                if value < 0:
                    ok = False
                    break
                if value:
                    nxt[symbol] = value
                else:
                    nxt.pop(symbol, None)
            if ok and solve(nxt, index + 1):
                result = True
                break
        memo[key] = result
        return result

    return solve(dict(target), 0)


def _pareto_minimal(vectors: List[CountVector]) -> List[CountVector]:
    """Keep only the ⪯-minimal vectors (componentwise order), removing duplicates."""
    unique: Dict[Tuple[Tuple[str, int], ...], CountVector] = {}
    for vector in vectors:
        unique[_normalise(vector)] = {s: c for s, c in vector.items() if c}
    result: List[CountVector] = []
    items = list(unique.values())
    for i, vec in enumerate(items):
        dominated = False
        for j, other in enumerate(items):
            if i == j:
                continue
            if _leq(other, vec) and other != vec:
                dominated = True
                break
        if not dominated:
            result.append(vec)
    return result


def _leq(left: Mapping[str, int], right: Mapping[str, int]) -> bool:
    return all(right.get(s, 0) >= c for s, c in left.items())


class SemilinearSet:
    """A finite union of :class:`LinearSet`, the Parikh image of a regex."""

    def __init__(self, linear_sets: Iterable[LinearSet]) -> None:
        # Deduplicate identical linear sets; they are frequent after sums.
        seen: Dict[Tuple, LinearSet] = {}
        for ls in linear_sets:
            seen[(ls.base, ls.periods)] = ls
        self.linear_sets: List[LinearSet] = list(seen.values())
        if len(self.linear_sets) > _LINEAR_SET_CAP:
            raise SemilinearSizeError(
                f"semilinear representation too large ({len(self.linear_sets)} linear sets)"
            )

    def __len__(self) -> int:
        return len(self.linear_sets)

    def symbols(self) -> Set[str]:
        symbols: Set[str] = set()
        for ls in self.linear_sets:
            symbols |= ls.symbols()
        return symbols

    def is_empty(self) -> bool:
        return not self.linear_sets

    def contains(self, vector: Mapping[str, int]) -> bool:
        """Membership of a Parikh vector in the Parikh image."""
        clean = {s: c for s, c in vector.items() if c}
        return any(ls.contains(clean) for ls in self.linear_sets)

    def coverable(self, lower: Mapping[str, int],
                  forbidden: Iterable[str] = ()) -> bool:
        """Is there a member ``v ≥ lower`` that avoids the forbidden symbols?"""
        forb = frozenset(forbidden)
        clean = {s: c for s, c in lower.items() if c}
        return any(ls.coverable(clean, forb) for ls in self.linear_sets)

    def minimal_ge(self, lower: Mapping[str, int],
                   forbidden: Iterable[str] = ()) -> List[CountVector]:
        """All ⪯-minimal members ``v ≥ lower`` avoiding forbidden symbols."""
        forb = frozenset(forbidden)
        clean = {s: c for s, c in lower.items() if c}
        candidates: List[CountVector] = []
        for ls in self.linear_sets:
            candidates.extend(ls.minimal_ge(clean, forb))
        return _pareto_minimal(candidates)

    def symbol_count_unbounded(self, symbol: str) -> bool:
        """True iff members with arbitrarily large ``#symbol`` exist."""
        return any(any(p.get(symbol, 0) for p in ls.period_vectors())
                   for ls in self.linear_sets)

    def max_base_count(self, symbol: str) -> int:
        """The largest ``#symbol`` among the bases (bounds ``c_a(r)``, Lemma 6.8)."""
        best = 0
        for ls in self.linear_sets:
            best = max(best, ls.base_vector().get(symbol, 0))
        return best


# --------------------------------------------------------------------- #
# Structural computation of the Parikh image
# --------------------------------------------------------------------- #

def semilinear_of(expr: Regex) -> SemilinearSet:
    """Exact semilinear representation of the Parikh image of ``L(expr)``."""
    return SemilinearSet(_semilinear(expr))


def _semilinear(expr: Regex) -> List[LinearSet]:
    if isinstance(expr, Empty):
        return []
    if isinstance(expr, Epsilon):
        return [LinearSet.make({})]
    if isinstance(expr, Symbol):
        return [LinearSet.make({expr.name: 1})]
    if isinstance(expr, Union):
        return _semilinear(expr.left) + _semilinear(expr.right)
    if isinstance(expr, Concat):
        left = _semilinear(expr.left)
        right = _semilinear(expr.right)
        result = []
        for l_set in left:
            for r_set in right:
                base = _add_vectors(l_set.base_vector(), r_set.base_vector())
                periods = list(l_set.period_vectors()) + list(r_set.period_vectors())
                result.append(LinearSet.make(base, periods))
        return result
    if isinstance(expr, Star):
        inner = SemilinearSet(_semilinear(expr.inner)).linear_sets
        return _star(inner)
    raise TypeError(f"unknown regex node: {expr!r}")


def _add_vectors(left: CountVector, right: CountVector) -> CountVector:
    result = dict(left)
    for symbol, count in right.items():
        result[symbol] = result.get(symbol, 0) + count
    return result


def _star(linear_sets: List[LinearSet]) -> List[LinearSet]:
    zero = LinearSet.make({})
    if not linear_sets:
        return [zero]
    # Compact exact form when no component carries periods: the star of a set
    # of plain vectors {b_1, …, b_m} is {0} ∪ ⋃_j (b_j + N·{b_1, …, b_m}).
    if all(not ls.periods for ls in linear_sets):
        bases = [ls.base_vector() for ls in linear_sets]
        return [zero] + [LinearSet.make(base, bases) for base in bases]
    if len(linear_sets) > _STAR_SUBSET_CAP:
        raise SemilinearSizeError(
            "Kleene star over a union of more than "
            f"{_STAR_SUBSET_CAP} period-carrying components is not supported; "
            "rewrite the content model or simplify the expression"
        )
    result = [zero]
    indices = range(len(linear_sets))
    for size in range(1, len(linear_sets) + 1):
        for subset in itertools.combinations(indices, size):
            base: CountVector = {}
            periods: List[CountVector] = []
            for index in subset:
                ls = linear_sets[index]
                base = _add_vectors(base, ls.base_vector())
                periods.append(ls.base_vector())
                periods.extend(ls.period_vectors())
            result.append(LinearSet.make(base, periods))
    return result


# --------------------------------------------------------------------- #
# π(r) membership and min_ext
# --------------------------------------------------------------------- #

def in_permutation_language(word: Sequence[str], expr: Regex,
                            semilinear: Optional[SemilinearSet] = None) -> bool:
    """``w ∈ π(r)``: is the word a permutation of some string in ``L(r)``?

    Proposition 5.3 shows this is NP-complete in general but polynomial for a
    fixed ``r``; precomputing ``semilinear`` and reusing it across calls gives
    the fixed-``r`` behaviour.
    """
    sl = semilinear if semilinear is not None else semilinear_of(expr)
    return sl.contains(parikh_vector(word))


def minimal_extensions(word: Sequence[str], expr: Regex,
                       semilinear: Optional[SemilinearSet] = None) -> List[CountVector]:
    """``min_ext(w, r)``: the ⪯-minimal Parikh vectors of strings in ``π(r)``
    dominating ``w`` (Section 6.1).

    The result is returned as a list of count vectors; the caller may realise
    them as concrete strings in any order (the chase works on unordered
    trees).
    """
    sl = semilinear if semilinear is not None else semilinear_of(expr)
    return sl.minimal_ge(parikh_vector(word))
