"""Finite string automata for DTD content models (paper, Appendix A).

Provides Thompson-style NFA construction from the regex AST, the subset
construction to DFAs, products, complement, emptiness, membership, and a
shortest-witness extractor.  These are used by

* DTD conformance checking (``L(P(ℓ))`` membership),
* DTD trimming (Lemma 2.2),
* the unranked tree automata of :mod:`repro.automata`,
* the sibling-reordering algorithm of Proposition 5.2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .ast import Concat, Empty, Epsilon, Regex, Star, Symbol, Union

__all__ = ["NFA", "DFA", "regex_to_nfa", "nfa_to_dfa", "regex_to_dfa"]

EPSILON = None  # label of ε-transitions inside the NFA


@dataclass
class NFA:
    """A nondeterministic finite automaton with ε-transitions.

    States are integers ``0 .. n_states-1``; ``transitions`` maps
    ``(state, symbol)`` to a set of states, where ``symbol`` is a string or
    :data:`EPSILON`.
    """

    n_states: int
    start: int
    accepting: Set[int]
    transitions: Dict[Tuple[int, Optional[str]], Set[int]] = field(default_factory=dict)
    alphabet: Set[str] = field(default_factory=set)

    def add_transition(self, src: int, symbol: Optional[str], dst: int) -> None:
        self.transitions.setdefault((src, symbol), set()).add(dst)
        if symbol is not None:
            self.alphabet.add(symbol)

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """ε-closure of a set of states."""
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.transitions.get((state, EPSILON), ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def step(self, states: FrozenSet[int], symbol: str) -> FrozenSet[int]:
        """One symbol step followed by ε-closure."""
        targets: Set[int] = set()
        for state in states:
            targets |= self.transitions.get((state, symbol), set())
        return self.epsilon_closure(targets)

    def accepts(self, word: Sequence[str]) -> bool:
        """Membership of a word (sequence of element types) in the language."""
        current = self.epsilon_closure({self.start})
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return any(state in self.accepting for state in current)

    def is_empty(self) -> bool:
        """True iff the automaton accepts no word."""
        return self.shortest_word() is None

    def shortest_word(self) -> Optional[List[str]]:
        """Return a shortest accepted word, or ``None`` if the language is empty."""
        start = self.epsilon_closure({self.start})
        if any(s in self.accepting for s in start):
            return []
        queue = deque([(start, [])])
        seen = {start}
        while queue:
            states, word = queue.popleft()
            for symbol in sorted(self.alphabet):
                nxt = self.step(states, symbol)
                if not nxt or nxt in seen:
                    continue
                new_word = word + [symbol]
                if any(s in self.accepting for s in nxt):
                    return new_word
                seen.add(nxt)
                queue.append((nxt, new_word))
        return None

    def restricted_to(self, alphabet: Set[str]) -> "NFA":
        """The automaton for ``L(A) ∩ alphabet*`` (drop other symbol transitions)."""
        result = NFA(self.n_states, self.start, set(self.accepting))
        for (src, symbol), dsts in self.transitions.items():
            if symbol is EPSILON or symbol in alphabet:
                for dst in dsts:
                    result.add_transition(src, symbol, dst)
        return result


@dataclass
class DFA:
    """A (complete on-demand) deterministic finite automaton."""

    start: FrozenSet[int]
    accepting_nfa_states: Set[int]
    nfa: NFA
    alphabet: Set[str]

    def accepts(self, word: Sequence[str]) -> bool:
        current = self.start
        for symbol in word:
            current = self.nfa.step(current, symbol)
            if not current:
                return False
        return any(s in self.accepting_nfa_states for s in current)

    def is_accepting_state(self, state: FrozenSet[int]) -> bool:
        return any(s in self.accepting_nfa_states for s in state)

    def step(self, state: FrozenSet[int], symbol: str) -> FrozenSet[int]:
        return self.nfa.step(state, symbol)


def regex_to_nfa(expr: Regex) -> NFA:
    """Thompson construction producing an NFA with a single accepting state."""
    builder = _Builder()
    start, end = builder.build(expr)
    nfa = NFA(builder.count, start, {end})
    nfa.transitions = builder.transitions
    nfa.alphabet = builder.alphabet
    return nfa


class _Builder:
    def __init__(self) -> None:
        self.count = 0
        self.transitions: Dict[Tuple[int, Optional[str]], Set[int]] = {}
        self.alphabet: Set[str] = set()

    def _state(self) -> int:
        self.count += 1
        return self.count - 1

    def _edge(self, src: int, symbol: Optional[str], dst: int) -> None:
        self.transitions.setdefault((src, symbol), set()).add(dst)
        if symbol is not None:
            self.alphabet.add(symbol)

    def build(self, expr: Regex) -> Tuple[int, int]:
        if isinstance(expr, Epsilon):
            start = self._state()
            end = self._state()
            self._edge(start, EPSILON, end)
            return start, end
        if isinstance(expr, Empty):
            start = self._state()
            end = self._state()
            return start, end
        if isinstance(expr, Symbol):
            start = self._state()
            end = self._state()
            self._edge(start, expr.name, end)
            return start, end
        if isinstance(expr, Concat):
            s1, e1 = self.build(expr.left)
            s2, e2 = self.build(expr.right)
            self._edge(e1, EPSILON, s2)
            return s1, e2
        if isinstance(expr, Union):
            start = self._state()
            end = self._state()
            s1, e1 = self.build(expr.left)
            s2, e2 = self.build(expr.right)
            self._edge(start, EPSILON, s1)
            self._edge(start, EPSILON, s2)
            self._edge(e1, EPSILON, end)
            self._edge(e2, EPSILON, end)
            return start, end
        if isinstance(expr, Star):
            start = self._state()
            end = self._state()
            s1, e1 = self.build(expr.inner)
            self._edge(start, EPSILON, s1)
            self._edge(start, EPSILON, end)
            self._edge(e1, EPSILON, s1)
            self._edge(e1, EPSILON, end)
            return start, end
        raise TypeError(f"unknown regex node: {expr!r}")


def nfa_to_dfa(nfa: NFA) -> DFA:
    """Lazy subset construction wrapper (states are ε-closed NFA state sets)."""
    return DFA(start=nfa.epsilon_closure({nfa.start}),
               accepting_nfa_states=set(nfa.accepting),
               nfa=nfa,
               alphabet=set(nfa.alphabet))


def regex_to_dfa(expr: Regex) -> DFA:
    """Convenience: regex -> NFA -> lazy DFA."""
    return nfa_to_dfa(regex_to_nfa(expr))
