"""Parser for DTD content-model regular expressions.

Grammar (whitespace-insensitive, ``,`` and juxtaposition both mean
concatenation, matching common DTD notation)::

    expr     := term ('|' term)*
    term     := factor ((',' | ' ') factor)*
    factor   := atom ('*' | '+' | '?')*
    atom     := NAME | 'EPSILON' | 'EMPTY' | '(' expr ')'

``NAME`` is any run of letters, digits, ``_``, ``-`` or ``.`` that is not one
of the reserved words.  Both the paper's ``ε`` and the DTD keyword ``EMPTY``
denote the empty-string expression.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .ast import Regex, concat, empty, epsilon, optional, plus, star, sym, union

__all__ = ["parse_regex", "RegexParseError"]

_TOKEN_RE = re.compile(r"\s*(?:(?P<name>[\w.\-]+)|(?P<op>[|(),*+?])|(?P<eps>ε))")

_RESERVED_EPSILON = {"EPSILON", "EMPTY", "ε", "eps"}
_RESERVED_EMPTYSET = {"EMPTYSET", "∅"}


class RegexParseError(ValueError):
    """Raised when a regular-expression string cannot be parsed."""


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.tokens: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match or match.end() == pos:
                remainder = text[pos:].strip()
                if not remainder:
                    break
                raise RegexParseError(f"cannot tokenise regex near {remainder!r}")
            token = match.group("name") or match.group("op") or match.group("eps")
            self.tokens.append(token)
            pos = match.end()
        self.index = 0

    def peek(self) -> Optional[str]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise RegexParseError("unexpected end of regular expression")
        self.index += 1
        return token


def parse_regex(text: str) -> Regex:
    """Parse a content-model string into a :class:`~repro.regexlang.ast.Regex`.

    Examples::

        parse_regex("book*")                 # Figure 1(a)
        parse_regex("(B C)*")                # Example 6.4
        parse_regex("l1? l2+ l3* l4")        # nested-relational rule shape
        parse_regex("a1|a2|a3")
    """
    if not text.strip():
        return epsilon()
    tokens = _Tokenizer(text)
    expr = _parse_union(tokens)
    if tokens.peek() is not None:
        raise RegexParseError(f"trailing input at token {tokens.peek()!r} in {text!r}")
    return expr


def _parse_union(tokens: _Tokenizer) -> Regex:
    parts = [_parse_concat(tokens)]
    while tokens.peek() == "|":
        tokens.take()
        parts.append(_parse_concat(tokens))
    return union(*parts)


def _parse_concat(tokens: _Tokenizer) -> Regex:
    parts = []
    while True:
        token = tokens.peek()
        if token is None or token in {"|", ")"}:
            break
        if token == ",":
            tokens.take()
            continue
        parts.append(_parse_postfix(tokens))
    if not parts:
        return epsilon()
    return concat(*parts)


def _parse_postfix(tokens: _Tokenizer) -> Regex:
    expr = _parse_atom(tokens)
    while tokens.peek() in {"*", "+", "?"}:
        op = tokens.take()
        if op == "*":
            expr = star(expr)
        elif op == "+":
            expr = plus(expr)
        else:
            expr = optional(expr)
    return expr


def _parse_atom(tokens: _Tokenizer) -> Regex:
    token = tokens.take()
    if token == "(":
        expr = _parse_union(tokens)
        closing = tokens.take()
        if closing != ")":
            raise RegexParseError(f"expected ')' but found {closing!r}")
        return expr
    if token in _RESERVED_EPSILON:
        return epsilon()
    if token in _RESERVED_EMPTYSET:
        return empty()
    if token in {")", "|", "*", "+", "?", ","}:
        raise RegexParseError(f"unexpected token {token!r}")
    return sym(token)
