"""ReproStore: the persistent, fingerprint-addressed corpus plane.

Everything above this package is RAM-lifetime; this package is where
documents and compiled settings outlive the process.  See
:mod:`repro.storage.store` for the durability contract and
:mod:`repro.storage.encoding` for the columnar pre/post record layout.

The serving layer builds on three pieces:

* :class:`CorpusStore` — SQLite catalog + mmap'd record heap (or an
  ephemeral in-memory twin), single writer / many read-only readers;
* :class:`UnknownDocumentError` — the typed failure of
  fingerprint-addressed requests, with a wire codec entry;
* ``ExchangeEngine.attach_store`` / ``--store PATH`` — the attach points
  that make ``solve`` / ``certain_answers`` accept a fingerprint wherever
  they accept an inline tree today.
"""

from .errors import StoreError, StoreReadOnlyError, UnknownDocumentError
from .store import CorpusStore, StoredSetting

__all__ = ["CorpusStore", "StoredSetting", "StoreError",
           "StoreReadOnlyError", "UnknownDocumentError"]
