"""Columnar pre/post record encoding for frozen trees.

One store record is one self-describing binary blob laid out as a small
header plus a **section directory**: every column of the
:class:`~repro.xmlmodel.frozen.FrozenTree` snapshot (interned labels,
parents, contiguous child spans, per-label node index, attribute value
tables) is an independently addressable byte range, so a reader can slice
a single column out of the mmap without touching the rest of the record.

On top of the frozen columns the record carries the **pre/post interval
plane** of the XPath-accelerator encoding: ``pre[v]`` / ``post[v]`` are
the document-order and bottom-up ranks of node ``v``, and

    ``v`` is an ancestor of ``w``  iff  ``pre[v] < pre[w]`` and
    ``post[v] > post[w]``

— the column pair the structural-join evaluator ranges over.  The ranks
are **not** derived here: :meth:`FrozenTree.pre_post` is the single
source of truth (one iterative DFS, cached on the snapshot), the encoder
persists whatever the snapshot already computed — or forces it once — and
the decoder seeds the loaded snapshot's cache from the record sections,
so a stored document is join-ready without ever re-deriving the plane.

All multi-byte integers are little-endian regardless of host byte order;
fingerprints never enter the record (they are the catalog key).  Label
and attribute *names* plus attribute value tables are JSON sections —
attribute values are strings or nulls (``{"n": ident}``), mirroring the
wire codec's tagged form.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import Dict, List, Sequence, Tuple

from ..xmlmodel.frozen import FrozenTree, compute_pre_post
from ..xmlmodel.values import Null, Value
from .errors import StoreError

# ``compute_pre_post`` moved to ``repro.xmlmodel.frozen`` (the snapshot
# caches its own interval plane now); re-exported here for callers that
# knew it as part of the record format.
__all__ = ["encode_document", "decode_document", "decode_intervals",
           "compute_pre_post"]

_MAGIC = b"RPST"
_VERSION = 1
_HEADER = struct.Struct("<4sHHIH")          # magic, version, flags, n, sections
_DIRENT = struct.Struct("<HQQ")             # tag, offset, length

# Section tags (u16).  Offsets in the directory are relative to the record
# start, so a record is relocatable — the catalog only stores where the
# whole record lives in the data file.
_SEC_LABEL_NAMES = 1     # JSON list[str]
_SEC_LABELS = 2          # i32[n]   interned label id per BFS position
_SEC_PARENTS = 3         # i32[n]   parent BFS position (-1 at the root)
_SEC_CHILD_START = 4     # i32[n]   first child position (0 for leaves)
_SEC_CHILD_END = 5       # i32[n]   one past the last child position
_SEC_PRE = 6             # i32[n]   pre-order (document-order) rank
_SEC_POST = 7            # i32[n]   post-order (bottom-up) rank
_SEC_BYLABEL_OFF = 8     # i32[L+1] CSR offsets into the positions column
_SEC_BYLABEL_POS = 9     # i32[n]   node positions grouped by label id
_SEC_ORIG_IDS = 10       # i64[n]   source-tree node idents
_SEC_ATTRS = 11          # JSON {"names": [...], "tables": [[pos...],[val...]]}


def _ints_to_bytes(values: Sequence[int], typecode: str = "i") -> bytes:
    arr = array(typecode, values)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI
        arr.byteswap()
    return arr.tobytes()


def _ints_from_bytes(buf: bytes, typecode: str = "i") -> Tuple[int, ...]:
    arr = array(typecode)
    arr.frombytes(bytes(buf))
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI
        arr.byteswap()
    return tuple(arr)


def _value_to_record(value: Value) -> object:
    return {"n": value.ident} if isinstance(value, Null) else value


def _value_from_record(raw: object) -> Value:
    if isinstance(raw, dict):
        return Null(raw["n"])
    return raw  # type: ignore[return-value]


def _by_label_csr(labels: Sequence[int],
                  n_labels: int) -> Tuple[List[int], List[int]]:
    """The per-label node index in CSR form: ``positions[offsets[lid] :
    offsets[lid + 1]]`` lists every node carrying label ``lid``,
    ascending (the same index ``FrozenTree.nodes_by_label`` builds
    lazily — persisted, the loaded snapshot starts with it warm)."""
    buckets: List[List[int]] = [[] for _ in range(n_labels)]
    for pos, lid in enumerate(labels):
        buckets[lid].append(pos)
    offsets = [0]
    positions: List[int] = []
    for bucket in buckets:
        positions.extend(bucket)
        offsets.append(len(positions))
    return offsets, positions


def encode_document(frozen: FrozenTree) -> bytes:
    """Serialise ``frozen`` into one relocatable record blob."""
    n = frozen.n
    if n >= 2 ** 31:  # pragma: no cover - 2G-node documents
        raise StoreError(f"document too large for the record format: {n} nodes")
    pre, post = frozen.pre_post()
    offsets, positions = _by_label_csr(frozen.labels, len(frozen.label_names))
    attrs_json = {
        "names": list(frozen.attr_names),
        "tables": [
            [sorted(table), [_value_to_record(table[pos])
                             for pos in sorted(table)]]
            for table in frozen.attr_tables
        ],
    }
    sections: List[Tuple[int, bytes]] = [
        (_SEC_LABEL_NAMES,
         json.dumps(list(frozen.label_names),
                    ensure_ascii=False).encode("utf-8")),
        (_SEC_LABELS, _ints_to_bytes(frozen.labels)),
        (_SEC_PARENTS, _ints_to_bytes(frozen.parents)),
        (_SEC_CHILD_START, _ints_to_bytes(frozen.child_start)),
        (_SEC_CHILD_END, _ints_to_bytes(frozen.child_end)),
        (_SEC_PRE, _ints_to_bytes(pre)),
        (_SEC_POST, _ints_to_bytes(post)),
        (_SEC_BYLABEL_OFF, _ints_to_bytes(offsets)),
        (_SEC_BYLABEL_POS, _ints_to_bytes(positions)),
        (_SEC_ORIG_IDS, _ints_to_bytes(frozen.orig_ids, "q")),
        (_SEC_ATTRS,
         json.dumps(attrs_json, ensure_ascii=False).encode("utf-8")),
    ]
    header = _HEADER.pack(_MAGIC, _VERSION, 1 if frozen.ordered else 0,
                          n, len(sections))
    body_start = _HEADER.size + _DIRENT.size * len(sections)
    directory = bytearray()
    body = bytearray()
    cursor = body_start
    for tag, payload in sections:
        directory += _DIRENT.pack(tag, cursor, len(payload))
        body += payload
        cursor += len(payload)
    return header + bytes(directory) + bytes(body)


def _read_directory(record: memoryview) -> Tuple[bool, int, Dict[int, memoryview]]:
    if len(record) < _HEADER.size:
        raise StoreError("truncated record header")
    magic, version, flags, n, count = _HEADER.unpack_from(record, 0)
    if magic != _MAGIC:
        raise StoreError(f"bad record magic {magic!r}")
    if version != _VERSION:
        raise StoreError(f"unsupported record version {version}")
    sections: Dict[int, memoryview] = {}
    for index in range(count):
        tag, offset, length = _DIRENT.unpack_from(
            record, _HEADER.size + _DIRENT.size * index)
        if offset + length > len(record):
            raise StoreError(f"record section {tag} overruns the record")
        sections[tag] = record[offset:offset + length]
    return bool(flags & 1), n, sections


def decode_document(record: memoryview) -> FrozenTree:
    """Rebuild the :class:`FrozenTree` snapshot from one record blob.

    The per-label index arrives pre-built (``nodes_by_label`` is warm from
    the first access); the fingerprint cache is *not* filled here — the
    store seeds it from the catalog key, which owns that binding.
    """
    ordered, n, sections = _read_directory(record)
    label_names = tuple(json.loads(bytes(sections[_SEC_LABEL_NAMES])))
    labels = _ints_from_bytes(sections[_SEC_LABELS])
    if len(labels) != n:
        raise StoreError(f"label column holds {len(labels)} entries, "
                         f"header says {n}")
    attrs_json = json.loads(bytes(sections[_SEC_ATTRS]))
    attr_names = tuple(attrs_json["names"])
    attr_tables = tuple(
        dict(zip(positions, (_value_from_record(raw) for raw in values)))
        for positions, values in attrs_json["tables"])
    frozen = FrozenTree(
        ordered=ordered,
        labels=labels,
        label_names=label_names,
        label_ids={name: lid for lid, name in enumerate(label_names)},
        parents=_ints_from_bytes(sections[_SEC_PARENTS]),
        child_start=_ints_from_bytes(sections[_SEC_CHILD_START]),
        child_end=_ints_from_bytes(sections[_SEC_CHILD_END]),
        post_order=tuple(range(n - 1, -1, -1)),
        attr_names=attr_names,
        attr_ids={name: aid for aid, name in enumerate(attr_names)},
        attr_tables=attr_tables,
        orig_ids=_ints_from_bytes(sections[_SEC_ORIG_IDS], "q"),
    )
    offsets = _ints_from_bytes(sections[_SEC_BYLABEL_OFF])
    positions = _ints_from_bytes(sections[_SEC_BYLABEL_POS])
    frozen._by_label = tuple(
        positions[offsets[lid]:offsets[lid + 1]]
        for lid in range(len(label_names)))
    # The record carries the pre/post plane the encoder persisted; seed the
    # snapshot's cache so a loaded document is structural-join-ready
    # without re-deriving the intervals.
    frozen._pre_post = (_ints_from_bytes(sections[_SEC_PRE]),
                        _ints_from_bytes(sections[_SEC_POST]))
    return frozen


def decode_intervals(record: memoryview) -> Tuple[Tuple[int, ...],
                                                  Tuple[int, ...]]:
    """Slice only the pre/post interval columns out of a record — the
    columnar access path the structural-join plane will use (nothing else
    in the record is touched or decoded)."""
    _, _, sections = _read_directory(record)
    return (_ints_from_bytes(sections[_SEC_PRE]),
            _ints_from_bytes(sections[_SEC_POST]))
