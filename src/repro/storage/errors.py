"""Typed failures of the persistent corpus store.

:class:`UnknownDocumentError` is the storage twin of
:class:`~repro.service.registry.UnknownSettingError`: it subclasses
``KeyError`` (lookup by an absent key), carries the offending fingerprint
as an attribute, and renders it in a stable message the wire codec can
parse back on the client side (see :mod:`repro.service.protocol`).
"""

from __future__ import annotations

__all__ = ["StoreError", "StoreReadOnlyError", "UnknownDocumentError"]


class StoreError(RuntimeError):
    """A corpus-store invariant was violated (corrupt record, wrong
    format version, writes without a store attached, ...)."""


class StoreReadOnlyError(StoreError):
    """A write was attempted through a read-only store handle.

    Shard-host workers open the store read-only by design — the supervisor
    owns all writes — so this surfacing in a worker means a write slipped
    onto the wrong side of that contract.
    """


class UnknownDocumentError(KeyError):
    """No document with the requested fingerprint exists in the store.

    Raised by fingerprint-addressed ``solve`` / ``certain_answers`` when
    the client skipped ``put_tree`` (or addressed the wrong store).  The
    fingerprint is available as ``.fingerprint``.
    """

    def __init__(self, fingerprint: str) -> None:
        super().__init__(fingerprint)
        self.fingerprint = fingerprint

    def __str__(self) -> str:
        return (f"no document with fingerprint {self.fingerprint} in the "
                f"store; register it first with put_tree")
