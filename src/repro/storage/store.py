"""The persistent corpus store: SQLite catalog + mmap'd record heap.

``CorpusStore`` is stdlib-first — no server, no third-party driver.  A
store is a directory holding exactly two files:

``catalog.db``
    A SQLite database mapping ``fingerprint -> (offset, length)`` into the
    record heap, plus pickled :class:`~repro.engine.compiled.CompiledSetting`
    blobs and the committed high-water mark of the heap (``data_end``).
``trees.bin``
    An append-only heap of the columnar records built by
    :mod:`repro.storage.encoding`, mmap'd for reads.

**Durability contract.**  Ingest appends record bytes at the committed
``data_end``, flushes and ``fsync``\\ s the heap, and only then commits one
SQLite transaction inserting the catalog rows and advancing ``data_end``.
The SQLite commit is the *only* commit point: a process killed at any
instant leaves either the old catalog (orphan heap bytes past ``data_end``,
reclaimed by the next writer) or the new one (whose rows point at fully
fsync'd bytes) — never a catalog row referencing torn data.  Bulk ingest
(:meth:`put_trees`) commits per chunk, so a kill loses at most the
in-flight chunk.

**Single writer, many readers.**  One process owns writes (the serving
supervisor); any number of handles — including in other processes, e.g.
shard-host workers — open the store with ``read_only=True`` and observe
committed ingests on their next catalog query (the mmap is grown lazily
when a record lands past the mapped size).

``CorpusStore(None)`` builds an ephemeral in-memory store with the same
API — what the server uses when booted without ``--store`` so that
``put_tree`` and fingerprint-addressed requests work out of the box.

Counters are :class:`~repro.engine.stats.CacheStats` all the way down
(RL004): ``store_hits`` / ``store_misses`` count fingerprint resolutions,
``store_bytes`` accumulates record bytes actually read off the heap (a
resolution served from an engine's thawed-tree cache moves ``store_hits``
but not ``store_bytes``).
"""

from __future__ import annotations

import io
import mmap
import os
import pickle
import sqlite3
import threading
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..engine.compiled import CompiledSetting, compile_setting
from ..engine.stats import CacheStats
from ..exchange.setting import DataExchangeSetting
from ..obs.trace import span as obs_span
from ..xmlmodel.frozen import FrozenTree
from ..xmlmodel.tree import XMLTree
from .encoding import decode_document, decode_intervals, encode_document
from .errors import StoreError, StoreReadOnlyError, UnknownDocumentError

__all__ = ["CorpusStore", "StoredSetting"]

_FORMAT_VERSION = "1"
_CATALOG_NAME = "catalog.db"
_HEAP_NAME = "trees.bin"
#: Heap writes are flushed in slices of this size so a multi-gigabyte
#: ingest never materialises one contiguous Python buffer per write call.
_WRITE_SLICE = 1 << 20

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS documents (
    fingerprint TEXT PRIMARY KEY,
    ordered     INTEGER NOT NULL,
    nodes       INTEGER NOT NULL,
    offset      INTEGER NOT NULL,
    length      INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS settings (
    fingerprint TEXT PRIMARY KEY,
    prewarm     INTEGER NOT NULL,
    payload     BLOB NOT NULL
);
"""


@dataclass(frozen=True)
class StoredSetting:
    """One persisted compiled setting: ready to register, already warm."""

    fingerprint: str
    compiled: CompiledSetting
    prewarm: bool


class CorpusStore:
    """Fingerprint-addressed persistent corpus of frozen trees and
    compiled settings.

    ``path`` is a store directory (created on first writable open), or
    ``None`` for an ephemeral in-memory store.  ``read_only=True`` opens
    an existing on-disk store without write access — the mode shard-host
    workers use; writes then raise :class:`StoreReadOnlyError`.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None, *,
                 read_only: bool = False, chunk_docs: int = 64) -> None:
        if chunk_docs < 1:
            raise ValueError(f"chunk_docs must be >= 1, got {chunk_docs!r}")
        if path is None and read_only:
            raise ValueError("an in-memory store cannot be read-only")
        self.path = None if path is None else os.fspath(path)
        self.read_only = read_only
        self.chunk_docs = chunk_docs
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._mmap: Optional[mmap.mmap] = None
        self._mapped = 0
        self._closed = False
        if self.path is None:
            self._conn = sqlite3.connect(":memory:",
                                         check_same_thread=False)
            self._heap: Optional[io.BufferedRandom] = None
            self._membuf: Optional[bytearray] = bytearray()
        else:
            catalog = os.path.join(self.path, _CATALOG_NAME)
            heap = os.path.join(self.path, _HEAP_NAME)
            self._membuf = None
            if read_only:
                if not os.path.exists(catalog):
                    raise StoreError(f"no store at {self.path!r} "
                                     f"(missing {_CATALOG_NAME})")
                self._conn = sqlite3.connect(
                    f"file:{catalog}?mode=ro", uri=True,
                    check_same_thread=False, timeout=5.0)
                self._heap = open(heap, "rb") if os.path.exists(heap) else None
            else:
                os.makedirs(self.path, exist_ok=True)
                self._conn = sqlite3.connect(catalog,
                                             check_same_thread=False,
                                             timeout=5.0)
                if not os.path.exists(heap):
                    with open(heap, "wb"):
                        pass
                self._heap = open(heap, "r+b")
        self._init_catalog()

    # ------------------------------------------------------------------ #
    # Catalog bootstrap
    # ------------------------------------------------------------------ #

    def _init_catalog(self) -> None:
        with self._lock:
            self._conn.execute("PRAGMA busy_timeout = 5000")
            if self.read_only:
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key = 'format'").fetchone()
                if row is None or row[0] != _FORMAT_VERSION:
                    raise StoreError(
                        f"store at {self.path!r} has format "
                        f"{row[0] if row else 'missing'!r}, "
                        f"expected {_FORMAT_VERSION!r}")
                return
            with self._conn:
                self._conn.executescript(_SCHEMA)
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta VALUES ('format', ?)",
                    (_FORMAT_VERSION,))
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta VALUES ('data_end', '0')")
            # Reclaim orphan heap bytes a killed ingest left past the
            # committed high-water mark (the durability contract's only
            # cleanup duty — catalog rows never reference them).
            if self._heap is not None:
                self._heap.seek(0, os.SEEK_END)
                if self._heap.tell() > self._data_end():
                    self._heap.truncate(self._data_end())

    def _data_end(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'data_end'").fetchone()
        if row is None:
            raise StoreError("store catalog has no data_end mark")
        return int(row[0])

    def _require_writable(self) -> None:
        if self._closed:
            raise StoreError("store is closed")
        if self.read_only:
            raise StoreReadOnlyError(
                "this store handle is read-only (workers read, the "
                "supervisor owns writes)")

    # ------------------------------------------------------------------ #
    # Document ingest
    # ------------------------------------------------------------------ #

    def put_tree(self, tree: Union[XMLTree, FrozenTree]) -> str:
        """Ingest one document; returns its fingerprint.  Idempotent —
        re-ingesting an already-stored fingerprint writes nothing."""
        return self.put_trees([tree])[0]

    def put_trees(self, trees: Iterable[Union[XMLTree, FrozenTree]]
                  ) -> List[str]:
        """Chunked bulk ingest (order-preserving fingerprints).

        Documents are appended to the heap and committed to the catalog in
        chunks of ``chunk_docs``; each chunk is fsync'd before its catalog
        transaction, so a kill at any point loses at most the in-flight
        chunk and never corrupts the store."""
        self._require_writable()
        fingerprints: List[str] = []
        chunk: List[Tuple[str, FrozenTree]] = []
        with obs_span("storage.put_trees"):
            with self._lock:
                for tree in trees:
                    frozen = tree.freeze() if isinstance(tree, XMLTree) else tree
                    fingerprint = frozen.fingerprint()
                    fingerprints.append(fingerprint)
                    if self._document_row(fingerprint) is not None or any(
                            fp == fingerprint for fp, _ in chunk):
                        continue
                    chunk.append((fingerprint, frozen))
                    if len(chunk) >= self.chunk_docs:
                        self._commit_chunk(chunk)
                        chunk = []
                if chunk:
                    self._commit_chunk(chunk)
        return fingerprints

    def _commit_chunk(self, chunk: Sequence[Tuple[str, FrozenTree]]) -> None:
        """Append every record of ``chunk``, fsync the heap, then commit
        one catalog transaction (the atomic commit point)."""
        offset = self._data_end()
        rows: List[Tuple[str, int, int, int, int]] = []
        cursor = offset
        for fingerprint, frozen in chunk:
            record = encode_document(frozen)
            self._append_bytes(cursor, record)
            rows.append((fingerprint, 1 if frozen.ordered else 0,
                         frozen.n, cursor, len(record)))
            cursor += len(record)
        self._sync_heap()
        with self._conn:
            self._conn.executemany(
                "INSERT INTO documents VALUES (?, ?, ?, ?, ?)", rows)
            self._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'data_end'",
                (str(cursor),))

    def _append_bytes(self, offset: int, record: bytes) -> None:
        if self._membuf is not None:
            del self._membuf[offset:]
            self._membuf += record
            return
        assert self._heap is not None
        self._heap.seek(offset)
        view = memoryview(record)
        for start in range(0, len(record), _WRITE_SLICE):
            self._heap.write(view[start:start + _WRITE_SLICE])

    def _sync_heap(self) -> None:
        if self._heap is not None:
            self._heap.flush()
            os.fsync(self._heap.fileno())

    # ------------------------------------------------------------------ #
    # Document reads
    # ------------------------------------------------------------------ #

    def _document_row(self, fingerprint: str
                      ) -> Optional[Tuple[int, int, int]]:
        row = self._conn.execute(
            "SELECT nodes, offset, length FROM documents "
            "WHERE fingerprint = ?", (fingerprint,)).fetchone()
        return None if row is None else (row[0], row[1], row[2])

    def _record_view(self, offset: int, length: int) -> memoryview:
        if self._membuf is not None:
            return memoryview(self._membuf)[offset:offset + length]
        if self._heap is None:
            raise StoreError("store heap file is missing")
        if self._mmap is None or offset + length > self._mapped:
            if self._mmap is not None:
                self._mmap.close()
            self._heap.seek(0, os.SEEK_END)
            size = self._heap.tell()
            if offset + length > size:
                raise StoreError(
                    f"catalog row points past the heap "
                    f"({offset + length} > {size} bytes)")
            self._mmap = mmap.mmap(self._heap.fileno(), size,
                                   access=mmap.ACCESS_READ)
            self._mapped = size
        return memoryview(self._mmap)[offset:offset + length]

    def has_tree(self, fingerprint: str) -> bool:
        with self._lock:
            return self._document_row(fingerprint) is not None

    def tree_fingerprints(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT fingerprint FROM documents ORDER BY offset").fetchall()
        return [row[0] for row in rows]

    def get_frozen(self, fingerprint: str) -> FrozenTree:
        """The stored :class:`FrozenTree` for ``fingerprint`` (per-label
        index warm, fingerprint cache seeded from the catalog key).
        Raises :class:`UnknownDocumentError` for absent fingerprints."""
        with obs_span("storage.get_tree", fingerprint=fingerprint[:12]):
            with self._lock:
                row = self._document_row(fingerprint)
                if row is None:
                    self.stats.miss("store")
                    raise UnknownDocumentError(fingerprint)
                _, offset, length = row
                view = self._record_view(offset, length)
                frozen = decode_document(view)
                self.stats.hit("store")
                self.stats.count("store_bytes", length)
            frozen._fingerprint = fingerprint
            return frozen

    def load_tree(self, fingerprint: str) -> XMLTree:
        """The stored document thawed back to a mutable-API
        :class:`XMLTree` (fingerprint cache pre-seeded — addressing and
        result-cache keys never re-hash the document)."""
        return self.get_frozen(fingerprint).thaw()

    def intervals(self, fingerprint: str) -> Tuple[Tuple[int, ...],
                                                   Tuple[int, ...]]:
        """The pre/post interval columns alone — the columnar access path
        for structural joins; no other section is decoded."""
        with self._lock:
            row = self._document_row(fingerprint)
            if row is None:
                self.stats.miss("store")
                raise UnknownDocumentError(fingerprint)
            nodes, offset, length = row
            view = self._record_view(offset, length)
            pre, post = decode_intervals(view)
            self.stats.hit("store")
            self.stats.count("store_bytes", 8 * nodes)
        return pre, post

    # ------------------------------------------------------------------ #
    # Compiled settings
    # ------------------------------------------------------------------ #

    def put_setting(self, setting: Union[CompiledSetting,
                                         DataExchangeSetting], *,
                    prewarm: bool = False) -> str:
        """Persist a compiled setting (compiling a plain setting first);
        returns its fingerprint.  Re-putting a fingerprint replaces the
        pickle — the stored plan state is whatever the caller last saved."""
        self._require_writable()
        with obs_span("storage.put_setting"):
            compiled = (setting if isinstance(setting, CompiledSetting)
                        else compile_setting(setting))
            fingerprint = compiled.setting.fingerprint()
            payload = pickle.dumps(compiled, pickle.HIGHEST_PROTOCOL)
            with self._lock, self._conn:
                self._conn.execute(
                    "INSERT OR REPLACE INTO settings VALUES (?, ?, ?)",
                    (fingerprint, 1 if prewarm else 0,
                     sqlite3.Binary(payload)))
        return fingerprint

    def get_setting(self, fingerprint: str) -> StoredSetting:
        with self._lock:
            row = self._conn.execute(
                "SELECT prewarm, payload FROM settings WHERE fingerprint = ?",
                (fingerprint,)).fetchone()
        if row is None:
            raise UnknownDocumentError(fingerprint)
        return StoredSetting(fingerprint, pickle.loads(row[1]), bool(row[0]))

    def settings(self) -> List[StoredSetting]:
        """Every persisted setting, unpickled plan-warm — the boot-restore
        input for :meth:`SettingRegistry.restore_from_store`."""
        with obs_span("storage.load_settings"):
            with self._lock:
                rows = self._conn.execute(
                    "SELECT fingerprint, prewarm, payload FROM settings "
                    "ORDER BY fingerprint").fetchall()
            return [StoredSetting(fp, pickle.loads(payload), bool(pre))
                    for fp, pre, payload in rows]

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def summary(self) -> dict:
        """Catalog totals plus the store's counter snapshot."""
        with self._lock:
            documents, nodes = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nodes), 0) "
                "FROM documents").fetchone()
            settings = self._conn.execute(
                "SELECT COUNT(*) FROM settings").fetchone()[0]
            data_end = self._data_end()
        out = {"store_documents": documents, "store_nodes": nodes,
               "store_settings": settings, "store_data_bytes": data_end}
        out.update(self.stats.snapshot())
        return out

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._mmap is not None:
                self._mmap.close()
                self._mmap = None
            if self._heap is not None:
                self._heap.close()
            self._conn.close()

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        where = ":memory:" if self.path is None else self.path
        mode = "ro" if self.read_only else "rw"
        return f"<CorpusStore {where} mode={mode}>"
