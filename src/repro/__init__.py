"""repro — a reproduction of Arenas & Libkin, *XML Data Exchange: Consistency
and Query Answering* (PODS 2005 / JACM 2008).

The recommended entry point is the **engine API** (:mod:`repro.engine`): it
separates the *compile-once* work derived from a setting ``(D_S, D_T, Σ_ST)``
— content-model NFAs, univocality analyses, STD classification, dichotomy
routing, consistency machinery — from the *per-request* work on source trees
and queries, and serves the whole pipeline through one object::

    from repro import ExchangeEngine, parse_dtd, std, DataExchangeSetting
    from repro import parse_pattern, pattern_query

    setting = DataExchangeSetting(source_dtd, target_dtd, [dependency])
    engine = ExchangeEngine(setting)          # compiles the setting once

    engine.classify().payload.tractable       # dichotomy routing (Thm 6.2)
    engine.check_consistency().payload        # auto strategy routing (Sec 4)
    engine.solve(tree).payload                # canonical solution (Sec 6.1)
    engine.certain_answers(tree, query).payload
    engine.certain_answers_batch(trees, query, parallel=4)

Every engine method returns an :class:`~repro.engine.EngineResult` (success
flag, payload, strategy used, timing, cache statistics).  The original
functional API (``check_consistency``, ``canonical_solution``,
``certain_answers``, …) remains fully supported — the engine delegates to it
— and is the right choice for one-shot scripts; see ``examples/quickstart.py``
for both styles side by side.

The package is organised in layers:

* :mod:`repro.xmlmodel`   — XML trees, attribute values (constants / nulls), DTDs;
* :mod:`repro.regexlang`  — regular expressions over element types, NFAs,
  Parikh images / semilinear sets, univocality (Definition 6.9);
* :mod:`repro.automata`   — unranked tree automata (Appendix A);
* :mod:`repro.patterns`   — tree-pattern formulae and CTQ//,∪ queries;
* :mod:`repro.exchange`   — data exchange settings, consistency (Section 4),
  canonical pre-solutions, the chase and certain answers (Sections 5–6);
* :mod:`repro.engine`     — the compiled, cached, batch-first facade over
  :mod:`repro.exchange`;
* :mod:`repro.service`    — the serving layer: async multi-setting facade,
  fingerprint-sharded routing, bounded caches, JSON-lines server/client;
* :mod:`repro.reductions` — the paper's hardness gadgets (3-SAT reductions);
* :mod:`repro.workloads`  — scalable workload generators for the benchmarks.

For a long-lived process serving many settings, hold one
:class:`repro.service.AsyncExchangeService` instead of bare engines::

    from repro.service import AsyncExchangeService

    async with AsyncExchangeService(max_compiled=64,
                                    result_cache_maxsize=1024) as service:
        fp = service.register(setting)
        result = await service.certain_answers(fp, tree, query)
"""

from . import generators, service
from .engine import (CacheStats, CompiledSetting, EngineResult, EngineStats,
                     ExchangeEngine, compile_setting)
from .exchange import (STD, CertainAnswers, ChaseError, ChaseResult,
                       DataExchangeSetting, ExchangeError, NoSolutionError,
                       canonical_pre_solution, canonical_solution,
                       certain_answer_boolean, certain_answers, chase,
                       check_consistency, check_consistency_general,
                       check_consistency_nested_relational, classify_setting,
                       naive_certain_answers, order_tree, pattern_satisfiable,
                       std, target_satisfiable)
from .patterns import (PatternPlan, PlanCache, Query, QueryPlan, Variable,
                       compile_pattern, compile_query, conjunction,
                       descendant, exists, node, parse_pattern,
                       pattern_query, union_query, wildcard)
from .regexlang import (is_univocal, parse_regex, c_value,
                        in_permutation_language)
from .service import AsyncExchangeService, SettingRegistry
from .xmlmodel import DTD, FrozenTree, Null, NullFactory, XMLTree, parse_dtd

__version__ = "1.3.0"

__all__ = [
    # XML model
    "XMLTree", "DTD", "parse_dtd", "Null", "NullFactory",
    # regular expressions
    "parse_regex", "is_univocal", "c_value", "in_permutation_language",
    # patterns and queries
    "parse_pattern", "node", "wildcard", "descendant", "Variable",
    "Query", "pattern_query", "conjunction", "exists", "union_query",
    # compiled plans
    "FrozenTree", "PatternPlan", "QueryPlan", "PlanCache",
    "compile_pattern", "compile_query",
    # engine
    "ExchangeEngine", "EngineResult", "EngineStats", "CompiledSetting",
    "compile_setting", "CacheStats",
    # generators
    "generators",
    # serving layer
    "service", "AsyncExchangeService", "SettingRegistry",
    # errors
    "ExchangeError", "ChaseError", "NoSolutionError",
    # exchange
    "STD", "std", "DataExchangeSetting",
    "canonical_pre_solution", "canonical_solution", "chase", "ChaseResult",
    "certain_answers", "certain_answer_boolean", "CertainAnswers",
    "order_tree", "check_consistency", "check_consistency_general",
    "check_consistency_nested_relational", "pattern_satisfiable",
    "target_satisfiable", "naive_certain_answers", "classify_setting",
    "__version__",
]
