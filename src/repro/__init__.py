"""repro — a reproduction of Arenas & Libkin, *XML Data Exchange: Consistency
and Query Answering* (PODS 2005 / JACM 2008).

The package is organised in layers:

* :mod:`repro.xmlmodel`   — XML trees, attribute values (constants / nulls), DTDs;
* :mod:`repro.regexlang`  — regular expressions over element types, NFAs,
  Parikh images / semilinear sets, univocality (Definition 6.9);
* :mod:`repro.automata`   — unranked tree automata (Appendix A);
* :mod:`repro.patterns`   — tree-pattern formulae and CTQ//,∪ queries;
* :mod:`repro.exchange`   — data exchange settings, consistency (Section 4),
  canonical pre-solutions, the chase and certain answers (Sections 5–6);
* :mod:`repro.reductions` — the paper's hardness gadgets (3-SAT reductions);
* :mod:`repro.workloads`  — scalable workload generators for the benchmarks.

Quickstart::

    from repro import parse_dtd, XMLTree, std, DataExchangeSetting
    from repro import certain_answers, parse_pattern, pattern_query, exists

    # see examples/quickstart.py for the full Figure 1 / Figure 2 scenario.
"""

from .exchange import (STD, CertainAnswers, ChaseResult, DataExchangeSetting,
                       canonical_pre_solution, canonical_solution,
                       certain_answer_boolean, certain_answers, chase,
                       check_consistency, check_consistency_general,
                       check_consistency_nested_relational, classify_setting,
                       naive_certain_answers, order_tree, pattern_satisfiable,
                       std, target_satisfiable)
from .patterns import (Query, Variable, conjunction, descendant, exists, node,
                       parse_pattern, pattern_query, union_query, wildcard)
from .regexlang import (is_univocal, parse_regex, c_value,
                        in_permutation_language)
from .xmlmodel import DTD, Null, NullFactory, XMLTree, parse_dtd

__version__ = "1.0.0"

__all__ = [
    # XML model
    "XMLTree", "DTD", "parse_dtd", "Null", "NullFactory",
    # regular expressions
    "parse_regex", "is_univocal", "c_value", "in_permutation_language",
    # patterns and queries
    "parse_pattern", "node", "wildcard", "descendant", "Variable",
    "Query", "pattern_query", "conjunction", "exists", "union_query",
    # exchange
    "STD", "std", "DataExchangeSetting",
    "canonical_pre_solution", "canonical_solution", "chase", "ChaseResult",
    "certain_answers", "certain_answer_boolean", "CertainAnswers",
    "order_tree", "check_consistency", "check_consistency_general",
    "check_consistency_nested_relational", "pattern_satisfiable",
    "target_satisfiable", "naive_certain_answers", "classify_setting",
    "__version__",
]
