"""ReproScope: stdlib-only tracing + metrics across engine → service → host.

Two instruments, one rule — *pay for what you use*:

* :mod:`repro.obs.trace` — request-scoped **spans** (``trace_id`` /
  ``span_id`` / parent, monotonic ``perf_counter`` timing) carried through
  async code by a ``contextvar``, across executor threads by
  ``current_context()`` / ``activate()``, and across the shard-host process
  boundary inside the length-prefixed pickle frames, so one request
  reconstructs as one tree no matter how many processes served it.
  Disabled (the default), ``span()`` hands out a shared no-op and costs one
  boolean check; ``timer()`` always times (it feeds
  ``EngineResult.elapsed``) but records a span only when tracing is on.
* :mod:`repro.obs.metrics` — thread-safe counters, gauges and fixed-bucket
  histograms (p50/p90/p99 derivable without storing samples), a registry
  snapshot the server's ``stats`` op exposes, and an event-loop lag probe.
  Cache counters stay in :class:`~repro.engine.stats.CacheStats` — the
  registry aggregates *around* them, never instead of them (RL004).

Surfaces: ``--trace PATH`` on the server and ``bench_service.py`` writes
span records as JSON lines; the ``trace_dump`` wire op returns the
in-memory ring buffer; ``python -m repro.obs.report`` renders a dump as a
per-phase latency table and a collapsed-stack file for flamegraph tools;
a configurable slow-request threshold logs the full span tree of
offending requests.  See ROADMAP "Observability" for the span taxonomy.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      loop_lag_probe, registry)
from .trace import (Span, Tracer, activate, capture, configure,
                    current_context, disable, drain, emit, enabled,
                    format_trace, ingest, records, span, timer)

__all__ = [
    "Span", "Tracer", "activate", "capture", "configure", "current_context",
    "disable", "drain", "emit", "enabled", "format_trace", "ingest",
    "records", "span", "timer",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "loop_lag_probe",
    "registry",
]
