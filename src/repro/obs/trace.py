"""Zero-dependency spans with cross-thread and cross-process propagation.

A **span** is one timed phase of one request: it has a ``trace_id`` shared
by every span of the request, its own ``span_id``, its parent's id (so the
request reconstructs as a tree), a name from the taxonomy in ROADMAP
"Observability", and a duration measured on ``time.perf_counter()`` —
never the wall clock (RL006): monotonic durations plus parent links are
exactly the representation that survives process boundaries, where
absolute ``perf_counter`` readings are not comparable.

The active span travels in a :mod:`contextvars` variable, so ``async``
code inherits it for free (``create_task`` copies the context).  Executor
threads and worker processes do **not** inherit it — the caller captures
:func:`current_context` and re-parents with :func:`activate` on the other
side; the shard host ships the context inside its pickle frames and the
worker replies with the spans it captured (:func:`capture`), which the
supervisor :func:`ingest`\\ s into one tree.

Pay-for-what-you-use: while tracing is disabled (the default),
:func:`span` returns a shared no-op after one boolean check and
:func:`timer` returns a bare two-``perf_counter`` stopwatch — the always-on
clock behind ``EngineResult.elapsed``.  :func:`configure` turns recording
on: finished spans land in a bounded ring buffer (served by the server's
``trace_dump`` op), optionally in a JSON-lines file (``--trace PATH``),
optionally in a per-span latency histogram, and a request slower than
``slow_threshold`` seconds logs its full span tree.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Union)

__all__ = [
    "Span", "Tracer", "activate", "capture", "configure", "current_context",
    "disable", "drain", "emit", "enabled", "format_trace", "ingest",
    "records", "span", "timer",
]

#: A serializable handle to the active span: ``(trace_id, span_id)``.
SpanContext = Tuple[str, str]

#: The active span of the calling task/thread (task-local under asyncio).
_CURRENT: "ContextVar[Optional[SpanContext]]" = ContextVar(
    "repro_obs_span", default=None)

_LOCAL = threading.local()

_IDS = itertools.count(1)


def _new_id() -> str:
    """Process-unique span/trace id; the pid prefix keeps ids unique across
    the fork boundary (a worker's counter restarts, its pid differs)."""
    return f"{os.getpid():x}-{next(_IDS):x}"


# --------------------------------------------------------------------- #
# Span objects
# --------------------------------------------------------------------- #

class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Timer:
    """The always-on stopwatch behind :func:`timer` when tracing is off:
    two ``perf_counter`` reads and an ``elapsed`` property, nothing else."""

    __slots__ = ("started", "ended")

    def __init__(self) -> None:
        self.started = 0.0
        self.ended: Optional[float] = None

    def __enter__(self) -> "_Timer":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.ended = time.perf_counter()

    def annotate(self, **attrs: Any) -> "_Timer":
        return self

    @property
    def elapsed(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started


class Span:
    """One recording span; use as a context manager.

    On ``__enter__`` it parents itself under the calling context's active
    span (or starts a new trace) and becomes the active span; on
    ``__exit__`` it restores its parent and hands its record to the tracer.
    """

    __slots__ = ("name", "attrs", "trace_id", "span_id", "parent_id",
                 "started", "ended", "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: Optional[str] = None
        self.started = 0.0
        self.ended: Optional[float] = None
        self._tracer = tracer
        self._token: Any = None

    def __enter__(self) -> "Span":
        parent = _CURRENT.get()
        if parent is None:
            self.trace_id = _new_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = parent
        self.span_id = _new_id()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        self.ended = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        try:
            _CURRENT.reset(self._token)
        except ValueError:  # pragma: no cover - exited in a foreign context
            _CURRENT.set(None if self.parent_id is None
                         else (self.trace_id, self.parent_id))
        self._tracer._finish(self)

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value attributes to the span record."""
        self.attrs.update(attrs)
        return self

    @property
    def elapsed(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started


# --------------------------------------------------------------------- #
# The tracer
# --------------------------------------------------------------------- #

class Tracer:
    """Collects finished span records: ring buffer, optional JSON-lines
    file, optional metrics hook, optional slow-request tree log."""

    def __init__(self, buffer_size: int = 4096) -> None:
        self._lock = threading.Lock()
        self._buffer: "deque[Dict[str, Any]]" = deque(maxlen=buffer_size)
        self._file: Any = None
        self._metrics_hook: Optional[Callable[[Dict[str, Any]], None]] = None
        self._slow_threshold: Optional[float] = None
        self._slow_sink: Optional[Callable[[str], None]] = None

    # -- record intake ------------------------------------------------- #

    def _finish(self, span: Span) -> None:
        record: Dict[str, Any] = {
            "trace": span.trace_id, "span": span.span_id,
            "parent": span.parent_id, "name": span.name,
            "start": span.started,
            "dur": (span.ended or span.started) - span.started,
            "pid": os.getpid(),
        }
        if span.attrs:
            record["attrs"] = span.attrs
        self._store(record)

    def _store(self, record: Dict[str, Any]) -> None:
        captured = getattr(_LOCAL, "capture", None)
        if captured is not None:
            # Worker-side request capture: the record ships back over the
            # pipe instead of landing in this process's buffer.
            captured.append(record)
            return
        slow_tree: Optional[str] = None
        with self._lock:
            self._buffer.append(record)
            if self._file is not None:
                try:
                    self._file.write(json.dumps(record) + "\n")
                except (OSError, ValueError):  # pragma: no cover - sink gone
                    self._file = None
            if (self._slow_threshold is not None
                    and record["parent"] is None
                    and record["dur"] >= self._slow_threshold):
                related = [item for item in self._buffer
                           if item["trace"] == record["trace"]]
                slow_tree = format_trace(related)
        if self._metrics_hook is not None:
            self._metrics_hook(record)
        if slow_tree is not None:
            sink = self._slow_sink or _default_slow_sink
            sink(f"slow request ({record['dur'] * 1000:.1f} ms "
                 f">= {self._slow_threshold * 1000:.1f} ms):\n{slow_tree}")

    def ingest(self, items: Iterable[Dict[str, Any]]) -> None:
        """Adopt span records produced elsewhere (a worker process)."""
        for record in items:
            if isinstance(record, dict) and "span" in record:
                self._store(record)

    # -- record egress ------------------------------------------------- #

    def records(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """A snapshot of the ring buffer (most recent ``limit`` records)."""
        with self._lock:
            items = list(self._buffer)
        if limit is not None and limit >= 0:
            items = items[-limit:]
        return items

    def drain(self) -> List[Dict[str, Any]]:
        """Return and clear the ring buffer."""
        with self._lock:
            items = list(self._buffer)
            self._buffer.clear()
        return items

    # -- configuration ------------------------------------------------- #

    def reconfigure(self, buffer_size: int, trace_path: Optional[str],
                    slow_threshold: Optional[float],
                    slow_sink: Optional[Callable[[str], None]],
                    metrics_hook: Optional[Callable[[Dict[str, Any]], None]]
                    ) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:  # pragma: no cover - sink gone
                    pass
            self._file = (open(trace_path, "a", buffering=1)
                          if trace_path else None)
            self._buffer = deque(self._buffer, maxlen=buffer_size)
            self._slow_threshold = slow_threshold
            self._slow_sink = slow_sink
            self._metrics_hook = metrics_hook


def _default_slow_sink(text: str) -> None:
    sys.stderr.write(text + "\n")


_TRACER = Tracer()
_ENABLED = False


# --------------------------------------------------------------------- #
# Module-level API
# --------------------------------------------------------------------- #

def enabled() -> bool:
    """Is span recording on?"""
    return _ENABLED


def span(name: str, **attrs: Any) -> Union[Span, _NullSpan]:
    """A recording span while tracing is enabled; a shared no-op
    otherwise.  The disabled path is one boolean check — put these freely
    on hot paths (the <2% engine-bench budget assumes exactly that)."""
    if not _ENABLED:
        return _NULL_SPAN
    return Span(_TRACER, name, attrs)


def timer(name: str, **attrs: Any) -> Union[Span, _Timer]:
    """An **always-timing** context manager with an ``elapsed`` property.

    This is the one clock behind ``EngineResult.elapsed``: disabled, it is
    a bare perf-counter stopwatch; enabled, the same timing is additionally
    recorded as a span under the active trace."""
    if not _ENABLED:
        return _Timer()
    return Span(_TRACER, name, attrs)


def emit(name: str, started: float, ended: float, **attrs: Any) -> None:
    """Record a span retroactively from explicit ``perf_counter`` readings
    (e.g. executor queueing: the wait is only measurable once it is over).
    Parents under the calling context's active span."""
    if not _ENABLED:
        return
    parent = _CURRENT.get()
    if parent is None:
        trace_id, parent_id = _new_id(), None
    else:
        trace_id, parent_id = parent
    record: Dict[str, Any] = {
        "trace": trace_id, "span": _new_id(), "parent": parent_id,
        "name": name, "start": started, "dur": max(0.0, ended - started),
        "pid": os.getpid(),
    }
    if attrs:
        record["attrs"] = attrs
    _TRACER._store(record)


def current_context() -> Optional[SpanContext]:
    """The active span as a picklable ``(trace_id, span_id)`` — capture it
    before handing work to another thread or process.  ``None`` while
    tracing is disabled or no span is open."""
    if not _ENABLED:
        return None
    return _CURRENT.get()


@contextmanager
def activate(context: Optional[Sequence[str]]) -> Iterator[None]:
    """Re-parent the calling thread under a captured span context: spans
    opened inside the block join that trace as children."""
    if context is None:
        yield
        return
    token = _CURRENT.set((context[0], context[1]))
    try:
        yield
    finally:
        try:
            _CURRENT.reset(token)
        except ValueError:  # pragma: no cover - crossed contexts
            _CURRENT.set(None)


@contextmanager
def capture() -> Iterator[List[Dict[str, Any]]]:
    """Worker-side request capture: force tracing on for the block and
    divert the calling thread's span records into the yielded list instead
    of the process-local buffer — the shard host ships that list back to
    the supervisor, which :func:`ingest`\\ s it.

    Toggles the process-wide enable flag, so it belongs in the serial
    worker loop (where the request owns the process), not next to
    concurrent request threads."""
    global _ENABLED
    captured: List[Dict[str, Any]] = []
    previous = getattr(_LOCAL, "capture", None)
    was_enabled = _ENABLED
    _LOCAL.capture = captured
    _ENABLED = True
    try:
        yield captured
    finally:
        _ENABLED = was_enabled
        _LOCAL.capture = previous


def configure(enabled: bool = True, *, buffer_size: int = 4096,
              trace_path: Optional[str] = None,
              slow_threshold: Optional[float] = None,
              slow_sink: Optional[Callable[[str], None]] = None,
              observe_metrics: bool = True) -> None:
    """Turn span recording on (or off) and wire the sinks.

    ``trace_path`` appends every finished span as one JSON line;
    ``slow_threshold`` (seconds) logs the full span tree of any root span
    at least that slow to ``slow_sink`` (default: stderr);
    ``observe_metrics`` feeds every span duration into the
    ``span.<name>`` histogram of the global metrics registry."""
    global _ENABLED
    metrics_hook: Optional[Callable[[Dict[str, Any]], None]] = None
    if enabled and observe_metrics:
        from .metrics import registry as metrics_registry
        metrics_hook = metrics_registry.observe_span
    _TRACER.reconfigure(buffer_size, trace_path if enabled else None,
                        slow_threshold if enabled else None,
                        slow_sink, metrics_hook)
    _ENABLED = enabled


def disable() -> None:
    """Turn tracing off and close the file sink (buffer survives until the
    next :func:`configure`; :func:`drain` empties it)."""
    configure(enabled=False)


def records(limit: Optional[int] = None) -> List[Dict[str, Any]]:
    return _TRACER.records(limit)


def drain() -> List[Dict[str, Any]]:
    return _TRACER.drain()


def ingest(items: Iterable[Dict[str, Any]]) -> None:
    _TRACER.ingest(items)


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #

def format_trace(trace_records: Sequence[Dict[str, Any]]) -> str:
    """One trace's records as an indented tree with per-span durations.

    Cross-process traces are ordered by the parent links (and, between
    siblings of the same process, by start time) — absolute ``start``
    values are never compared across pids."""
    by_id = {record["span"]: record for record in trace_records}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for record in trace_records:
        parent = record["parent"] if record["parent"] in by_id else None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda item: (item["pid"], item["start"]))
    lines: List[str] = []

    def render(record: Dict[str, Any], depth: int) -> None:
        attrs = record.get("attrs") or {}
        suffix = "".join(f" {key}={value}" for key, value in attrs.items())
        lines.append(f"{'  ' * depth}{record['name']} "
                     f"{record['dur'] * 1000:.3f} ms "
                     f"[pid {record['pid']}]{suffix}")
        for child in children.get(record["span"], ()):
            render(child, depth + 1)

    for root in children.get(None, ()):
        render(root, 0)
    return "\n".join(lines)
