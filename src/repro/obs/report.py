"""Render a span dump: per-phase latency table + collapsed flamegraph stacks.

Consumes the JSON-lines span records written by ``--trace PATH`` (server or
``bench_service.py``) or returned by the ``trace_dump`` wire op::

    python -m repro.obs.report span_dump.jsonl
    python -m repro.obs.report span_dump.jsonl --markdown report.md \\
        --collapsed spans.collapsed

The table groups spans by name — count, total, mean, p50/p90/p99 — computed
exactly from the dump's raw durations (offline, the samples are all here; the
in-process :class:`~repro.obs.metrics.Histogram` is for live estimates).
``--collapsed`` writes the standard semicolon-separated stack format
(``root;child;leaf <value>``, value = self-time in microseconds), consumable
by ``flamegraph.pl``, speedscope, inferno and friends.  Parent links are the
only cross-record relation used, so dumps mixing supervisor and worker pids
render as single trees.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .trace import format_trace

__all__ = ["load_records", "phase_rows", "render_table",
           "collapsed_stacks", "main"]

#: How deep a parent chain may go before it is declared cyclic/corrupt.
_MAX_DEPTH = 256


def load_records(path: str) -> List[Dict[str, Any]]:
    """Parse a JSON-lines span dump, skipping unparseable lines."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "span" in record \
                    and "name" in record and "dur" in record:
                records.append(record)
    return records


def _sample_quantile(ordered: Sequence[float], q: float) -> float:
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def phase_rows(records: Sequence[Dict[str, Any]]
               ) -> List[Tuple[str, int, float, float, float, float, float]]:
    """``(name, count, total_ms, mean_ms, p50_ms, p90_ms, p99_ms)`` per
    span name, heaviest total first."""
    by_name: Dict[str, List[float]] = {}
    for record in records:
        by_name.setdefault(record["name"], []).append(float(record["dur"]))
    rows = []
    for name, durations in by_name.items():
        durations.sort()
        total = sum(durations)
        rows.append((name, len(durations), total * 1000,
                     total / len(durations) * 1000,
                     _sample_quantile(durations, 0.50) * 1000,
                     _sample_quantile(durations, 0.90) * 1000,
                     _sample_quantile(durations, 0.99) * 1000))
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows


def render_table(rows: Sequence[Tuple[str, int, float, float, float, float,
                                      float]],
                 markdown: bool = False) -> str:
    """The phase table as aligned text or a GitHub-flavoured markdown
    table (all latencies in milliseconds)."""
    header = ("phase", "count", "total ms", "mean ms", "p50 ms", "p90 ms",
              "p99 ms")
    body = [(name, str(count), f"{total:.3f}", f"{mean:.3f}", f"{p50:.3f}",
             f"{p90:.3f}", f"{p99:.3f}")
            for name, count, total, mean, p50, p90, p99 in rows]
    if markdown:
        lines = ["| " + " | ".join(header) + " |",
                 "| " + " | ".join(["---"] * len(header)) + " |"]
        lines += ["| " + " | ".join(row) + " |" for row in body]
        return "\n".join(lines)
    widths = [max(len(header[col]), *(len(row[col]) for row in body))
              if body else len(header[col]) for col in range(len(header))]
    lines = ["  ".join(header[col].ljust(widths[col])
                       for col in range(len(header)))]
    for row in body:
        lines.append("  ".join(
            row[col].ljust(widths[col]) if col == 0
            else row[col].rjust(widths[col]) for col in range(len(row))))
    return "\n".join(lines)


def collapsed_stacks(records: Sequence[Dict[str, Any]]) -> Dict[str, int]:
    """Aggregate ``root;child;leaf -> self-time µs`` flamegraph stacks.

    Self-time is a span's duration minus its children's (clamped at zero:
    concurrent children can legitimately overlap their parent).  A record
    whose parent is missing from the dump roots its own stack — the ring
    buffer may have evicted an old parent — so no sample is dropped."""
    by_id = {record["span"]: record for record in records}
    child_time: Dict[str, float] = {}
    for record in records:
        parent = record.get("parent")
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + record["dur"]
    stacks: Dict[str, int] = {}
    for record in records:
        names = [record["name"]]
        cursor = record
        for _ in range(_MAX_DEPTH):
            parent = by_id.get(cursor.get("parent"))
            if parent is None:
                break
            names.append(parent["name"])
            cursor = parent
        stack = ";".join(reversed(names))
        self_time = max(0.0, record["dur"]
                        - child_time.get(record["span"], 0.0))
        stacks[stack] = stacks.get(stack, 0) + int(round(self_time * 1e6))
    return stacks


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("dump", help="JSON-lines span dump (--trace output)")
    parser.add_argument("--markdown", metavar="PATH", default=None,
                        help="also write the table as a markdown file")
    parser.add_argument("--collapsed", metavar="PATH", default=None,
                        help="write collapsed flamegraph stacks to PATH")
    parser.add_argument("--tree", action="store_true",
                        help="also print every trace as an indented tree")
    args = parser.parse_args(argv)

    try:
        records = load_records(args.dump)
    except OSError as error:
        print(f"cannot read {args.dump}: {error}", file=sys.stderr)
        return 2
    if not records:
        print(f"no span records in {args.dump}", file=sys.stderr)
        return 2

    rows = phase_rows(records)
    print(render_table(rows))
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(render_table(rows, markdown=True) + "\n")
    if args.collapsed:
        stacks = collapsed_stacks(records)
        with open(args.collapsed, "w") as handle:
            for stack, value in sorted(stacks.items()):
                handle.write(f"{stack} {value}\n")
    if args.tree:
        traces: Dict[str, List[Dict[str, Any]]] = {}
        for record in records:
            traces.setdefault(record.get("trace", "?"), []).append(record)
        for trace_id, trace_records in traces.items():
            print(f"\ntrace {trace_id}")
            print(format_trace(trace_records))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
