"""Thread-safe counters, gauges and fixed-bucket histograms.

The histogram stores only per-bucket tallies (plus count/sum/min/max), so
p50/p90/p99 are derivable by linear interpolation inside the landing
bucket **without storing samples** — constant memory per metric no matter
how many requests pass through.  Bucket semantics are ``le`` (a value
equal to a bound lands in that bound's bucket), the last bound is always
``+inf``, and quantiles are clamped to the observed min/max so edge
observations (0, exact bounds, ``inf``) answer exactly.

This module **augments** the engine's cache accounting, it does not
replace it: ``hits``/``misses``/``evictions`` keep flowing through
:class:`~repro.engine.stats.CacheStats` (RL004), and the obs registry
carries what CacheStats cannot — latency distributions (every finished
span feeds ``span.<name>`` via :meth:`MetricsRegistry.observe_span`),
point-in-time gauges (per-worker in-flight depth in the shard host), and
the event-loop lag probe (:func:`loop_lag_probe`).
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "loop_lag_probe", "registry", "DEFAULT_LATENCY_BOUNDS"]

#: Exponential latency buckets (seconds), 100 µs … 10 s, then overflow.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, math.inf)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount!r})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value that can go both ways (queue depth, lag)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with quantiles but no stored samples.

    ``bounds`` are ascending upper bucket bounds; ``math.inf`` is appended
    when missing, so no observation is ever dropped.  ``le`` semantics: an
    observation equal to a bound counts in that bound's bucket.
    """

    __slots__ = ("bounds", "_lock", "_tallies", "_observations", "_total",
                 "_low", "_high")

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        chosen = tuple(bounds) if bounds is not None \
            else DEFAULT_LATENCY_BOUNDS
        if not chosen:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b > a for b, a in zip(chosen, chosen[1:])):
            raise ValueError(f"bucket bounds must be ascending: {chosen!r}")
        if chosen[-1] != math.inf:
            chosen = chosen + (math.inf,)
        self.bounds = chosen
        self._lock = threading.Lock()
        self._tallies = [0] * len(chosen)
        self._observations = 0
        self._total = 0.0
        self._low = math.inf
        self._high = -math.inf

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._tallies[index] += 1
            self._observations += 1
            self._total += value
            if value < self._low:
                self._low = value
            if value > self._high:
                self._high = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._observations

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (``0 < q <= 1``) interpolated inside the
        landing bucket and clamped to the observed range; ``None`` while
        empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q!r}")
        with self._lock:
            observations = self._observations
            tallies = list(self._tallies)
            low, high = self._low, self._high
        if observations == 0:
            return None
        rank = max(1, math.ceil(q * observations))
        cumulative = 0
        for index, tally in enumerate(tallies):
            if tally == 0:
                continue
            previous = cumulative
            cumulative += tally
            if cumulative >= rank:
                lower = 0.0 if index == 0 else self.bounds[index - 1]
                upper = self.bounds[index]
                if math.isinf(upper):
                    estimate = high
                else:
                    fraction = (rank - previous) / tally
                    estimate = lower + (upper - lower) * fraction
                return min(max(estimate, low), high)
        return high  # pragma: no cover - cumulative always reaches rank

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            observations = self._observations
            total = self._total
            low, high = self._low, self._high
            tallies = list(self._tallies)
        view: Dict[str, Any] = {
            "count": observations,
            "sum": total,
            "min": None if observations == 0 else low,
            "max": None if observations == 0 else high,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {("inf" if math.isinf(bound) else repr(bound)): tally
                        for bound, tally in zip(self.bounds, tallies)},
        }
        return view


class MetricsRegistry:
    """Named instruments behind one lock; same-name calls return the same
    instrument, cross-kind reuse of a name is a loud error."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _obtain(self, name: str, kind: type, *args: Any) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(*args)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} already exists as "
                    f"{type(instrument).__name__}, not {kind.__name__}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._obtain(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._obtain(name, Gauge)

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        return self._obtain(name, Histogram, bounds)

    def observe_span(self, record: Dict[str, Any]) -> None:
        """The tracer's metrics hook: every finished span feeds the
        ``span.<name>`` latency histogram."""
        self.histogram(f"span.{record['name']}").observe(record["dur"])

    def snapshot(self) -> Dict[str, Any]:
        """Every instrument's current value, JSON-ready, grouped by kind."""
        with self._lock:
            instruments = list(self._instruments.items())
        view: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in sorted(instruments):
            if isinstance(instrument, Counter):
                view["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                view["gauges"][name] = instrument.value
            else:
                view["histograms"][name] = instrument.snapshot()
        return view

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide registry: the tracer's span histograms, the host's
#: in-flight gauges and the loop-lag probe all land here, and the server's
#: ``stats`` op snapshots it.
registry = MetricsRegistry()


async def loop_lag_probe(interval: float = 0.25,
                         metrics: Optional[MetricsRegistry] = None) -> None:
    """Measure event-loop responsiveness forever (run as a task; cancel to
    stop): sleep ``interval`` seconds, record how much later than asked the
    loop actually resumed us — the lag every coroutine on that loop is
    experiencing — as the ``loop.lag`` gauge (latest reading) and the
    ``loop.lag.seconds`` histogram (distribution)."""
    instruments = metrics if metrics is not None else registry
    gauge = instruments.gauge("loop.lag")
    histogram = instruments.histogram("loop.lag.seconds")
    while True:
        before = time.perf_counter()
        await asyncio.sleep(interval)
        lag = max(0.0, time.perf_counter() - before - interval)
        gauge.set(lag)
        histogram.observe(lag)
