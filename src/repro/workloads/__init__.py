"""Scalable workload generators for the benchmark harness."""

from . import library, nested_relational

__all__ = ["library", "nested_relational"]
