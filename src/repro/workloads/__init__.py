"""Scalable workload generators for the benchmark harness."""

from . import generated, library, nested_relational

__all__ = ["generated", "library", "nested_relational"]
