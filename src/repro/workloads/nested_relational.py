"""Clio-style nested-relational workloads (Theorem 4.5, Corollary 6.11).

Nested-relational DTDs are the class handled by IBM's Clio system; the paper
proves that for them consistency is decidable in ``O(n·m²)`` (Theorem 4.5) and
certain answers are computable in polynomial time (Corollary 6.11).  This
module provides

* a concrete company/project scenario used by the example application and the
  integration tests,
* parametric generators of nested-relational settings of arbitrary DTD size
  ``n`` and dependency size ``m`` for the complexity-shape benchmarks
  (experiments E5 and E14).
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..patterns.parse import parse_pattern
from ..patterns.queries import Query, pattern_query
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from ..exchange.setting import DataExchangeSetting
from ..exchange.std import STD, std

__all__ = [
    "company_setting", "company_engine", "generate_company_source",
    "query_projects_of", "scaling_setting", "scaling_source",
]


# --------------------------------------------------------------------- #
# A concrete Clio-like scenario: company → staffing directory
# --------------------------------------------------------------------- #

def company_setting() -> DataExchangeSetting:
    """Source: departments with employees and projects; target: a staffing
    directory grouped by person with one ``position`` record per employment
    (salary becomes a null), plus a flat project registry."""
    source = DTD(
        root="company",
        rules={
            "company": "dept*",
            "dept": "employee* project*",
            "employee": "",
            "project": "",
        },
        attributes={
            "dept": ["dname"],
            "employee": ["ename", "role"],
            "project": ["pname", "budget"],
        },
    )
    target = DTD(
        root="directory",
        rules={
            "directory": "person* registry?",
            "person": "position+",
            "position": "",
            "registry": "entry*",
            "entry": "",
        },
        attributes={
            "person": ["name"],
            "position": ["dept", "role", "salary"],
            "registry": [],
            "entry": ["pname", "dept"],
        },
    )
    stds = [
        std("directory[person(@name=e)[position(@dept=d, @role=r, @salary=s)]]",
            "company[dept(@dname=d)[employee(@ename=e, @role=r)]]"),
        std("directory[registry[entry(@pname=p, @dept=d)]]",
            "company[dept(@dname=d)[project(@pname=p, @budget=b)]]"),
    ]
    return DataExchangeSetting(source, target, stds)


def company_engine() -> "ExchangeEngine":
    """The company scenario compiled into a ready-to-serve engine."""
    from ..engine import ExchangeEngine
    return ExchangeEngine(company_setting())


def generate_company_source(n_departments: int, employees_per_dept: int = 3,
                            projects_per_dept: int = 2, seed: int = 0) -> XMLTree:
    """A synthetic company document of the given shape."""
    rng = random.Random(seed)
    roles = ["engineer", "manager", "analyst", "designer"]
    tree = XMLTree("company", ordered=True)
    for d in range(n_departments):
        dept = tree.add_child(tree.root, "dept", {"dname": f"Dept-{d}"})
        for e in range(employees_per_dept):
            tree.add_child(dept, "employee", {
                "ename": f"Employee-{d}-{e}",
                "role": rng.choice(roles),
            })
        for p in range(projects_per_dept):
            tree.add_child(dept, "project", {
                "pname": f"Project-{d}-{p}",
                "budget": str(1000 * (p + 1)),
            })
    return tree


def query_projects_of(dept_name: str) -> Query:
    """All registered project names of a department (CTQ query)."""
    pattern = parse_pattern(
        f'directory[registry[entry(@pname=p, @dept="{dept_name}")]]')
    return pattern_query(pattern)


# --------------------------------------------------------------------- #
# Parametric generators for the complexity-shape benchmarks
# --------------------------------------------------------------------- #

def scaling_setting(n_levels: int, branching: int = 2,
                    n_stds: int = 4) -> DataExchangeSetting:
    """A nested-relational setting with DTD size growing in ``n_levels`` ×
    ``branching`` and ``n_stds`` copy-style dependencies.

    Source element types form a tree ``s_0 … s_{L·B}`` where each internal
    type has ``branching`` starred children and one required child; the target
    mirrors the structure with every child optional, so the setting is always
    consistent.  Used for the ``O(n·m²)`` consistency sweep (E5) and the
    polynomial certain-answer sweep (E12).
    """
    source_rules: Dict[str, str] = {}
    target_rules: Dict[str, str] = {}
    source_attrs: Dict[str, List[str]] = {}
    target_attrs: Dict[str, List[str]] = {}

    def children_names(prefix: str, level: int, index: int) -> List[str]:
        return [f"{prefix}{level + 1}_{index * branching + b}"
                for b in range(branching)]

    leaves: List[str] = []
    frontier = [("s0_0", "t0_0")]
    source_rules["s0_0"] = ""
    target_rules["t0_0"] = ""
    for level in range(n_levels):
        next_frontier = []
        for s_name, t_name in frontier:
            index = int(s_name.split("_")[1])
            s_children = children_names("s", level, index)
            t_children = children_names("t", level, index)
            source_rules[s_name] = " ".join(f"{c}*" for c in s_children)
            target_rules[t_name] = " ".join(f"{c}*" for c in t_children)
            for s_child, t_child in zip(s_children, t_children):
                source_rules.setdefault(s_child, "")
                target_rules.setdefault(t_child, "")
                source_attrs[s_child] = ["v"]
                target_attrs[t_child] = ["v", "w"]
                next_frontier.append((s_child, t_child))
        frontier = next_frontier
    leaves = [s for s, _ in frontier]

    source_dtd = DTD("s0_0", source_rules, source_attrs)
    target_dtd = DTD("t0_0", target_rules, target_attrs)

    stds: List[STD] = []
    first_level_pairs = [(f"s1_{b}", f"t1_{b}") for b in range(branching)]
    for i in range(n_stds):
        s_name, t_name = first_level_pairs[i % len(first_level_pairs)]
        stds.append(std(
            f"t0_0[{t_name}(@v=x{i}, @w=z{i})]",
            f"s0_0[{s_name}(@v=x{i})]",
        ))
    return DataExchangeSetting(source_dtd, target_dtd, stds)


def scaling_source(setting: DataExchangeSetting, fanout: int = 3,
                   seed: int = 0) -> XMLTree:
    """A source tree conforming to the source DTD of :func:`scaling_setting`,
    with ``fanout`` children per starred child type at the first level."""
    rng = random.Random(seed)
    dtd = setting.source_dtd
    tree = XMLTree(dtd.root, ordered=True)
    model = dtd.content_model(dtd.root)
    for symbol in sorted(model.alphabet()):
        for i in range(fanout):
            attrs = {name: f"{symbol}-{i}-{rng.randint(0, 999)}"
                     for name in sorted(dtd.attributes_of(symbol))}
            tree.add_child(tree.root, symbol, attrs)
    return tree
