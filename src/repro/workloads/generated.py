"""Generated (ScenarioForge) workloads: diverse seeded scenarios on demand.

Where :mod:`repro.workloads.library` and
:mod:`repro.workloads.nested_relational` provide *fixed* schemas with
scalable documents, this module provides whole scalable *families of
schemas* by delegating to :mod:`repro.generators` — the entry point the
benchmark's ``--generated N --seed S`` mode and exploratory scripts use.

Also runnable as a script for a quick look at what a seed produces::

    python -m repro.workloads.generated --seed 7 --count 2
"""

from __future__ import annotations

import argparse
import random
from typing import List, Optional

from ..generators import (GenerationError, Scenario, generate_scenario,
                          generate_tree, scenario_batch)

__all__ = ["generated_setting", "generated_engine", "generated_scenarios",
           "benchmark_workload"]


def generated_setting(seed: int, profile: str = "mixed"):
    """The data exchange setting of the scenario derived from ``seed``."""
    return generate_scenario(seed, profile=profile).setting


def generated_engine(seed: int, profile: str = "mixed") -> "ExchangeEngine":
    """A ready-to-serve engine over :func:`generated_setting`."""
    from ..engine import ExchangeEngine
    return ExchangeEngine(generated_setting(seed, profile))


def generated_scenarios(count: int, seed: int,
                        profile: str = "mixed") -> List[Scenario]:
    """``count`` reproducible scenarios (see :func:`repro.generators.scenario_batch`)."""
    return scenario_batch(count, seed=seed, profile=profile)


def benchmark_workload(seed: int, n_trees: int,
                       profile: str = "nested_relational") -> Scenario:
    """One scenario sized for throughput benchmarking.

    A single generated setting with ``n_trees`` heavy source trees (deep,
    branchy — per-tree chase work must dominate dispatch overhead for the
    executor comparison to mean anything).  Generated shapes vary wildly in
    how much work a conforming tree causes, so this deterministically
    probes derived seeds for a setting in a useful heaviness band.  All
    randomness is derived from ``seed`` — the workload is reproducible.
    """
    from ..patterns.evaluate import match_anywhere

    # n_trees stays out of the salt: the selected setting depends only on
    # (seed, profile), and batches of different sizes share a prefix.
    rng = random.Random(("bench", seed, profile).__repr__())
    knobs = dict(max_depth=8, max_repeat=12, value_pool=64)
    # Nested stars can explode combinatorially; the cap makes generation
    # abort such samples early (GenerationError) instead of materialising
    # millions of nodes — deterministically, so seed selection is stable.
    node_cap = 4000
    # Per-tree cost is driven by how often the STD source patterns fire
    # (presolution size → chase work), not by raw node count, and most
    # generated shapes fire rarely.  Probe derived seeds for one whose
    # per-tree match count lands in a band heavy enough to dwarf dispatch
    # overhead but light enough to keep a 50-tree batch in seconds.  The
    # probe is deterministic, so machine speed never changes which setting
    # a seed selects.
    band_low, band_high, band_sweet = 150, 800, 300
    scenario = None
    best, best_distance = None, float("inf")
    for attempt in range(40):
        candidate_seed = seed if attempt == 0 else rng.randrange(2 ** 31)
        candidate = generate_scenario(candidate_seed, profile=profile,
                                      n_trees=1, n_queries=1, n_elements=10,
                                      **knobs)
        probe_rng = random.Random(rng.randrange(2 ** 31))
        probe = []
        for _ in range(4):
            try:
                probe.append(generate_tree(candidate.setting.source_dtd,
                                           probe_rng.randrange(2 ** 31),
                                           max_nodes=node_cap, **knobs))
            except GenerationError:
                pass
        if not probe:
            continue  # every probe sample exploded: unusable shape
        per_tree = sum(len(match_anywhere(g.tree, dep.source))
                       for g in probe
                       for dep in candidate.setting.stds) / len(probe)
        distance = abs(per_tree - band_sweet)
        if distance < best_distance:
            best, best_distance = candidate, distance
        if band_low <= per_tree <= band_high:
            scenario = candidate
            break
    if scenario is None:
        scenario = best
    # Sample the batch from the same distribution the probe measured (no
    # heft filter — that would bias the batch heavier than the band
    # promised); only combinatorial outliers above the node cap are culled.
    dtd = scenario.setting.source_dtd
    collected = []
    attempts = 0
    while len(collected) < n_trees and attempts < 16 * n_trees:
        attempts += 1
        try:
            collected.append(generate_tree(dtd, rng.randrange(2 ** 31),
                                           max_nodes=node_cap, **knobs))
        except GenerationError:
            continue
    if len(collected) < n_trees:  # pragma: no cover - probe rules this out
        raise GenerationError(
            f"could only sample {len(collected)}/{n_trees} trees under "
            f"{node_cap} nodes for seed {seed}")
    return Scenario(scenario.seed, scenario.profile, scenario.setting,
                    [g.tree for g in collected], scenario.queries,
                    {**scenario.spec,
                     "trees": [{"seed": g.seed, **g.spec} for g in collected]})


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--count", type=int, default=1,
                        help="number of scenarios to summarise")
    parser.add_argument("--profile", default="mixed",
                        choices=("nested_relational", "general", "mixed"))
    args = parser.parse_args(argv)

    from ..engine import ExchangeEngine
    for scenario in generated_scenarios(args.count, args.seed, args.profile):
        engine = ExchangeEngine(scenario.setting)
        consistent = engine.check_consistency().payload
        print(scenario.describe())
        print(f"  setting fingerprint: {scenario.setting.fingerprint()[:16]}")
        print(f"  consistent: {consistent}")
        for index, tree in enumerate(scenario.source_trees):
            solved = engine.solve(tree)
            print(f"  tree[{index}] nodes={len(tree)} "
                  f"solve={'ok' if solved.ok else 'no-solution'}")
        for index, query in enumerate(scenario.queries):
            spec = scenario.spec["queries"][index]
            print(f"  query[{index}] {spec['fragment']}: {spec['text']}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
