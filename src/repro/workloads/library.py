"""The book/writer exchange scenario of Figures 1 and 2, made scalable.

The paper's running example restructures a bibliography grouped by book
(``db[book(@title)[author(@name, @aff)]]``) into one grouped by writer
(``bib[writer(@name)[work(@title, @year)]]``); the publication year is unknown
and becomes a null.  This module provides the two DTDs, the STD of
Example 3.4, a generator of source documents of arbitrary size (for the
scaling benchmarks of experiment E1) and the example queries discussed in the
introduction.
"""

from __future__ import annotations

import random
from typing import Optional

from ..patterns.parse import parse_pattern
from ..patterns.queries import Query, exists, pattern_query
from ..xmlmodel.dtd import DTD, parse_dtd
from ..xmlmodel.tree import XMLTree
from ..exchange.setting import DataExchangeSetting
from ..exchange.std import std

__all__ = [
    "source_dtd", "target_dtd", "library_setting", "library_engine",
    "figure_1_source", "generate_source", "query_writer_of",
    "query_works_in_year",
]

_SOURCE_DTD_TEXT = """
<!ELEMENT db (book*)>
<!ELEMENT book (author*)>
<!ATTLIST book title CDATA #REQUIRED>
<!ELEMENT author EMPTY>
<!ATTLIST author name CDATA #REQUIRED aff CDATA #REQUIRED>
"""

_TARGET_DTD_TEXT = """
<!ELEMENT bib (writer*)>
<!ELEMENT writer (work*)>
<!ATTLIST writer name CDATA #REQUIRED>
<!ELEMENT work EMPTY>
<!ATTLIST work title CDATA #REQUIRED year CDATA #REQUIRED>
"""


def source_dtd() -> DTD:
    """The source DTD of Figure 1 (a)."""
    return parse_dtd(_SOURCE_DTD_TEXT)


def target_dtd() -> DTD:
    """The target DTD of Figure 2 (a)."""
    return parse_dtd(_TARGET_DTD_TEXT)


def library_setting() -> DataExchangeSetting:
    """The data exchange setting of Example 3.4 (one fully-specified STD)."""
    dependency = std(
        "bib[writer(@name=y)[work(@title=x, @year=z)]]",
        "db[book(@title=x)[author(@name=y)]]",
    )
    return DataExchangeSetting(source_dtd(), target_dtd(), [dependency])


def library_engine() -> "ExchangeEngine":
    """The Example 3.4 setting compiled into a ready-to-serve engine."""
    from ..engine import ExchangeEngine
    return ExchangeEngine(library_setting())


def figure_1_source() -> XMLTree:
    """The exact source document of Figure 1 (b)."""
    return XMLTree.build(("db", [
        ("book", {"title": "Combinatorial Optimization"}, [
            ("author", {"name": "Papadimitriou", "aff": "UCB"}),
            ("author", {"name": "Steiglitz", "aff": "Princeton"}),
        ]),
        ("book", {"title": "Computational Complexity"}, [
            ("author", {"name": "Papadimitriou", "aff": "UCB"}),
        ]),
    ]))


def generate_source(n_books: int, authors_per_book: int = 2,
                    n_distinct_authors: Optional[int] = None,
                    seed: int = 0) -> XMLTree:
    """A synthetic bibliography with ``n_books`` books and
    ``authors_per_book`` authors each, drawn from a pool of
    ``n_distinct_authors`` names (defaults to ``max(4, n_books // 2)``)."""
    rng = random.Random(seed)
    pool_size = n_distinct_authors or max(4, n_books // 2)
    authors = [f"Author-{i}" for i in range(pool_size)]
    affiliations = [f"University-{i % 7}" for i in range(pool_size)]
    tree = XMLTree("db", ordered=True)
    for book_index in range(n_books):
        book = tree.add_child(tree.root, "book",
                              {"title": f"Book-{book_index}"})
        chosen = rng.sample(range(pool_size), k=min(authors_per_book, pool_size))
        for author_index in chosen:
            tree.add_child(book, "author", {
                "name": authors[author_index],
                "aff": affiliations[author_index],
            })
    return tree


def query_writer_of(title: str) -> Query:
    """“Who is the writer of the work named ``title``?” (introduction)."""
    pattern = parse_pattern(
        f'bib[writer(@name=w)[work(@title="{title}")]]')
    return pattern_query(pattern)


def query_works_in_year(year: str) -> Query:
    """“What are the works written in ``year``?” (introduction) — a query
    whose certain answer is empty because years are invented nulls."""
    pattern = parse_pattern(
        f'bib[writer(@name=w)[work(@title=t, @year="{year}")]]')
    return exists(["w"], pattern_query(pattern))
