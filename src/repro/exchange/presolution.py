"""Canonical pre-solutions ``cps(T)`` (paper, Section 6.1, Figure 5).

For a fully-specified STD ``ψ_T(x̄, z̄) :– ϕ_S(x̄, ȳ)`` and every pair of
tuples ``s̄, s̄'`` with ``T ⊨ ϕ_S(s̄, s̄')``, the tree ``T_{ψ_T(s̄, s̄'')}`` is
materialised, where ``s̄''`` is a tuple of fresh, pairwise-distinct nulls.
All these trees are then merged at their roots into a single unordered tree,
the *canonical pre-solution* ``cps(T)``.

``cps(T)`` is computable in polynomial time; it typically violates the target
DTD and is subsequently repaired by the chase (:mod:`repro.exchange.chase`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional

from ..patterns.formula import NodePattern, TreePattern, Variable
from ..patterns.plan import PatternPlan, shared_pattern_plan
from ..xmlmodel.frozen import FrozenTree
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import NullFactory, Value
from .setting import DataExchangeSetting
from .std import STD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine.compiled import CompiledSetting
    from ..engine.stats import CacheStats

__all__ = ["pattern_to_tree", "canonical_pre_solution", "PreSolutionError"]


class PreSolutionError(ValueError):
    """Raised when an STD is not fully specified (cps is undefined then)."""


def pattern_to_tree(pattern: TreePattern, assignment: Mapping[str, Value],
                    nulls: Optional[NullFactory] = None,
                    ordered: bool = False) -> XMLTree:
    """The tree ``T_{ϕ(s̄)}`` naturally associated with a pattern instance.

    The pattern must not use descendant or wildcard (Section 6.1); unassigned
    variables receive fresh nulls from ``nulls``.
    """
    factory = nulls or NullFactory()
    if pattern.uses_descendant() or pattern.uses_wildcard():
        raise PreSolutionError(
            "pattern_to_tree requires a pattern without descendant // and wildcard _")
    if not isinstance(pattern, NodePattern):  # pragma: no cover - defensive
        raise PreSolutionError(f"unexpected pattern shape: {pattern}")
    binding: Dict[str, Value] = dict(assignment)
    tree = XMLTree(pattern.attribute.label, ordered=ordered)
    _fill_attributes(tree, tree.root, pattern, binding, factory)
    for child in pattern.children:
        _build_node(tree, tree.root, child, binding, factory)
    return tree


def _build_node(tree: XMLTree, parent: int, pattern: TreePattern,
                binding: Dict[str, Value], factory: NullFactory) -> None:
    assert isinstance(pattern, NodePattern)
    node = tree.add_child(parent, pattern.attribute.label)
    _fill_attributes(tree, node, pattern, binding, factory)
    for child in pattern.children:
        _build_node(tree, node, child, binding, factory)


def _fill_attributes(tree: XMLTree, node: int, pattern: NodePattern,
                     binding: Dict[str, Value], factory: NullFactory) -> None:
    for attr_name, term in pattern.attribute.assignments:
        if isinstance(term, Variable):
            if term.name not in binding:
                binding[term.name] = factory.fresh()
            value = binding[term.name]
        else:
            value = term
        existing = tree.attribute(node, attr_name)
        if existing is not None and existing != value:
            raise PreSolutionError(
                f"conflicting values for @{attr_name} at a single pattern node")
        tree.set_attribute(node, attr_name, value)


def canonical_pre_solution(setting: DataExchangeSetting, source_tree: XMLTree,
                           nulls: Optional[NullFactory] = None,
                           compiled: Optional["CompiledSetting"] = None) -> XMLTree:
    """Compute ``cps(T)`` for a fully-specified setting (Section 6.1).

    The result is an *unordered* tree rooted at the target root element whose
    child subtrees are the instantiated right-hand sides of the STDs, one per
    satisfying source assignment.

    The source tree is frozen once and every STD's source pattern is
    evaluated as a compiled plan over that snapshot; ``compiled`` (a
    :class:`repro.engine.CompiledSetting` for this setting) supplies the
    plans pre-lowered at compile time, so the request path never touches
    the pattern AST.
    """
    if compiled is not None:
        compiled.check_owns(setting)
    factory = nulls or NullFactory()
    root_label = setting.target_dtd.root
    result = XMLTree(root_label, ordered=False)
    if compiled is None or not compiled.fully_specified:
        for dependency in setting.stds:
            if not dependency.is_fully_specified(root_label):
                raise PreSolutionError(
                    f"STD {dependency} is not fully specified; "
                    "canonical pre-solutions are defined for fully-specified STDs only")
    plans = (compiled.std_source_plans if compiled is not None
             else [shared_pattern_plan(dependency.source)
                   for dependency in setting.stds])
    stats = compiled.stats if compiled is not None else None
    frozen = source_tree.freeze()
    for dependency, plan in zip(setting.stds, plans):
        _instantiate_std(result, dependency, frozen, factory, plan, stats)
    return result


def _instantiate_std(result: XMLTree, dependency: STD, frozen: FrozenTree,
                     factory: NullFactory, plan: PatternPlan,
                     stats: Optional["CacheStats"] = None) -> None:
    target = dependency.target
    assert isinstance(target, NodePattern)
    source_vars = dependency.source_variables()
    var_slots = [(name, plan.slot_of(name)) for name in source_vars]
    seen: set = set()
    for row in plan.matches(frozen, stats=stats):
        # One instantiation per distinct tuple (s̄, s̄') of source values
        # (keyed on the value objects themselves — type-aware, never on
        # rendered representations).
        key = tuple(row[slot] for _, slot in var_slots)
        if key in seen:
            continue
        seen.add(key)
        binding: Dict[str, Value] = {name: row[slot]
                                     for name, slot in var_slots
                                     if row[slot] is not None}
        # Fresh nulls for the existential target variables z̄.
        for name in dependency.existential_variables():
            binding[name] = factory.fresh()
        instance = pattern_to_tree(target, binding, factory)
        # Merge at the root: graft each child subtree of the instance root.
        for attr_name, value in instance.attributes(instance.root).items():
            existing = result.attribute(result.root, attr_name)
            if existing is None:
                result.set_attribute(result.root, attr_name, value)
        for child in instance.children(instance.root):
            result.graft_subtree(result.root, instance, child)
