"""From unordered to ordered solutions (Proposition 5.2).

Query answering constructs *unordered* target trees.  Proposition 5.2 states
that any tree ``T |≈ D`` can be equipped, in polynomial time, with a sibling
order ``≺_sib`` such that the resulting ordered tree conforms to ``D`` in the
usual sense.  The paper's algorithm extends a prefix one symbol at a time,
checking at each step that the remaining multiset can still complete to a word
of the content model; we implement the equivalent search over pairs
(NFA state set, remaining Parikh vector) with memoisation, which yields the
same polynomial behaviour for a fixed DTD.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..regexlang.nfa import NFA, regex_to_nfa
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree

__all__ = ["order_word", "order_tree", "OrderingError"]


class OrderingError(ValueError):
    """Raised when the tree does not weakly conform to the DTD."""


def order_word(counts: Dict[str, int], nfa: NFA) -> Optional[List[str]]:
    """Find a word of ``L(nfa)`` with the given Parikh vector, or ``None``.

    This realises the per-node step of Proposition 5.2: a permutation of the
    children labels accepted by the content model.
    """
    start = nfa.epsilon_closure({nfa.start})
    memo: Dict[Tuple[FrozenSet[int], Tuple[Tuple[str, int], ...]], Optional[Tuple[str, ...]]] = {}

    def explore(states: FrozenSet[int],
                remaining: Tuple[Tuple[str, int], ...]) -> Optional[Tuple[str, ...]]:
        key = (states, remaining)
        if key in memo:
            return memo[key]
        if not remaining:
            result = () if any(s in nfa.accepting for s in states) else None
            memo[key] = result
            return result
        result = None
        for index, (symbol, count) in enumerate(remaining):
            nxt = nfa.step(states, symbol)
            if not nxt:
                continue
            if count == 1:
                new_remaining = remaining[:index] + remaining[index + 1:]
            else:
                new_remaining = (remaining[:index] + ((symbol, count - 1),)
                                 + remaining[index + 1:])
            tail = explore(nxt, new_remaining)
            if tail is not None:
                result = (symbol,) + tail
                break
        memo[key] = result
        return result

    remaining = tuple(sorted((s, c) for s, c in counts.items() if c))
    found = explore(start, remaining)
    return list(found) if found is not None else None


def order_tree(tree: XMLTree, dtd: DTD) -> XMLTree:
    """Compute a sibling ordering making the tree conform to ``D`` (ordered).

    Raises :class:`OrderingError` if the tree does not weakly conform to the
    DTD (Proposition 5.2 presupposes ``T |≈ D``).
    """
    ordered = tree.copy()
    ordered.ordered = True
    for node in list(ordered.nodes()):
        label = ordered.label(node)
        children = ordered.children(node)
        if not children:
            # Still must check that ε is allowed — conformance check below.
            continue
        counts: Dict[str, int] = {}
        by_label: Dict[str, List[int]] = {}
        for child in children:
            child_label = ordered.label(child)
            counts[child_label] = counts.get(child_label, 0) + 1
            by_label.setdefault(child_label, []).append(child)
        nfa = regex_to_nfa(dtd.content_model(label))
        word = order_word(counts, nfa)
        if word is None:
            raise OrderingError(
                f"children of a {label!r} node have no ordering in "
                f"L({dtd.content_model(label)}); the tree does not weakly conform")
        queues = {lbl: list(ids) for lbl, ids in by_label.items()}
        new_order = [queues[symbol].pop(0) for symbol in word]
        ordered.reorder_children(node, new_order)
    violations = dtd.conformance_violations(ordered, ordered=True)
    if violations:
        raise OrderingError("; ".join(violations))
    return ordered
