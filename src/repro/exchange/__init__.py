"""XML data exchange: settings, consistency, the chase and certain answers."""

from .certain_answers import CertainAnswers, certain_answer_boolean, certain_answers
from .chase import ChaseError, ChaseResult, canonical_solution, chase
from .consistency import (ConsistencyResult, check_consistency,
                          check_consistency_general, minimal_source_skeletons,
                          pattern_satisfiable, target_satisfiable)
from .dichotomy import DichotomyReport, classify_setting
from .errors import ChaseError, ExchangeError, NoSolutionError
from .naive import NaiveResult, enumerate_target_trees, naive_certain_answers
from .nested_relational import (NestedRelationalConsistency,
                                check_consistency_nested_relational)
from .ordering import OrderingError, order_tree, order_word
from .presolution import PreSolutionError, canonical_pre_solution, pattern_to_tree
from .setting import DataExchangeSetting, SolutionReport
from .std import STD, classify_std, std

__all__ = [
    "STD", "std", "classify_std",
    "DataExchangeSetting", "SolutionReport",
    "canonical_pre_solution", "pattern_to_tree", "PreSolutionError",
    "chase", "canonical_solution", "ChaseResult",
    "ExchangeError", "ChaseError", "NoSolutionError",
    "certain_answers", "certain_answer_boolean", "CertainAnswers",
    "order_tree", "order_word", "OrderingError",
    "check_consistency", "check_consistency_general", "ConsistencyResult",
    "check_consistency_nested_relational", "NestedRelationalConsistency",
    "pattern_satisfiable", "target_satisfiable", "minimal_source_skeletons",
    "naive_certain_answers", "enumerate_target_trees", "NaiveResult",
    "classify_setting", "DichotomyReport",
]
