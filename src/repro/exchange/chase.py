"""The chase for XML data exchange: ``ChangeAtt`` / ``ChangeReg`` (Figure 7).

Starting from the canonical pre-solution ``cps(T)``, the chase repeatedly
repairs violations of the target DTD:

* **ChangeAtt** (easy violations): a node misses attributes required by
  ``R(λ(v))`` — add them with fresh nulls; a node carries an attribute outside
  ``R(λ(v))`` — the chase *fails* (the STDs force an attribute the DTD
  forbids).
* **ChangeReg** (hard violations): the children word ``w`` of a node is not in
  ``π(P(λ(v)))``.  The repair candidates are ``rep(w, P(λ(v)))``
  (Section 6.1); if the set is empty the chase fails, otherwise a ⊑_w-maximal
  repair ``w'`` is chosen:  missing element types are added as fresh childless
  nodes and over-represented types are merged into a single node (failing on a
  clash of constant attribute values).

For target DTDs whose content models are all *univocal* (class ``C_U``,
Definition 6.9) the choice of ``w'`` is canonical (the ⊑_w-maximum exists and
merged types shrink to exactly one node, Claim 6.17), every chase sequence is
finite (Lemma 6.12) and terminal chase sequences characterise solution
existence (Lemma 6.15):

* a *successful* chase yields the **canonical solution** ``T*`` — certain
  answers of CTQ//,∪ queries can be read off ``T*`` (Lemma 6.5);
* a *failing* chase proves that the source tree has **no solution**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..obs.trace import span as _span
from ..regexlang.parikh import parikh_vector
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import NullFactory, Value, is_constant
from .errors import ChaseError
from .presolution import canonical_pre_solution
from .setting import DataExchangeSetting

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine.compiled import CompiledSetting
    from ..xmlmodel.frozen import FrozenTree

__all__ = ["ChaseError", "ChaseResult", "chase", "canonical_solution"]


@dataclass
class ChaseStep:
    """One applied repair, for tracing and tests."""

    rule: str            # "ChangeAtt" or "ChangeReg"
    node: int
    label: str
    detail: str


@dataclass
class ChaseResult:
    """Outcome of a chase sequence.

    ``frozen`` is the snapshot of ``tree`` the final conformance sweep
    already paid for on success — downstream query evaluation reuses it
    instead of freezing the canonical solution a second time.  It is a
    cache, not part of the result's identity, and is dropped when the
    result is pickled (the loader re-freezes on demand).
    """

    success: bool
    tree: Optional[XMLTree]
    failure: Optional[str] = None
    steps: List[ChaseStep] = field(default_factory=list)
    frozen: Optional["FrozenTree"] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.success

    def __getstate__(self) -> dict:
        state = {name: getattr(self, name)
                 for name in ("success", "tree", "failure", "steps")}
        state["frozen"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)


def chase(target_dtd: DTD, tree: XMLTree,
          nulls: Optional[NullFactory] = None,
          max_depth: Optional[int] = None) -> ChaseResult:
    """Run the chase of Figure 7 on ``tree`` (typically ``cps(T)``).

    The input tree is not modified; the result contains the repaired copy on
    success.  ``max_depth`` guards against recursive target DTDs that would
    require unbounded expansion (the guard is generous and never reached for
    non-recursive DTDs).
    """
    working = tree.copy()
    working.ordered = False
    factory = nulls or NullFactory(start=1_000_000)
    steps: List[ChaseStep] = []
    if max_depth is None:
        max_depth = working.depth() + len(target_dtd.element_types) + 8
    try:
        _process(target_dtd, working, working.root, factory, steps, depth=0,
                 max_depth=max_depth)
    except _ChaseFailure as failure:
        return ChaseResult(False, None, failure.reason, steps)
    # Freeze the repaired tree once: the final conformance sweep runs over
    # the snapshot's columns, and the snapshot rides along in the result so
    # query evaluation never re-freezes the canonical solution.
    frozen = working.freeze()
    problems = target_dtd.conformance_violations_frozen(frozen, ordered=False)
    if problems:  # pragma: no cover - defensive; the chase repairs everything or fails
        return ChaseResult(False, None, "; ".join(problems), steps)
    return ChaseResult(True, working, None, steps, frozen)


def canonical_solution(setting: DataExchangeSetting, source_tree: XMLTree,
                       nulls: Optional[NullFactory] = None,
                       compiled: Optional["CompiledSetting"] = None) -> ChaseResult:
    """``cps(T)`` followed by the chase: the canonical solution of Section 6.1.

    Returns a failing :class:`ChaseResult` when no solution exists
    (Lemma 6.15 b).  ``compiled`` hands the pre-solution its pre-lowered
    STD source plans (see :func:`~repro.exchange.presolution.canonical_pre_solution`).
    """
    if compiled is not None:
        compiled.check_owns(setting)
    with _span("engine.chase"):
        factory = nulls or NullFactory()
        pre_solution = canonical_pre_solution(setting, source_tree, factory,
                                              compiled=compiled)
        return chase(setting.target_dtd, pre_solution, factory)


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #

class _ChaseFailure(Exception):
    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def _process(dtd: DTD, tree: XMLTree, node: int, nulls: NullFactory,
             steps: List[ChaseStep], depth: int, max_depth: int) -> None:
    """Depth-first repair: attributes, then the children word, then recurse."""
    if depth > max_depth:
        raise ChaseError(
            "chase exceeded the expansion depth guard; the target DTD is "
            "recursive and forces unbounded trees")
    _change_att(dtd, tree, node, nulls, steps)
    _change_reg(dtd, tree, node, nulls, steps)
    for child in tree.children(node):
        _process(dtd, tree, child, nulls, steps, depth + 1, max_depth)


def _change_att(dtd: DTD, tree: XMLTree, node: int, nulls: NullFactory,
                steps: List[ChaseStep]) -> None:
    label = tree.label(node)
    expected = dtd.attributes_of(label)
    actual = set(tree.attributes(node))
    if actual == expected:
        return
    extra = actual - expected
    if extra:
        raise _ChaseFailure(
            f"node of type {label!r} carries attribute(s) {sorted(extra)} "
            f"not allowed by R({label}) = {sorted(expected)}")
    for name in sorted(expected - actual):
        tree.set_attribute(node, name, nulls.fresh())
    steps.append(ChaseStep("ChangeAtt", node, label,
                           f"added {sorted(expected - actual)}"))


def _change_reg(dtd: DTD, tree: XMLTree, node: int, nulls: NullFactory,
                steps: List[ChaseStep]) -> None:
    label = tree.label(node)
    analysis = dtd.rule_analysis(label)
    word = parikh_vector(tree.children_labels(node))
    if analysis.permutation_contains(word):
        return
    repairs = analysis.repairs(word)
    if not repairs:
        raise _ChaseFailure(
            f"children of a {label!r} node (counts {word}) cannot be repaired "
            f"to match π({dtd.content_model(label)})")
    target = analysis.maximum_repair(word)
    if target is None:
        # Outside C_U there may be several maximal repairs; pick one
        # deterministically.  Query answering guarantees only hold inside C_U.
        maxima = analysis.max_repairs(word)
        target = sorted(maxima, key=lambda vec: sorted(vec.items()))[0]
    detail_parts: List[str] = []
    for symbol in sorted(set(word) | set(target) | dtd.content_model(label).alphabet()):
        have = word.get(symbol, 0)
        want = target.get(symbol, 0)
        if have < want:
            for _ in range(want - have):
                tree.add_child(node, symbol)
            detail_parts.append(f"+{want - have}×{symbol}")
        elif have > want:
            _merge_children(dtd, tree, node, symbol, want, label)
            detail_parts.append(f"merge {symbol} {have}→{want}")
    steps.append(ChaseStep("ChangeReg", node, label, ", ".join(detail_parts)))


def _merge_children(dtd: DTD, tree: XMLTree, node: int, symbol: str,
                    target_count: int, parent_label: str) -> None:
    if target_count != 1:
        raise ChaseError(
            f"ChangeReg must shrink {symbol!r} children of a {parent_label!r} "
            f"node to {target_count}, but the merge step of Figure 7 is only "
            "defined for a target multiplicity of 1 (Claim 6.17 guarantees "
            "this inside C_U); the content model is not univocal")
    victims = [c for c in tree.children(node) if tree.label(c) == symbol]
    merged_attributes: Dict[str, Value] = {}
    for attr_name in dtd.attributes_of(symbol):
        constants = {tree.attribute(v, attr_name)
                     for v in victims
                     if is_constant(tree.attribute(v, attr_name))}
        if len(constants) > 1:
            raise _ChaseFailure(
                f"attribute clash while merging {symbol!r} nodes: @{attr_name} "
                f"takes distinct constants {sorted(constants)}")
        if constants:
            merged_attributes[attr_name] = constants.pop()
    merged = tree.merge_children(node, victims)
    for attr_name, value in merged_attributes.items():
        tree.set_attribute(merged, attr_name, value)
