"""Consistency for nested-relational DTDs in O(n·m²) (Theorem 4.5).

Nested-relational DTDs are non-recursive DTDs whose rules all have the shape
``ℓ → l̃_1 … l̃_m`` with pairwise-distinct ``l_i`` and each ``l̃`` one of
``l``, ``l?``, ``l+``, ``l*``.  They capture the nested-relational schemas
handled by Clio.

The paper's algorithm:

1. drop attributes from all STD patterns (Claim 4.2; requires the Section-4
   proviso that source patterns use pairwise-distinct variables),
2. build the DTDs ``D°_S`` (keep required children only) and ``D*_T`` (make
   every child required exactly once); each admits exactly one tree,
3. the setting is consistent iff no STD has its source pattern true in the
   unique ``D°_S``-tree while its target pattern is false in the unique
   ``D*_T``-tree (Claim 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from ..patterns.evaluate import pattern_holds
from ..xmlmodel.tree import XMLTree
from .setting import DataExchangeSetting
from .std import STD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine.compiled import CompiledSetting

__all__ = ["NestedRelationalConsistency", "check_consistency_nested_relational"]


@dataclass
class NestedRelationalConsistency:
    """Outcome of the Theorem 4.5 consistency check."""

    consistent: bool
    #: STDs witnessing inconsistency: source side satisfied by every source
    #: tree of a certain shape while the target side cannot be satisfied.
    culprits: List[STD] = field(default_factory=list)
    #: The unique tree conforming to ``D°_S`` (attribute-free skeleton).
    source_skeleton: Optional[XMLTree] = None
    #: The unique tree conforming to ``D*_T`` (attribute-free skeleton).
    target_skeleton: Optional[XMLTree] = None


def check_consistency_nested_relational(
        setting: DataExchangeSetting,
        require_distinct_variables: bool = True,
        compiled: Optional["CompiledSetting"] = None) -> NestedRelationalConsistency:
    """Decide consistency of a nested-relational setting (Theorem 4.5).

    Raises ``ValueError`` when either DTD is not nested-relational, or when
    ``require_distinct_variables`` is set and some source pattern repeats a
    variable (the reduction of Claim 4.2 is only valid under the
    distinct-variable proviso of Section 4).

    ``compiled`` (a :class:`repro.engine.CompiledSetting` for this setting)
    supplies the class verdicts, the unique ``D°_S`` / ``D*_T`` skeletons and
    the attribute-erased dependencies, so repeated checks skip all regex work.
    """
    source_dtd = setting.source_dtd
    target_dtd = setting.target_dtd
    if compiled is not None:
        compiled.check_owns(setting)
        if not compiled.source_nested_relational:
            raise ValueError("the source DTD is not nested-relational")
        if not compiled.target_nested_relational:
            raise ValueError("the target DTD is not nested-relational")
    else:
        if not source_dtd.is_nested_relational():
            raise ValueError("the source DTD is not nested-relational")
        if not target_dtd.is_nested_relational():
            raise ValueError("the target DTD is not nested-relational")
    if require_distinct_variables:
        distinct = (compiled.distinct_source_variables if compiled is not None
                    else setting.has_distinct_source_variables())
        if not distinct:
            raise ValueError(
                "a source pattern repeats a variable; the Section 4 consistency "
                "analysis assumes pairwise-distinct variables in source patterns")

    if compiled is not None:
        source_skeleton, target_skeleton = compiled.nested_relational_skeletons()
        erased = compiled.erased_stds
    else:
        source_skeleton = source_dtd.nested_relational_lower().unique_tree()
        target_skeleton = target_dtd.nested_relational_upper().unique_tree()
        erased = [(dep.source.erase_attributes(), dep.target.erase_attributes())
                  for dep in setting.stds]

    culprits: List[STD] = []
    for dependency, (source_pattern, target_pattern) in zip(setting.stds, erased):
        if (pattern_holds(source_skeleton, source_pattern)
                and not pattern_holds(target_skeleton, target_pattern)):
            culprits.append(dependency)
    return NestedRelationalConsistency(
        consistent=not culprits,
        culprits=culprits,
        source_skeleton=source_skeleton,
        target_skeleton=target_skeleton,
    )
