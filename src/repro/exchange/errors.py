"""Shared exception hierarchy for the exchange pipeline.

All failures that the pipeline can signal derive from :class:`ExchangeError`,
so callers can guard a whole request with a single ``except``.  The concrete
classes additionally inherit from the builtin each of them historically
subclassed (``RuntimeError`` / ``ValueError``), so existing ``except``
clauses keep working.
"""

from __future__ import annotations

__all__ = ["ExchangeError", "ChaseError", "NoSolutionError"]


class ExchangeError(Exception):
    """Base class for every error raised by the exchange pipeline."""


class ChaseError(ExchangeError, RuntimeError):
    """Raised when the chase is applied outside its supported class (for
    example a non-univocal merge with target multiplicity above one), *not*
    when the chase legitimately fails — failures are reported in the result."""


class NoSolutionError(ExchangeError, ValueError):
    """Raised when certain answers are requested for a source tree that has
    no solution: the intersection over an empty set of solutions is undefined,
    so consistency should be checked first (Lemma 6.15 b)."""
