"""XML data exchange settings and solutions (Definitions 3.2 and 3.3).

A setting is a triple ``(D_S, D_T, Σ_ST)``.  Given ``T ⊨ D_S``, a tree
``T' ⊨ D_T`` such that ``⟨T, T'⟩`` satisfies every STD in ``Σ_ST`` is a
*solution* for ``T``; when ``T'`` is only required to conform in the unordered
sense (``T' |≈ D_T``, Section 5.2) we speak of an *unordered solution*.
Proposition 5.1 shows that certain answers agree over the two notions, and
Proposition 5.2 turns any unordered solution into an ordered one in polynomial
time, which is why the query-answering pipeline works with unordered trees and
orders the final result on demand.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from .std import STD, classify_std

__all__ = ["DataExchangeSetting", "SolutionReport"]


@dataclass
class SolutionReport:
    """Diagnostic outcome of a solution check."""

    is_solution: bool
    dtd_violations: List[str] = field(default_factory=list)
    std_violations: List[Tuple[STD, List[Dict[str, object]]]] = field(default_factory=list)

    def summary(self) -> str:
        if self.is_solution:
            return "solution"
        lines = []
        for problem in self.dtd_violations:
            lines.append(f"target DTD: {problem}")
        for dependency, missing in self.std_violations:
            lines.append(f"STD {dependency}: {len(missing)} unsatisfied source match(es)")
        return "; ".join(lines) or "not a solution"


class DataExchangeSetting:
    """An XML data exchange setting ``(D_S, D_T, Σ_ST)``."""

    def __init__(self, source_dtd: DTD, target_dtd: DTD,
                 stds: Iterable[STD]) -> None:
        self.source_dtd = source_dtd
        self.target_dtd = target_dtd
        self.stds: List[STD] = list(stds)
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Structural classification
    # ------------------------------------------------------------------ #

    def is_fully_specified(self) -> bool:
        """All STDs are fully-specified (Definition 5.10)."""
        return all(dep.is_fully_specified(self.target_dtd.root) for dep in self.stds)

    def std_classes(self) -> List[str]:
        """Per-STD classification per Theorem 5.11."""
        return [classify_std(dep, self.target_dtd.root) for dep in self.stds]

    def has_distinct_source_variables(self) -> bool:
        """The consistency-section proviso (Section 4): distinct variables in
        every source pattern."""
        return all(dep.has_distinct_source_variables() for dep in self.stds)

    def size(self) -> int:
        """``‖Σ_ST‖`` plus the two DTD sizes."""
        return (self.source_dtd.size() + self.target_dtd.size()
                + sum(dep.size() for dep in self.stds))

    def std_size(self) -> int:
        """``m = ‖Σ_ST‖`` as used in Theorem 4.5's ``O(n·m²)``."""
        return sum(dep.size() for dep in self.stds)

    def dtd_size(self) -> int:
        """``n = ‖D_S‖ + ‖D_T‖``."""
        return self.source_dtd.size() + self.target_dtd.size()

    # ------------------------------------------------------------------ #
    # Solutions
    # ------------------------------------------------------------------ #

    def check_source(self, tree: XMLTree) -> List[str]:
        """Violations of ``T ⊨ D_S`` (empty list when the source conforms)."""
        return self.source_dtd.conformance_violations(tree)

    def solution_report(self, source_tree: XMLTree, candidate: XMLTree,
                        ordered: Optional[bool] = None) -> SolutionReport:
        """Detailed check of whether ``candidate`` is a solution for
        ``source_tree`` (Definition 3.3).  ``ordered=False`` checks the
        unordered notion ``T' |≈ D_T`` of Section 5.2."""
        dtd_problems = self.target_dtd.conformance_violations(candidate, ordered)
        std_problems: List[Tuple[STD, List[Dict[str, object]]]] = []
        for dependency in self.stds:
            missing = dependency.violations(source_tree, candidate)
            if missing:
                std_problems.append((dependency, missing))
        return SolutionReport(
            is_solution=not dtd_problems and not std_problems,
            dtd_violations=dtd_problems,
            std_violations=std_problems,
        )

    def is_solution(self, source_tree: XMLTree, candidate: XMLTree,
                    ordered: Optional[bool] = None) -> bool:
        """Is ``candidate`` a solution for ``source_tree``?"""
        return self.solution_report(source_tree, candidate, ordered).is_solution

    def is_unordered_solution(self, source_tree: XMLTree, candidate: XMLTree) -> bool:
        """Is ``candidate`` an unordered (weak) solution for ``source_tree``?"""
        return self.solution_report(source_tree, candidate, ordered=False).is_solution

    def fingerprint(self) -> str:
        """A content fingerprint of the whole setting: the SHA-256 digest of
        both DTDs (textual rendering) and the STD list in order.  Settings
        with equal fingerprints are syntactically identical, which makes the
        digest usable as a sharding / result-cache namespace key — it is what
        :mod:`repro.service` routes every request by.

        The digest is computed once and memoised: a setting is treated as
        immutable after construction (nothing in the pipeline mutates one,
        and the serving layer relies on the key being stable)."""
        if self._fingerprint is None:
            key = "\n".join([self.source_dtd.to_text(),
                             self.target_dtd.to_text(),
                             *(str(dep) for dep in self.stds)])
            self._fingerprint = hashlib.sha256(
                key.encode("utf-8")).hexdigest()
        return self._fingerprint

    def __repr__(self) -> str:
        return (f"<DataExchangeSetting source={self.source_dtd.root!r} "
                f"target={self.target_dtd.root!r} |Σ|={len(self.stds)}>")
