"""Naive (enumeration-based) certain answers — the coNP baseline.

Theorem 5.5 proves that ``Certain-Answers(Q)`` is in coNP by showing that a
counterexample solution of polynomial size always exists.  The naive baseline
implemented here makes that bound operational on *small* instances: it
enumerates candidate unordered target trees conforming to the target DTD, up
to a repetition bound per element type and over a finite value pool (source
constants, query constants and a handful of fresh nulls), keeps those that are
solutions, and intersects the query answers over them.

The enumeration is exponential by design — it is the brute-force counterpart
used in the test-suite and the benchmarks to cross-validate the polynomial
canonical-solution algorithm (Lemma 6.5) and to exhibit the tractable /
intractable gap of the dichotomy (Theorem 6.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..patterns.queries import Query
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import Null, Value, is_constant
from .setting import DataExchangeSetting

__all__ = ["NaiveResult", "enumerate_target_trees", "naive_certain_answers"]


@dataclass
class NaiveResult:
    """Outcome of the naive enumeration."""

    has_solution: bool
    answers: Optional[Set[Tuple[Value, ...]]]
    solutions_found: int
    candidates_examined: int
    exhausted: bool  # False if the candidate cap was reached


def enumerate_target_trees(dtd: DTD, value_pool: Sequence[Value],
                           max_repeat: int = 2,
                           max_children_options: int = 2000,
                           max_depth: Optional[int] = None) -> Iterator[XMLTree]:
    """Enumerate unordered trees weakly conforming to ``dtd``.

    Children multiplicities are bounded by ``max_repeat`` per element type and
    every required attribute ranges over ``value_pool``.  Intended for very
    small DTDs; the generator is lazy so callers can cap consumption.
    """
    if max_depth is None:
        max_depth = len(dtd.element_types) + 2

    def subtree_variants(label: str, depth: int) -> List[XMLTree]:
        if depth > max_depth:
            return []
        analysis = dtd.rule_analysis(label)
        alphabet = sorted(dtd.content_model(label).alphabet())
        # All children count vectors within the repetition bound that lie in π(P(label)).
        vectors = []
        for counts in itertools.product(range(max_repeat + 1), repeat=len(alphabet)):
            vector = {a: c for a, c in zip(alphabet, counts) if c}
            if analysis.permutation_contains(vector):
                vectors.append(vector)
            if len(vectors) >= max_children_options:
                break
        attr_names = sorted(dtd.attributes_of(label))
        attr_choices = list(itertools.product(value_pool, repeat=len(attr_names))) or [()]
        variants: List[XMLTree] = []
        for vector in vectors:
            child_variant_lists = []
            feasible = True
            for symbol in sorted(vector):
                sub = subtree_variants(symbol, depth + 1)
                if not sub:
                    feasible = False
                    break
                child_variant_lists.append((symbol, vector[symbol], sub))
            if not feasible:
                continue
            # combinations_with_replacement avoids generating permutations of
            # identical sibling subtrees (the trees are unordered).
            per_symbol_choices = [
                list(itertools.combinations_with_replacement(range(len(sub)), count))
                for _, count, sub in child_variant_lists
            ]
            for combo in itertools.product(*per_symbol_choices) if per_symbol_choices else [()]:
                for attrs in attr_choices:
                    tree = XMLTree(label, ordered=False)
                    for name, value in zip(attr_names, attrs):
                        tree.set_attribute(tree.root, name, value)
                    for (symbol, _count, sub), indices in zip(child_variant_lists, combo):
                        for index in indices:
                            tree.graft_subtree(tree.root, sub[index])
                    variants.append(tree)
        return variants

    yield from subtree_variants(dtd.root, 0)


def naive_certain_answers(setting: DataExchangeSetting, source_tree: XMLTree,
                          query: Query,
                          variable_order: Optional[Sequence[str]] = None,
                          max_repeat: int = 2,
                          extra_nulls: int = 2,
                          max_candidates: int = 200_000) -> NaiveResult:
    """Certain answers by brute-force enumeration of unordered solutions.

    The value pool consists of the source constants, the constants mentioned
    in the query patterns, and ``extra_nulls`` fresh nulls.  Only use on small
    settings — the search space is exponential.
    """
    order = list(variable_order) if variable_order is not None else query.free_variables()
    pool: List[Value] = sorted(source_tree.constants())
    for pattern in query.patterns():
        for sub in pattern.subpatterns():
            attribute = getattr(sub, "attribute", None)
            if attribute is None:
                continue
            for _, term in attribute.assignments:
                if isinstance(term, str) and term not in pool:
                    pool.append(term)
    pool = list(pool) + [Null(900_000 + i) for i in range(extra_nulls)]

    answers: Optional[Set[Tuple[Value, ...]]] = None
    solutions = 0
    examined = 0
    exhausted = True
    for candidate in enumerate_target_trees(setting.target_dtd, pool, max_repeat):
        examined += 1
        if examined > max_candidates:
            exhausted = False
            break
        if not setting.is_unordered_solution(source_tree, candidate):
            continue
        solutions += 1
        tuples = {
            tup for tup in query.answers(candidate, order)
            if all(is_constant(v) for v in tup)
        }
        answers = tuples if answers is None else (answers & tuples)
        if answers is not None and not answers and query.free_variables():
            # The intersection can only shrink; for non-Boolean queries we may
            # stop early once it is empty.
            break
    return NaiveResult(
        has_solution=solutions > 0,
        answers=answers,
        solutions_found=solutions,
        candidates_examined=examined,
        exhausted=exhausted,
    )
