"""Source-to-target dependencies (STDs), Definition 3.1.

An STD between a source DTD ``D_S`` and a target DTD ``D_T`` is an expression

    ψ_T(x̄, z̄)  :–  ϕ_S(x̄, ȳ)

where ``ϕ_S`` and ``ψ_T`` are tree-pattern formulae over the source and target
vocabularies and ``ȳ``, ``z̄`` share no variables.  A pair of trees ``⟨T, T'⟩``
satisfies the STD iff whenever ``T ⊨ ϕ_S(s̄, s̄')`` there is ``s̄''`` with
``T' ⊨ ψ_T(s̄, s̄'')``.

This module also provides the classification of STDs used in Section 5:
*fully-specified* STDs (target pattern rooted at the target root element, no
descendant, no wildcard) and the three relaxations ``STD(_, //)``,
``STD(r, //)`` and ``STD(r, _)`` of Theorem 5.11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..patterns.evaluate import assignment_key, match_anywhere, pattern_holds
from ..patterns.formula import NodePattern, TreePattern
from ..patterns.parse import parse_pattern
from ..xmlmodel.tree import XMLTree

__all__ = ["STD", "std", "classify_std"]


@dataclass(frozen=True)
class STD:
    """A source-to-target dependency ``target :– source``."""

    target: TreePattern
    source: TreePattern

    # ------------------------------------------------------------------ #
    # Variables
    # ------------------------------------------------------------------ #

    def source_variables(self) -> List[str]:
        """Free variables of ``ϕ_S`` (that is, ``x̄ ∪ ȳ``)."""
        return [v.name for v in self.source.variables()]

    def target_variables(self) -> List[str]:
        """Free variables of ``ψ_T`` (that is, ``x̄ ∪ z̄``)."""
        return [v.name for v in self.target.variables()]

    def shared_variables(self) -> List[str]:
        """The exported variables ``x̄`` = vars(ϕ_S) ∩ vars(ψ_T)."""
        target_vars = set(self.target_variables())
        return [name for name in self.source_variables() if name in target_vars]

    def existential_variables(self) -> List[str]:
        """The invented variables ``z̄`` = vars(ψ_T) \\ vars(ϕ_S)."""
        source_vars = set(self.source_variables())
        return [name for name in self.target_variables() if name not in source_vars]

    def has_distinct_source_variables(self) -> bool:
        """The Section 4 proviso: every variable occurs at most once in ϕ_S."""
        names: List[str] = []
        for pattern in self.source.subpatterns():
            if isinstance(pattern, NodePattern):
                for _, term in pattern.attribute.assignments:
                    if hasattr(term, "name"):
                        names.append(term.name)
        return len(names) == len(set(names))

    # ------------------------------------------------------------------ #
    # Classification (Definition 5.10 and Theorem 5.11)
    # ------------------------------------------------------------------ #

    def is_fully_specified(self, target_root: Optional[str] = None) -> bool:
        """Fully-specified: the target pattern is ``r[ϕ_1, …, ϕ_k]`` where
        ``r`` is the target root type and the ``ϕ_i`` use neither ``//`` nor
        the wildcard."""
        pattern = self.target
        if not isinstance(pattern, NodePattern):
            return False
        if pattern.attribute.is_wildcard():
            return False
        if target_root is not None and pattern.attribute.label != target_root:
            return False
        return not pattern.uses_descendant() and not pattern.uses_wildcard()

    def target_classes(self, target_root: Optional[str] = None) -> Set[str]:
        """Which of the Theorem 5.11 classes the target pattern falls into.

        Returns a subset of ``{"fully-specified", "STD(_,//)", "STD(r,//)",
        "STD(r,_)"}`` — the most permissive description(s) of the pattern.
        """
        rooted = (isinstance(self.target, NodePattern)
                  and not self.target.attribute.is_wildcard()
                  and (target_root is None
                       or self.target.attribute.label == target_root))
        uses_desc = self.target.uses_descendant()
        uses_wild = self.target.uses_wildcard()
        classes: Set[str] = set()
        if rooted and not uses_desc and not uses_wild:
            classes.add("fully-specified")
        if not uses_desc and not uses_wild:
            classes.add("STD(_,//)")       # wildcard and descendant forbidden
        if rooted and not uses_desc:
            classes.add("STD(r,//)")        # descendant forbidden
        if rooted and not uses_wild:
            classes.add("STD(r,_)")         # wildcard forbidden
        return classes

    def size(self) -> int:
        """``‖σ‖``: combined size of the two patterns."""
        return self.source.size() + self.target.size()

    # ------------------------------------------------------------------ #
    # Satisfaction
    # ------------------------------------------------------------------ #

    def satisfied_by(self, source_tree: XMLTree, target_tree: XMLTree) -> bool:
        """Does ``⟨T, T'⟩`` satisfy this STD (Definition 3.1)?"""
        return not self.violations(source_tree, target_tree)

    def violations(self, source_tree: XMLTree, target_tree: XMLTree,
                   limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Source-side assignments whose required target pattern is missing.

        Each violation is the restriction of a satisfying source assignment to
        the exported variables ``x̄``.
        """
        shared = self.shared_variables()
        missing: List[Dict[str, object]] = []
        seen: Set[Tuple] = set()
        for assignment in match_anywhere(source_tree, self.source):
            exported = {name: assignment[name] for name in shared if name in assignment}
            key = assignment_key(exported)
            if key in seen:
                continue
            seen.add(key)
            if not pattern_holds(target_tree, self.target, binding=exported):
                missing.append(exported)
                if limit is not None and len(missing) >= limit:
                    break
        return missing

    def __str__(self) -> str:
        return f"{self.target} :- {self.source}"


def std(target: object, source: object) -> STD:
    """Build an STD from pattern objects or pattern strings.

    Example (the STD of Example 3.4)::

        std("bib[writer(@name=y)[work(@title=x, @year=z)]]",
            "db[book(@title=x)[author(@name=y)]]")
    """
    target_pattern = target if isinstance(target, TreePattern) else parse_pattern(str(target))
    source_pattern = source if isinstance(source, TreePattern) else parse_pattern(str(source))
    return STD(target_pattern, source_pattern)


def classify_std(dependency: STD, target_root: Optional[str] = None) -> str:
    """A single human-readable class name for an STD (the most restrictive
    class of Theorem 5.11 it belongs to)."""
    classes = dependency.target_classes(target_root)
    if "fully-specified" in classes:
        return "fully-specified"
    for name in ("STD(_,//)", "STD(r,//)", "STD(r,_)"):
        if name in classes:
            return name
    return "unrestricted"
