"""The consistency problem for XML data exchange (paper, Section 4).

A setting ``(D_S, D_T, Σ_ST)`` is *consistent* iff some ``T ⊨ D_S`` has a
solution.  Theorem 4.1 shows the problem EXPTIME-complete in general; this
module implements

* :func:`pattern_satisfiable` — satisfiability of a tree-pattern formula with
  respect to a DTD (the special case noted after the problem definition), via
  a goal-directed search over (element type, pending pattern goals) states,
* :func:`target_satisfiable` — the same for a *set* of patterns
  simultaneously,
* :func:`check_consistency_general` — the general decision procedure: the
  family of ⪯-minimal source trees is enumerated (complete for non-recursive
  source DTDs, depth-bounded otherwise) and for each the set of fired source
  patterns is tested for joint target satisfiability.  This is the same
  decision problem as the automaton-product construction of Theorem 4.1,
  expressed over pattern goals instead of explicit automata; it is exponential
  in the worst case, as it must be.
* :func:`check_consistency` — a front door that dispatches to the polynomial
  Theorem 4.5 algorithm when both DTDs are nested-relational and to the
  general procedure otherwise.

All pattern reasoning here is on the attribute-erased patterns ``ϕ°`` / ``ψ°``
of Claim 4.2; the claim's equivalence needs the Section-4 proviso (distinct
variables in source patterns), which the caller can ask to have verified.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from ..patterns.evaluate import pattern_holds
from ..patterns.formula import (DescendantPattern, NodePattern, TreePattern)
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from .nested_relational import check_consistency_nested_relational
from .setting import DataExchangeSetting

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine.compiled import CompiledSetting

__all__ = [
    "ConsistencyResult", "check_consistency", "check_consistency_general",
    "pattern_satisfiable", "target_satisfiable", "minimal_source_skeletons",
]


@dataclass
class ConsistencyResult:
    """Outcome of a consistency check."""

    consistent: bool
    method: str
    #: True when the procedure examined the complete space (always for
    #: nested-relational settings and non-recursive source DTDs within the
    #: enumeration cap); False when a bound was hit, in which case
    #: ``consistent=False`` means "no witness found within the bound".
    complete: bool = True
    witness_source: Optional[XMLTree] = None
    detail: str = ""


# --------------------------------------------------------------------- #
# Target-side satisfiability: goal-directed search
# --------------------------------------------------------------------- #

class _GoalSearch:
    """Decides: is there a finite tree conforming to the DTD, rooted at a
    given element type, witnessing the given pattern goals?

    States are (element type, patterns to witness *at* the root, patterns to
    witness *somewhere in* the subtree).  Completed results are memoised;
    states currently on the recursion path are cut (a minimal witness never
    repeats a state along a root-to-leaf path)."""

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self.realizable = dtd.realizable_types()
        self._memo: Dict[Tuple[str, FrozenSet, FrozenSet], bool] = {}
        self._visiting: Set[Tuple[str, FrozenSet, FrozenSet]] = set()

    def satisfiable(self, patterns: Iterable[TreePattern]) -> bool:
        goals = frozenset(patterns)
        if self.dtd.root not in self.realizable:
            return False
        return self._can_build(self.dtd.root, frozenset(), goals)

    # -- core recursion --------------------------------------------------- #

    def _can_build(self, label: str, at_goals: FrozenSet[TreePattern],
                   sub_goals: FrozenSet[TreePattern]) -> bool:
        if label not in self.realizable:
            return False
        if not at_goals and not sub_goals:
            return True
        state = (label, at_goals, sub_goals)
        if state in self._memo:
            return self._memo[state]
        if state in self._visiting:
            return False  # cycle: a minimal witness never needs this
        self._visiting.add(state)
        try:
            result = self._expand(label, at_goals, sub_goals)
        finally:
            self._visiting.discard(state)
        self._memo[state] = result
        return result

    def _expand(self, label: str, at_goals: FrozenSet[TreePattern],
                sub_goals: FrozenSet[TreePattern]) -> bool:
        sub_list = sorted(sub_goals, key=str)
        # Choose which sub-goals are witnessed at this very node.
        for here_mask in itertools.product((False, True), repeat=len(sub_list)):
            here = [g for g, flag in zip(sub_list, here_mask) if flag]
            delegated = [g for g, flag in zip(sub_list, here_mask) if not flag]
            requirements = self._local_requirements(label, list(at_goals) + here)
            if requirements is None:
                continue
            requirements = requirements + [("sub", g) for g in delegated]
            if self._assign_to_children(label, requirements):
                return True
        return False

    def _local_requirements(self, label: str,
                            witnessed_here: List[TreePattern]
                            ) -> Optional[List[Tuple[str, TreePattern]]]:
        """Child requirements induced by witnessing the given patterns at a
        node labelled ``label``; ``None`` when impossible."""
        requirements: List[Tuple[str, TreePattern]] = []
        for goal in witnessed_here:
            if isinstance(goal, DescendantPattern):
                # Witnessed at v: the inner pattern holds at a proper
                # descendant, i.e. somewhere in some child's subtree.
                requirements.append(("sub", goal.inner))
            elif isinstance(goal, NodePattern):
                attr = goal.attribute
                if not attr.is_wildcard() and attr.label != label:
                    return None
                for child_pattern in goal.children:
                    requirements.append(("at", child_pattern))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected pattern: {goal!r}")
        return requirements

    def _assign_to_children(self, label: str,
                            requirements: List[Tuple[str, TreePattern]]) -> bool:
        analysis = self.dtd.rule_analysis(label)
        alphabet = sorted(self.dtd.content_model(label).alphabet() & self.realizable)
        forbidden = self.dtd.content_model(label).alphabet() - self.realizable
        if not requirements:
            return analysis.semilinear.coverable({}, forbidden)
        if not alphabet:
            return False
        # Partition the requirements into groups, one group per child node.
        for partition in _set_partitions(requirements):
            for labelling in itertools.product(alphabet, repeat=len(partition)):
                counts: Dict[str, int] = {}
                ok = True
                for group, child_label in zip(partition, labelling):
                    if not self._group_fits(group, child_label):
                        ok = False
                        break
                    counts[child_label] = counts.get(child_label, 0) + 1
                if not ok:
                    continue
                if not analysis.semilinear.coverable(counts, forbidden):
                    continue
                if all(self._can_build(child_label,
                                       frozenset(g for kind, g in group if kind == "at"),
                                       frozenset(g for kind, g in group if kind == "sub"))
                       for group, child_label in zip(partition, labelling)):
                    return True
        return False

    @staticmethod
    def _group_fits(group: Sequence[Tuple[str, TreePattern]], label: str) -> bool:
        """Quick pruning: an 'at' requirement with a concrete root label can
        only be assigned to a child of that label."""
        for kind, goal in group:
            if kind == "at" and isinstance(goal, NodePattern):
                attr = goal.attribute
                if not attr.is_wildcard() and attr.label != label:
                    return False
        return True


def _set_partitions(items: Sequence) -> Iterable[List[List]]:
    """All set partitions of ``items`` (small inputs only)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        # put ``first`` into an existing block
        for index in range(len(partition)):
            yield partition[:index] + [partition[index] + [first]] + partition[index + 1:]
        # or into a new block
        yield partition + [[first]]


def target_satisfiable(dtd: DTD, patterns: Iterable[TreePattern]) -> bool:
    """Is there a tree ``T ⊨ D`` (attributes ignored) satisfying all patterns?

    Patterns are attribute-erased before the search (Claim 4.2)."""
    erased = [p.erase_attributes() for p in patterns]
    return _GoalSearch(dtd).satisfiable(erased)


def pattern_satisfiable(dtd: DTD, pattern: TreePattern) -> bool:
    """Satisfiability of a single tree-pattern formula with respect to a DTD."""
    return target_satisfiable(dtd, [pattern])


# --------------------------------------------------------------------- #
# Source-side enumeration of ⪯-minimal conforming skeletons
# --------------------------------------------------------------------- #

def minimal_source_skeletons(dtd: DTD, max_trees: int = 2000,
                             max_depth: Optional[int] = None
                             ) -> Tuple[List[XMLTree], bool]:
    """Enumerate the attribute-free trees conforming to ``D`` in which every
    node's children multiset is a ⪯-minimal member of ``π(P(ℓ))``.

    Every conforming tree can be pruned to such a skeleton without gaining
    pattern matches (patterns are monotone), so for deciding consistency it
    suffices to examine these skeletons.  Returns ``(trees, complete)`` where
    ``complete`` is False if the enumeration cap or depth bound was reached.
    """
    if max_depth is None:
        max_depth = len(dtd.element_types) + 2 if not dtd.is_recursive() \
            else 2 * len(dtd.element_types) + 2
    realizable = dtd.realizable_types()
    complete = True

    def expand(label: str, depth: int) -> List[XMLTree]:
        nonlocal complete
        if label not in realizable:
            return []
        if depth > max_depth:
            complete = False
            return []
        analysis = dtd.rule_analysis(label)
        results: List[XMLTree] = []
        for vector in analysis.semilinear.minimal_ge({}):
            # ``vector`` is a minimal children multiset; expand each child.
            options_per_symbol: List[Tuple[str, List[XMLTree]]] = []
            feasible = True
            for symbol in sorted(vector):
                subtrees = expand(symbol, depth + 1)
                if not subtrees:
                    feasible = False
                    break
                options_per_symbol.append((symbol, subtrees))
            if not feasible and vector:
                continue
            # Choose one subtree variant per child occurrence.
            slots: List[Tuple[str, List[XMLTree]]] = []
            for symbol, subtrees in options_per_symbol:
                slots.extend([(symbol, subtrees)] * vector[symbol])
            for choice in itertools.product(*(s for _, s in slots)) if slots else [()]:
                tree = XMLTree(label, ordered=False)
                for subtree in choice:
                    tree.graft_subtree(tree.root, subtree)
                results.append(tree)
                if len(results) > max_trees:
                    complete = False
                    return results
        return results

    trees = expand(dtd.root, 0)
    if len(trees) > max_trees:
        trees = trees[:max_trees]
        complete = False
    return trees, complete


# --------------------------------------------------------------------- #
# Consistency
# --------------------------------------------------------------------- #

def check_consistency_general(setting: DataExchangeSetting,
                              max_source_trees: int = 2000,
                              max_depth: Optional[int] = None,
                              compiled: Optional["CompiledSetting"] = None
                              ) -> ConsistencyResult:
    """General consistency check (the Theorem 4.1 decision problem).

    Enumerates ⪯-minimal source skeletons, fires the attribute-erased source
    patterns on each, and tests joint target satisfiability of the fired
    targets.  Exact for non-recursive source DTDs within the caps; bounded
    (sound for "consistent", best-effort for "inconsistent") otherwise.

    ``compiled`` (a :class:`repro.engine.CompiledSetting` for this setting)
    supplies the precomputed satisfiability verdict, the cached skeleton
    enumeration, the attribute-erased dependencies and a goal-search object
    whose memo table persists across calls.
    """
    if compiled is not None:
        compiled.check_owns(setting)
        if not compiled.source_satisfiable:
            return ConsistencyResult(False, "general", True,
                                     detail="SAT(D_S) is empty")
        skeletons, complete = compiled.source_skeletons(
            max_trees=max_source_trees, max_depth=max_depth)
        search = compiled.goal_search()
        erased = compiled.erased_stds
    else:
        if not setting.source_dtd.is_satisfiable():
            return ConsistencyResult(False, "general", True,
                                     detail="SAT(D_S) is empty")
        skeletons, complete = minimal_source_skeletons(
            setting.source_dtd, max_trees=max_source_trees, max_depth=max_depth)
        search = _GoalSearch(setting.target_dtd)
        erased = [(dep.source.erase_attributes(), dep.target.erase_attributes())
                  for dep in setting.stds]
    for skeleton in skeletons:
        fired = [target for source, target in erased
                 if pattern_holds(skeleton, source)]
        if search.satisfiable(fired):
            return ConsistencyResult(True, "general", complete, skeleton,
                                     detail=f"{len(fired)} STD(s) fired")
    return ConsistencyResult(False, "general", complete,
                             detail=f"examined {len(skeletons)} minimal source skeleton(s)")


def check_consistency(setting: DataExchangeSetting,
                      method: str = "auto",
                      require_distinct_variables: bool = False,
                      compiled: Optional["CompiledSetting"] = None,
                      **kwargs) -> ConsistencyResult:
    """Decide consistency of a data exchange setting.

    ``method`` is ``"auto"`` (nested-relational fast path when applicable),
    ``"nested-relational"`` (Theorem 4.5, O(n·m²)) or ``"general"``
    (Theorem 4.1 decision problem).  ``compiled`` supplies precomputed
    setting-level state (see :func:`repro.engine.compile_setting`).
    """
    if compiled is not None:
        compiled.check_owns(setting)
    if require_distinct_variables:
        distinct = (compiled.distinct_source_variables if compiled is not None
                    else setting.has_distinct_source_variables())
        if not distinct:
            raise ValueError(
                "a source pattern repeats a variable; Section 4 assumes "
                "pairwise-distinct variables in source patterns")
    if compiled is not None:
        nested = compiled.nested_relational
    else:
        nested = (setting.source_dtd.is_nested_relational()
                  and setting.target_dtd.is_nested_relational())
    if method == "nested-relational" or (method == "auto" and nested):
        outcome = check_consistency_nested_relational(
            setting, require_distinct_variables=False, compiled=compiled)
        return ConsistencyResult(outcome.consistent, "nested-relational", True,
                                 outcome.source_skeleton,
                                 detail=f"{len(outcome.culprits)} culprit STD(s)"
                                 if not outcome.consistent else "")
    if method not in {"auto", "general"}:
        raise ValueError(f"unknown consistency method {method!r}")
    return check_consistency_general(setting, compiled=compiled, **kwargs)
