"""Classification of data exchange settings: the dichotomy (Theorem 6.2).

Combining Theorem 5.11 and Theorem 6.2 / Proposition 6.19:

* if every STD is *fully specified* and every content model of the target DTD
  is *univocal* (class ``C_U``), then certain answers of CTQ//,∪ queries are
  computable in polynomial time via the canonical solution;
* otherwise the setting uses a feature (descendant / wildcard / non-rooted
  target patterns, or a non-univocal / ``c(r) ≥ 2`` content model) for which
  the paper exhibits coNP-complete instances — the guarantee is lost.

:func:`classify_setting` reports which side of the dichotomy a setting falls
on and why; it is a *syntactic* classification of the setting against the
paper's tractable class, mirroring the statement "for each data exchange
setting it is decidable if it falls in the tractable case".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from .setting import DataExchangeSetting

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine.compiled import CompiledSetting

__all__ = ["DichotomyReport", "classify_setting"]


@dataclass
class DichotomyReport:
    """Why a setting is (or is not) in the tractable class."""

    tractable: bool
    fully_specified: bool
    target_univocal: bool
    #: per-element-type: (content model as string, c(r), univocal?)
    target_rules: Dict[str, Dict[str, object]] = field(default_factory=dict)
    std_classes: List[str] = field(default_factory=list)
    reasons: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = ("tractable: certain answers in PTIME via the canonical solution"
                   if self.tractable else
                   "outside the tractable class: certain answering may be "
                   "coNP-complete (Theorems 5.11 / 6.2)")
        if self.reasons:
            return verdict + " — " + "; ".join(self.reasons)
        return verdict


def classify_setting(setting: DataExchangeSetting,
                     univocality_bound: Optional[int] = None,
                     compiled: Optional["CompiledSetting"] = None) -> DichotomyReport:
    """Classify a setting against the paper's dichotomy.

    ``univocality_bound`` is forwarded to the univocality decision procedure
    (see :mod:`repro.regexlang.univocal`).  When ``compiled`` (a
    :class:`repro.engine.CompiledSetting` for this setting) is given and no
    custom bound is requested, the precomputed report is returned directly.
    """
    if compiled is not None:
        compiled.check_owns(setting)
        if univocality_bound is None:
            # Fresh containers so caller mutation (reports are plain
            # dataclasses meant for display) cannot poison the cached report.
            report = compiled.dichotomy
            return replace(
                report,
                target_rules={element: dict(info)
                              for element, info in report.target_rules.items()},
                std_classes=list(report.std_classes),
                reasons=list(report.reasons))
    reasons: List[str] = []
    std_classes = setting.std_classes()
    fully_specified = all(cls == "fully-specified" for cls in std_classes)
    if not fully_specified:
        offending = sorted({cls for cls in std_classes if cls != "fully-specified"})
        reasons.append(
            "non-fully-specified STD(s) of class " + ", ".join(offending)
            + " (Theorem 5.11 exhibits coNP-complete instances for each)")

    target_rules: Dict[str, Dict[str, object]] = {}
    target_univocal = True
    for element in sorted(setting.target_dtd.element_types):
        model = setting.target_dtd.content_model(element)
        # Reuses the DTD's rule cache instead of re-analysing the regex on
        # every classification (the analysis itself is bound-independent).
        analysis = setting.target_dtd.rule_analysis(element)
        c_value = analysis.c_value()
        univocal = analysis.is_univocal(univocality_bound)
        target_rules[element] = {
            "content_model": str(model),
            "c": c_value,
            "univocal": univocal,
        }
        if not univocal:
            target_univocal = False
            if c_value >= 2:
                reasons.append(
                    f"target rule {element} → {model} has c(r) = {c_value} ≥ 2 "
                    "(Lemma 6.20)")
            else:
                reasons.append(
                    f"target rule {element} → {model} is not univocal "
                    "(Lemma 6.21)")

    tractable = fully_specified and target_univocal
    return DichotomyReport(
        tractable=tractable,
        fully_specified=fully_specified,
        target_univocal=target_univocal,
        target_rules=target_rules,
        std_classes=std_classes,
        reasons=reasons,
    )
