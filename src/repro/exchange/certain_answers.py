"""Certain answers in XML data exchange (paper, Sections 5.1 and 6.1).

Given a setting, a source tree ``T ⊨ D_S`` and a CTQ//,∪ query ``Q``,

    certain(Q, T) = ⋂ { Q(T') : T' is a solution for T }.

For fully-specified settings whose target DTD uses only univocal content
models, Theorem 6.2 / Lemmas 6.5–6.6 show that certain answers can be obtained
by evaluating ``Q`` over the *canonical solution* ``T*`` produced by the chase
and keeping only all-constant tuples; this module implements exactly that
pipeline.  When the chase fails there is no solution at all and the certain-
answer set is undefined (``has_solution`` is ``False`` in the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Set, Tuple

from ..obs.trace import span as _span
from ..patterns.plan import shared_query_plan
from ..patterns.queries import Query
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import NullFactory, Value, is_constant
from .chase import ChaseResult, canonical_solution
from .errors import NoSolutionError
from .setting import DataExchangeSetting

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from ..engine.compiled import CompiledSetting

__all__ = ["CertainAnswers", "certain_answers", "certain_answer_boolean",
           "NoSolutionError"]


@dataclass
class CertainAnswers:
    """Result of a certain-answer computation.

    ``answers`` is ``None`` when no solution exists for the source tree (the
    intersection over an empty set of solutions is not meaningful); otherwise
    it is the set of all-constant tuples, ordered by ``variable_order``.
    """

    has_solution: bool
    answers: Optional[Set[Tuple[Value, ...]]]
    variable_order: Tuple[str, ...]
    canonical: Optional[XMLTree] = None
    chase: Optional[ChaseResult] = None

    def certain(self) -> bool:
        """For Boolean queries: the value of ``certain(Q, T)``.

        Raises :class:`NoSolutionError` when no solution exists (certain
        answers are then undefined — consistency should be checked first)."""
        if not self.has_solution:
            raise NoSolutionError("the source tree has no solution; "
                                  "certain answers are undefined")
        assert self.answers is not None
        return bool(self.answers)

    def contains(self, tuple_: Sequence[Value]) -> bool:
        """Is the tuple a certain answer?"""
        if not self.has_solution or self.answers is None:
            raise NoSolutionError("the source tree has no solution")
        return tuple(tuple_) in self.answers


def certain_answers(setting: DataExchangeSetting, source_tree: XMLTree,
                    query: Query,
                    variable_order: Optional[Sequence[str]] = None,
                    nulls: Optional[NullFactory] = None,
                    compiled: Optional["CompiledSetting"] = None) -> CertainAnswers:
    """Compute ``certain(Q, T)`` via the canonical solution (Theorem 6.2).

    Preconditions (checked): the setting is fully specified.  The tractability
    guarantee additionally requires a univocal target DTD
    (``setting.target_dtd.is_univocal()``); outside that class the canonical
    solution may not exist or may not characterise certain answers, matching
    the paper's dichotomy — use :mod:`repro.exchange.naive` to cross-check on
    small instances.

    ``compiled`` (a :class:`repro.engine.CompiledSetting` for this setting)
    supplies the precomputed fully-specified verdict, the pre-lowered STD
    source plans and the query-plan cache, so the per-request path is
    exactly "chase → freeze → run the compiled plan": interpretation is
    paid once per query (at plan-compile time), not once per (query, node).
    """
    if compiled is not None:
        compiled.check_owns(setting)
    fully_specified = (compiled.fully_specified if compiled is not None
                       else setting.is_fully_specified())
    if not fully_specified:
        raise ValueError(
            "certain_answers via canonical solutions requires fully-specified "
            "STDs (Definition 5.10); this setting is not fully specified")
    order = tuple(variable_order) if variable_order is not None else tuple(query.free_variables())
    result = canonical_solution(setting, source_tree, nulls, compiled=compiled)
    if not result.success:
        return CertainAnswers(False, None, order, None, result)
    with _span("engine.plan_compile"):
        # Compile-or-fetch: a warm plan cache makes this span ~free, which
        # is exactly what it is there to show.
        plan = (compiled.query_plan(query) if compiled is not None
                else shared_query_plan(query))
    with _span("engine.freeze"):
        # The chase already froze the canonical solution for its own
        # conformance check; reuse that snapshot instead of re-walking the
        # tree (the span then shows what the reuse saves).
        frozen = (result.frozen if result.frozen is not None
                  else result.tree.freeze())
    stats = compiled.stats if compiled is not None else None
    with _span("engine.plan_run") as plan_span:
        join_before = recurrence_before = 0
        if stats is not None:
            join_before = stats.counts("plan_join_runs")
            recurrence_before = stats.counts("plan_recurrence_runs")
        answers = {
            tup for tup in plan.answers(frozen, order, stats=stats)
            if all(is_constant(value) for value in tup)
        }
        if stats is not None:
            joins = stats.counts("plan_join_runs") - join_before
            recurrences = (stats.counts("plan_recurrence_runs")
                           - recurrence_before)
            plan_span.annotate(strategy=(
                "mixed" if joins and recurrences
                else "join" if joins
                else "recurrence" if recurrences
                else "none"))
    return CertainAnswers(True, answers, order, result.tree, result)


def certain_answer_boolean(setting: DataExchangeSetting, source_tree: XMLTree,
                           query: Query) -> bool:
    """``certain(Q, T)`` for a Boolean query ``Q`` (``True`` / ``False``)."""
    outcome = certain_answers(setting, source_tree, query)
    return outcome.certain()
