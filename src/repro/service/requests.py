"""Request and per-request result types of the serving layer.

An :class:`ExchangeRequest` names an operation, the fingerprint of the
setting it runs against (``DataExchangeSetting.fingerprint()`` — the sharding
key of the whole layer) and the per-request payload (source tree, query).
Requests are plain frozen data: they can be built on a client, routed by
fingerprint without touching the setting, and executed on whichever shard
owns that fingerprint.

A :class:`ServiceResult` is one slot of a batch response: the request's
position, the :class:`~repro.engine.EngineResult` when the shard produced
one, or the exception it raised.  Batches isolate failures per request — an
error inside one shard marks only the requests it actually failed, never its
batch neighbours (see :meth:`repro.service.AsyncExchangeService.batch`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..engine import EngineResult
from ..patterns.queries import Query
from ..xmlmodel.tree import XMLTree
from .quota import QuotaExceededError

__all__ = ["OPERATIONS", "ExchangeRequest", "ServiceResult",
           "consistency_request", "classify_request", "solve_request",
           "certain_answers_request"]

#: Operations a request may name.  ``consistency`` and ``classify`` are
#: setting-level; ``solve`` and ``certain_answers`` are per-tree.
OPERATIONS = ("consistency", "classify", "solve", "certain_answers")


@dataclass(frozen=True, eq=False)
class ExchangeRequest:
    """One routable unit of work against a registered setting.

    Per-tree requests carry the source document either inline (``tree``)
    or by reference (``tree_fp`` — the document's fingerprint in the
    corpus store the serving side has attached).  Fingerprint-addressed
    requests are the cheap form: nothing tree-sized travels with the
    request, and the executing shard resolves the fingerprint through its
    engine's store (raising the typed
    :class:`~repro.storage.UnknownDocumentError` for absent documents).
    """

    op: str
    fingerprint: str
    tree: Optional[XMLTree] = None
    query: Optional[Query] = None
    variable_order: Optional[Tuple[str, ...]] = None
    strategy: str = "auto"
    tree_fp: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in OPERATIONS:
            raise ValueError(f"unknown operation {self.op!r}; "
                             f"expected one of {', '.join(OPERATIONS)}")
        if self.op in ("solve", "certain_answers"):
            if self.tree is None and self.tree_fp is None:
                raise ValueError(f"{self.op!r} requests need a source tree "
                                 f"(inline, or by fingerprint via tree_fp)")
            if self.tree is not None and self.tree_fp is not None:
                raise ValueError(f"{self.op!r} requests take an inline tree "
                                 f"or a tree_fp, not both")
        if self.op == "certain_answers" and self.query is None:
            raise ValueError("'certain_answers' requests need a query")

    @property
    def source(self):
        """What the engine consumes: the inline tree, or the fingerprint."""
        return self.tree if self.tree is not None else self.tree_fp

    def __repr__(self) -> str:
        return (f"<ExchangeRequest {self.op} "
                f"setting={self.fingerprint[:12]}…>")


def consistency_request(fingerprint: str,
                        strategy: str = "auto") -> ExchangeRequest:
    """A consistency check against the setting ``fingerprint``."""
    return ExchangeRequest("consistency", fingerprint, strategy=strategy)


def classify_request(fingerprint: str) -> ExchangeRequest:
    """A dichotomy-classification request."""
    return ExchangeRequest("classify", fingerprint)


def solve_request(fingerprint: str,
                  tree: Union[XMLTree, str]) -> ExchangeRequest:
    """A canonical-solution request for one source tree (inline, or a
    stored-document fingerprint)."""
    if isinstance(tree, str):
        return ExchangeRequest("solve", fingerprint, tree_fp=tree)
    return ExchangeRequest("solve", fingerprint, tree=tree)


def certain_answers_request(fingerprint: str, tree: Union[XMLTree, str],
                            query: Query,
                            variable_order: Optional[Sequence[str]] = None
                            ) -> ExchangeRequest:
    """A certain-answers request for one ``(tree, query)`` pair; ``tree``
    is the document or its stored fingerprint."""
    order = tuple(variable_order) if variable_order is not None else None
    if isinstance(tree, str):
        return ExchangeRequest("certain_answers", fingerprint, tree_fp=tree,
                               query=query, variable_order=order)
    return ExchangeRequest("certain_answers", fingerprint, tree=tree,
                           query=query, variable_order=order)


@dataclass
class ServiceResult:
    """One slot of a batch response (requests keep their submission order).

    Exactly one of ``result`` / ``error`` is set.  ``ok`` mirrors
    ``EngineResult.ok`` when the shard produced a result and is ``False``
    when it raised.
    """

    index: int
    fingerprint: str
    result: Optional[EngineResult] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None and self.result.ok

    @property
    def failed(self) -> bool:
        """Did the shard raise (as opposed to returning a defined outcome)?"""
        return self.error is not None

    @property
    def rejected(self) -> bool:
        """Was this slot refused by admission control (a
        :class:`~repro.service.quota.QuotaExceededError`) rather than
        executed?  Rejected slots never reached a shard; their neighbours
        in the same batch are unaffected."""
        return isinstance(self.error, QuotaExceededError)

    def unwrap(self) -> EngineResult:
        """The engine result, re-raising the shard's exception unchanged."""
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result
