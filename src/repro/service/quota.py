"""Admission control for the serving layer: quotas, typed rejections.

A :class:`QuotaPolicy` declares how much work the serving layer may *accept*
— as opposed to the cache bounds (``max_compiled``,
``result_cache_maxsize``), which declare how much accepted work it may
*remember*.  Over-quota work is rejected immediately with a typed
:class:`QuotaExceededError` instead of queueing without bound, so a
saturated tenant observes a deterministic, retryable failure rather than
unbounded latency — and can never starve its neighbours' slots.

The three knobs:

``max_in_flight``
    Per-setting ceiling on requests admitted but not yet completed.  Counted
    at admission time (when a request is submitted / a batch slot is
    accepted), not at execution time — the executor's queue is exactly the
    unbounded buffer the quota exists to replace.
``max_registered``
    Ceiling on distinct settings a registry will admit.  Re-registering an
    already-known fingerprint is always allowed (it is a no-op).
``max_compiled``
    Bound on concurrently compiled settings.  Enforced by the registry's
    compiled-LRU (eviction, not rejection — eviction is a performance event,
    never a correctness event); carrying it on the policy merely gives
    deployments one admission-control object to configure.

:class:`QuotaExceededError` travels over the JSON-lines wire by class name
(see :mod:`repro.service.protocol`) and re-raises client-side as itself, so
``except QuotaExceededError`` works identically against a local
:class:`~repro.service.AsyncExchangeService` and a remote server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..exchange.errors import ExchangeError

__all__ = ["QuotaPolicy", "QuotaExceededError"]


class QuotaExceededError(ExchangeError, RuntimeError):
    """A request (or registration) was rejected by a :class:`QuotaPolicy`.

    Carries the quota ``kind`` (``"in_flight"`` / ``"registered"``), the
    ``fingerprint`` it applied to (``None`` for registry-wide quotas) and the
    ``limit`` that was hit — when constructed locally.  Rebuilt from the wire
    it carries the rendered message only.
    """

    def __init__(self, message: str, *, kind: Optional[str] = None,
                 fingerprint: Optional[str] = None,
                 limit: Optional[int] = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.fingerprint = fingerprint
        self.limit = limit


@dataclass(frozen=True)
class QuotaPolicy:
    """Declarative admission limits for a registry / service (see module
    docs).  ``None`` disables the corresponding limit."""

    max_in_flight: Optional[int] = None
    max_registered: Optional[int] = None
    max_compiled: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_in_flight", "max_registered", "max_compiled"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be a positive integer or "
                                 f"None (unlimited), got {value!r}")

    def reject_in_flight(self, fingerprint: str) -> QuotaExceededError:
        assert self.max_in_flight is not None
        return QuotaExceededError(
            f"in-flight quota exceeded for setting {fingerprint[:16]}…: "
            f"at most {self.max_in_flight} request(s) may be admitted at "
            f"once (retry when earlier requests complete)",
            kind="in_flight", fingerprint=fingerprint,
            limit=self.max_in_flight)

    def reject_registered(self) -> QuotaExceededError:
        assert self.max_registered is not None
        return QuotaExceededError(
            f"registration quota exceeded: at most {self.max_registered} "
            f"distinct setting(s) may be registered",
            kind="registered", limit=self.max_registered)
