"""The multi-setting registry: fingerprints in, shards out.

A :class:`SettingRegistry` is the serving layer's source of truth for which
settings exist and which of them are currently compiled.  Settings are
admitted with :meth:`register` and keyed by
``DataExchangeSetting.fingerprint()`` — a content digest, so re-registering
a syntactically identical setting is a no-op returning the same key, and
clients can compute the routing key without the registry.

Compilation is **lazy and bounded**: a setting is compiled into a
:class:`~repro.service.shard.Shard` the first time a request routes to it,
and at most ``max_compiled`` shards are kept, least-recently-used first out
(``compiled_evictions`` in :meth:`stats`).  An evicted setting stays
registered — the next request simply pays compilation again (a
``compiled_misses`` increment), which is what makes an LRU of compiled
settings safe: eviction is a performance event, never a correctness event.

Isolation: every shard owns a private engine whose result cache is bounded
by this registry's ``result_cache_maxsize`` — per setting, not globally —
so one tenant's traffic can never evict another tenant's cached results.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Union

from ..engine import CacheStats, ExchangeEngine, compile_setting
from ..engine.compiled import CompiledSetting
from ..exchange.setting import DataExchangeSetting
from .shard import Shard

__all__ = ["SettingRegistry", "UnknownSettingError"]


class UnknownSettingError(KeyError):
    """A request named a fingerprint no registered setting has."""

    def __init__(self, fingerprint: str) -> None:
        super().__init__(fingerprint)
        self.fingerprint = fingerprint

    def __str__(self) -> str:
        if " " in self.fingerprint:  # already a rendered message
            return self.fingerprint
        return (f"no setting registered under fingerprint "
                f"{self.fingerprint[:16]}… (register it first)")


class SettingRegistry:
    """Admits settings, compiles them lazily, bounds the compiled set."""

    def __init__(self, max_compiled: Optional[int] = None,
                 result_cache: bool = True,
                 result_cache_maxsize: Optional[int] = None) -> None:
        if max_compiled is not None and max_compiled < 1:
            raise ValueError(f"max_compiled must be a positive integer or "
                             f"None (unbounded), got {max_compiled!r}")
        self.max_compiled = max_compiled
        self.result_cache = result_cache
        self.result_cache_maxsize = result_cache_maxsize
        self._settings: Dict[str, DataExchangeSetting] = {}
        self._shards: "OrderedDict[str, Shard]" = OrderedDict()
        self._stats = CacheStats()
        # An RLock: shard() compiles while holding it, which serialises
        # compilation (no duplicated compile work under concurrency) at the
        # cost of briefly blocking other registry calls — registry calls are
        # otherwise dictionary lookups.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def register(self, setting: Union[DataExchangeSetting, CompiledSetting]
                 ) -> str:
        """Admit a setting and return its fingerprint (the routing key).

        Passing an already-compiled :class:`CompiledSetting` also pre-seeds
        the shard, skipping the lazy compile on first request.
        Re-registering an identical setting is a no-op.
        """
        compiled: Optional[CompiledSetting] = None
        if isinstance(setting, CompiledSetting):
            compiled, setting = setting, setting.setting
        if not isinstance(setting, DataExchangeSetting):
            raise TypeError(f"expected a DataExchangeSetting or "
                            f"CompiledSetting, got {type(setting).__name__}")
        fingerprint = setting.fingerprint()
        with self._lock:
            self._settings.setdefault(fingerprint, setting)
            if compiled is not None and fingerprint not in self._shards:
                self._admit_shard(fingerprint, compiled)
        return fingerprint

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def shard(self, fingerprint: str) -> Shard:
        """The shard serving ``fingerprint``, compiling it if needed."""
        with self._lock:
            shard = self._shards.get(fingerprint)
            if shard is not None:
                self._shards.move_to_end(fingerprint)
                self._stats.hit("compiled")
                return shard
            setting = self._settings.get(fingerprint)
            if setting is None:
                raise UnknownSettingError(fingerprint)
            self._stats.miss("compiled")
            return self._admit_shard(fingerprint, compile_setting(setting))

    def _admit_shard(self, fingerprint: str,
                     compiled: CompiledSetting) -> Shard:
        engine = ExchangeEngine(
            compiled, result_cache=self.result_cache,
            result_cache_maxsize=self.result_cache_maxsize)
        shard = Shard(fingerprint, engine)
        self._shards[fingerprint] = shard
        self._shards.move_to_end(fingerprint)
        if self.max_compiled is not None:
            while len(self._shards) > self.max_compiled:
                _, evicted = self._shards.popitem(last=False)
                evicted.close(wait=False)
                self._stats.evict("compiled")
        return shard

    def engine(self, fingerprint: str) -> ExchangeEngine:
        """Shortcut for ``registry.shard(fingerprint).engine``."""
        return self.shard(fingerprint).engine

    def setting(self, fingerprint: str) -> DataExchangeSetting:
        with self._lock:
            setting = self._settings.get(fingerprint)
        if setting is None:
            raise UnknownSettingError(fingerprint)
        return setting

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def fingerprints(self) -> List[str]:
        """Every registered fingerprint, in registration order."""
        with self._lock:
            return list(self._settings)

    def compiled_fingerprints(self) -> List[str]:
        """Currently-compiled fingerprints, least recently used first."""
        with self._lock:
            return list(self._shards)

    def __len__(self) -> int:
        return len(self._settings)

    def __contains__(self, fingerprint: object) -> bool:
        return fingerprint in self._settings

    def stats(self) -> Dict[str, int]:
        """Registry-level counters: registrations and the compiled LRU."""
        with self._lock:
            flat = self._stats.snapshot()
            flat.setdefault("compiled_hits", 0)
            flat.setdefault("compiled_misses", 0)
            flat.setdefault("compiled_evictions", 0)
            flat["settings_registered"] = len(self._settings)
            flat["compiled_entries"] = len(self._shards)
            return flat

    def shard_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-shard accounting for every currently-compiled shard."""
        with self._lock:
            shards = list(self._shards.items())
        return {fingerprint: shard.stats() for fingerprint, shard in shards}

    def close(self) -> None:
        """Shut down every shard's worker pool (settings stay registered)."""
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.close()

    def __repr__(self) -> str:
        return (f"<SettingRegistry settings={len(self._settings)} "
                f"compiled={len(self._shards)}"
                f"{'' if self.max_compiled is None else f'/{self.max_compiled}'}>")
