"""The multi-setting registry: fingerprints in, shards out.

A :class:`SettingRegistry` is the serving layer's source of truth for which
settings exist and which of them are currently compiled.  Settings are
admitted with :meth:`register` and keyed by
``DataExchangeSetting.fingerprint()`` — a content digest, so re-registering
a syntactically identical setting is a no-op returning the same key, and
clients can compute the routing key without the registry.

Compilation is **lazy, bounded and concurrent**: a setting is compiled into
a :class:`~repro.service.shard.Shard` the first time a request routes to it
(or eagerly, via :meth:`prewarm` / ``register(..., prewarm=True)``), and at
most ``max_compiled`` shards are kept, least-recently-used first out
(``compiled_evictions`` in :meth:`stats`).  An evicted setting stays
registered — the next request simply pays compilation again (a
``compiled_misses`` increment), which is what makes an LRU of compiled
settings safe: eviction is a performance event, never a correctness event.
Compilation runs *outside* the registry lock — one tenant's compile never
stalls routing for already-compiled tenants — with a per-fingerprint latch
collapsing duplicate concurrent compiles of the same setting.

Admission control: an optional :class:`~repro.service.quota.QuotaPolicy`
bounds how many distinct settings may register (``max_registered``) and how
many requests per setting may be in flight at once (``max_in_flight``,
enforced through :meth:`quota_acquire` / :meth:`quota_release` by the async
service).  Over-quota work fails fast with a typed
:class:`~repro.service.quota.QuotaExceededError` — it is never queued.

Isolation: every shard owns a private engine whose result cache is bounded
by this registry's ``result_cache_maxsize`` — per setting, not globally —
so one tenant's traffic can never evict another tenant's cached results.
"""

from __future__ import annotations

import os
import threading
import warnings
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

from ..engine import CacheStats, ExchangeEngine, compile_setting
from ..engine.compiled import CompiledSetting
from ..exchange.setting import DataExchangeSetting
from ..obs.trace import span as obs_span
from ..storage import CorpusStore, StoreError
from .quota import QuotaPolicy
from .shard import Shard

__all__ = ["SettingRegistry", "UnknownSettingError"]


class UnknownSettingError(KeyError):
    """A request named a fingerprint no registered setting has."""

    def __init__(self, fingerprint: str) -> None:
        super().__init__(fingerprint)
        self.fingerprint = fingerprint

    def __str__(self) -> str:
        if " " in self.fingerprint:  # already a rendered message
            return self.fingerprint
        return (f"no setting registered under fingerprint "
                f"{self.fingerprint[:16]}… (register it first)")


class SettingRegistry:
    """Admits settings, compiles them lazily, bounds the compiled set."""

    def __init__(self, max_compiled: Optional[int] = None,
                 result_cache: bool = True,
                 result_cache_maxsize: Optional[int] = None,
                 quota: Optional[QuotaPolicy] = None,
                 store: Optional[Union[CorpusStore, str,
                                       "os.PathLike"]] = None,
                 store_read_only: bool = False) -> None:
        if quota is not None and quota.max_compiled is not None:
            if max_compiled is not None:
                raise ValueError(
                    "pass the compiled-settings bound either as "
                    "max_compiled or on the QuotaPolicy, not both")
            max_compiled = quota.max_compiled
        if max_compiled is not None and max_compiled < 1:
            raise ValueError(f"max_compiled must be a positive integer or "
                             f"None (unbounded), got {max_compiled!r}")
        self.max_compiled = max_compiled
        self.result_cache = result_cache
        self.result_cache_maxsize = result_cache_maxsize
        self.quota = quota
        #: The corpus store every shard engine resolves fingerprints
        #: through (one shared handle — ``registry.stats()`` therefore
        #: *overlays* its counters rather than summing per-shard views).
        #: A path opens (and, unless ``store_read_only``, creates) an
        #: on-disk store; shard-host workers pass ``store_read_only=True``
        #: — the supervisor owns writes.
        if store is not None and not isinstance(store, CorpusStore):
            store = CorpusStore(store, read_only=store_read_only)
        self.store: Optional[CorpusStore] = store
        self._settings: Dict[str, DataExchangeSetting] = {}
        self._shards: "OrderedDict[str, Shard]" = OrderedDict()
        self._stats = CacheStats()
        self._in_flight: Dict[str, int] = {}
        #: Per-fingerprint latches for compiles in progress: waiters block on
        #: the latch instead of the registry lock, so compilation never
        #: serialises routing for other settings.
        self._compiling: Dict[str, threading.Event] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def register(self, setting: Union[DataExchangeSetting, CompiledSetting],
                 *legacy: bool, prewarm: bool = False,
                 persist: bool = False) -> str:
        """Admit a setting and return its fingerprint (the routing key).

        This is the one registration signature of the whole serving stack
        — :class:`SettingRegistry`, ``AsyncExchangeService``,
        ``ServiceClient`` and ``ShardHost`` all take the same keyword set:

        ``prewarm=True`` compiles the setting before returning (counted
        under ``prewarm_*``, not as a ``compiled_miss``), so its first
        request never pays compile latency.  Passing an already-compiled
        :class:`CompiledSetting` pre-seeds the shard the same way.
        ``persist=True`` additionally saves the *compiled* setting into
        the attached corpus store (compiling first when needed, under the
        prewarm accounting — persisting implies warming), so a future
        process restored from the store boots plan-warm.
        Re-registering an identical setting is a no-op (and is never
        rejected by the registration quota).

        The pre-keyword form ``register(setting, True)`` still works but
        is deprecated; spell it ``register(setting, prewarm=True)``.
        """
        prewarm = self._consolidate_register_args(legacy, prewarm)
        compiled: Optional[CompiledSetting] = None
        if isinstance(setting, CompiledSetting):
            compiled, setting = setting, setting.setting
        if not isinstance(setting, DataExchangeSetting):
            raise TypeError(f"expected a DataExchangeSetting or "
                            f"CompiledSetting, got {type(setting).__name__}")
        fingerprint = setting.fingerprint()
        with self._lock:
            if (self.quota is not None
                    and self.quota.max_registered is not None
                    and fingerprint not in self._settings
                    and len(self._settings) >= self.quota.max_registered):
                self._stats.count("quota_rejections")
                raise self.quota.reject_registered()
            self._settings.setdefault(fingerprint, setting)
            if (compiled is not None and fingerprint not in self._shards
                    and fingerprint not in self._compiling):
                # Skip pre-seeding while a lazy compile of the same
                # fingerprint is in flight: its owner is about to admit a
                # shard, and overwriting it would discard whichever engine
                # (and result cache) started serving first.
                self._admit_shard(fingerprint, compiled, prewarmed=True)
        if persist:
            if self.store is None:
                raise StoreError(
                    "register(persist=True) needs a corpus store attached "
                    "to the registry (pass store=... at construction)")
            # Persisting implies warming: the pickled plan state must come
            # from a compiled shard, and a persisted setting exists so the
            # next boot is plan-warm — so this compile counts under the
            # prewarm accounting, never as a compiled_miss.
            shard = self._obtain(fingerprint, prewarm=True)[0]
            self.store.put_setting(shard.engine.compiled, prewarm=prewarm)
        elif prewarm:
            self.prewarm(fingerprint)
        return fingerprint

    @staticmethod
    def _consolidate_register_args(legacy: Tuple[bool, ...],
                                   prewarm: bool) -> bool:
        """Map the deprecated positional ``register(setting, True)`` form
        onto the consolidated keyword set (shared by every layer)."""
        if not legacy:
            return prewarm
        if len(legacy) > 1:
            raise TypeError(f"register() takes one setting argument "
                            f"({1 + len(legacy)} positional given); "
                            f"prewarm/persist are keyword-only")
        warnings.warn(
            "register(setting, prewarm) with a positional prewarm flag is "
            "deprecated; use register(setting, prewarm=...) — the keyword "
            "set shared by SettingRegistry, AsyncExchangeService, "
            "ServiceClient and ShardHost",
            DeprecationWarning, stacklevel=3)
        return bool(legacy[0])

    def restore_from_store(self) -> List[str]:
        """Register every setting persisted in the attached store, each
        pre-seeded from its pickled compiled form (so the first request
        after a restart is a ``compiled_hits`` — ``compiled_misses`` stays
        at zero — and each restoration counts a ``prewarm_hits``).
        Returns the restored fingerprints."""
        if self.store is None:
            return []
        restored: List[str] = []
        with obs_span("storage.restore"):
            for item in self.store.settings():
                self.register(item.compiled, prewarm=True)
                restored.append(item.fingerprint)
        return restored

    # ------------------------------------------------------------------ #
    # In-flight quota
    # ------------------------------------------------------------------ #

    def quota_acquire(self, fingerprint: str) -> None:
        """Claim one in-flight slot for ``fingerprint``, or reject.

        No-op without an in-flight quota.  Raises
        :class:`~repro.service.quota.QuotaExceededError` — and counts a
        ``quota_rejections`` event — when the setting is already at its
        ``max_in_flight``; the caller must :meth:`quota_release` every slot
        it successfully acquired, exactly once, when the request settles.
        """
        quota = self.quota
        if quota is None or quota.max_in_flight is None:
            return
        with self._lock:
            current = self._in_flight.get(fingerprint, 0)
            if current >= quota.max_in_flight:
                self._stats.count("quota_rejections")
                raise quota.reject_in_flight(fingerprint)
            self._in_flight[fingerprint] = current + 1

    def quota_release(self, fingerprint: str) -> None:
        """Return one in-flight slot claimed by :meth:`quota_acquire`.

        Releasing a slot that was never acquired is an acquire/release
        imbalance in the caller — a bug that used to be silently absorbed
        and is now loud: it counts a ``quota_release_underflow`` event and
        raises ``RuntimeError`` (the quota itself stays consistent either
        way; nothing goes negative).
        """
        quota = self.quota
        if quota is None or quota.max_in_flight is None:
            return
        with self._lock:
            current = self._in_flight.get(fingerprint, 0)
            if current <= 0:
                self._stats.count("quota_release_underflow")
                raise RuntimeError(
                    f"quota_release without a matching quota_acquire for "
                    f"{fingerprint[:16]}… (in-flight count is already 0)")
            if current == 1:
                self._in_flight.pop(fingerprint)
            else:
                self._in_flight[fingerprint] = current - 1

    def in_flight(self, fingerprint: str) -> int:
        """Currently-admitted, not-yet-released requests for a setting."""
        with self._lock:
            return self._in_flight.get(fingerprint, 0)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def shard(self, fingerprint: str) -> Shard:
        """The shard serving ``fingerprint``, compiling it if needed."""
        return self._obtain(fingerprint, prewarm=False)[0]

    def prewarm(self, fingerprint: str) -> bool:
        """Compile ``fingerprint`` ahead of its first request.

        Returns ``True`` when this call compiled the setting (a
        ``prewarm_compiles`` event), ``False`` when it was already warm
        (``prewarm_hits``).  Either way the first request afterwards is a
        ``compiled_hits`` — never a ``compiled_misses``.
        """
        return self._obtain(fingerprint, prewarm=True)[1]

    def _obtain(self, fingerprint: str, prewarm: bool) -> "Tuple[Shard, bool]":
        """The shard plus whether *this call* compiled it just now."""
        while True:
            with self._lock:
                shard = self._shards.get(fingerprint)
                if shard is not None:
                    self._shards.move_to_end(fingerprint)
                    if prewarm:
                        self._stats.count("prewarm_hits")
                    else:
                        self._stats.hit("compiled")
                    return shard, False
                setting = self._settings.get(fingerprint)
                if setting is None:
                    raise UnknownSettingError(fingerprint)
                latch = self._compiling.get(fingerprint)
                if latch is None:
                    self._compiling[fingerprint] = threading.Event()
                    break
            # Someone else is compiling this very setting: wait on its
            # latch (not the registry lock) and re-check — if the owner's
            # compile failed, the retry elects a new owner.
            latch.wait()
        try:
            try:
                with obs_span("service.compile", setting=fingerprint[:12],
                              prewarm=prewarm):
                    compiled = compile_setting(setting)
            except BaseException:
                with self._lock:
                    self._stats.count("compile_failures")
                raise
            with self._lock:
                # Counted only on success: a raising compile admits no
                # shard, so charging compiled_misses/prewarm_compiles up
                # front would permanently skew those counters against the
                # shards actually admitted.  Failures get their own event.
                if prewarm:
                    self._stats.count("prewarm_compiles")
                else:
                    self._stats.miss("compiled")
                return self._admit_shard(fingerprint, compiled,
                                         prewarmed=prewarm), True
        finally:
            with self._lock:
                finished = self._compiling.pop(fingerprint)
            finished.set()

    def _admit_shard(self, fingerprint: str, compiled: CompiledSetting,
                     prewarmed: bool = False) -> Shard:
        engine = ExchangeEngine(
            compiled, result_cache=self.result_cache,
            result_cache_maxsize=self.result_cache_maxsize)
        if self.store is not None:
            engine.attach_store(self.store)
        shard = Shard(fingerprint, engine, prewarmed=prewarmed)
        self._shards[fingerprint] = shard
        self._shards.move_to_end(fingerprint)
        if self.max_compiled is not None:
            while len(self._shards) > self.max_compiled:
                _, evicted = self._shards.popitem(last=False)
                self._retire_plan_counters(evicted)
                evicted.close(wait=False)
                self._stats.evict("compiled")
        return shard

    def _retire_plan_counters(self, shard: Shard) -> None:
        """Fold an evicted shard's plan-cache counters into the registry's
        own stats, so the registry-level ``plan_cache_*`` view stays
        monotonic across shard evictions (a recompiled setting starts a
        fresh cache whose counters then add on top)."""
        cache = shard.engine.compiled.plan_cache
        self._stats.hit("plan_cache", cache.hits)
        self._stats.miss("plan_cache", cache.misses)
        self._stats.evict("plan_cache", cache.evictions)

    def engine(self, fingerprint: str) -> ExchangeEngine:
        """Shortcut for ``registry.shard(fingerprint).engine``."""
        return self.shard(fingerprint).engine

    def setting(self, fingerprint: str) -> DataExchangeSetting:
        with self._lock:
            setting = self._settings.get(fingerprint)
        if setting is None:
            raise UnknownSettingError(fingerprint)
        return setting

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def fingerprints(self) -> List[str]:
        """Every registered fingerprint, in registration order."""
        with self._lock:
            return list(self._settings)

    def compiled_fingerprints(self) -> List[str]:
        """Currently-compiled fingerprints, least recently used first."""
        with self._lock:
            return list(self._shards)

    def __len__(self) -> int:
        with self._lock:
            return len(self._settings)

    def __contains__(self, fingerprint: object) -> bool:
        with self._lock:
            return fingerprint in self._settings

    def stats(self) -> Dict[str, int]:
        """Registry-level counters: registrations, the compiled LRU,
        prewarming, quota rejections, and the plan caches aggregated over
        every currently-compiled shard *plus* shards already evicted (their
        counters are folded in at eviction time, so the registry-level
        ``plan_cache_hits/misses/evictions`` never decrease;
        ``plan_cache_entries`` counts live caches only)."""
        with self._lock:
            flat = self._stats.snapshot()
            flat.setdefault("compiled_hits", 0)
            flat.setdefault("compiled_misses", 0)
            flat.setdefault("compiled_evictions", 0)
            flat.setdefault("prewarm_compiles", 0)
            flat.setdefault("prewarm_hits", 0)
            flat.setdefault("compile_failures", 0)
            flat.setdefault("quota_rejections", 0)
            flat.setdefault("quota_release_underflow", 0)
            flat["settings_registered"] = len(self._settings)
            flat["compiled_entries"] = len(self._shards)
            flat["in_flight"] = sum(self._in_flight.values())
            shards = list(self._shards.values())
        # Retired (evicted-shard) counters live in self._stats and are part
        # of `flat` already; live shards add on top.  Entries count live
        # caches only.
        for name in ("plan_cache_hits", "plan_cache_misses",
                     "plan_cache_evictions"):
            flat.setdefault(name, 0)
        flat["plan_cache_entries"] = 0
        for shard in shards:
            cache = shard.engine.compiled.plan_cache
            flat["plan_cache_hits"] += cache.hits
            flat["plan_cache_misses"] += cache.misses
            flat["plan_cache_evictions"] += cache.evictions
            flat["plan_cache_entries"] += len(cache)
        # Store counters are *overlaid*, not summed: every shard engine
        # resolves through the registry's one store handle, so a per-shard
        # sum would multiply the same counters.
        if self.store is not None:
            flat.update(self.store.stats.snapshot())
        flat.setdefault("store_hits", 0)
        flat.setdefault("store_misses", 0)
        flat.setdefault("store_bytes", 0)
        return flat

    def shard_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-shard accounting for every currently-compiled shard."""
        with self._lock:
            shards = list(self._shards.items())
        return {fingerprint: shard.stats() for fingerprint, shard in shards}

    def close(self) -> None:
        """Shut down every shard's worker pool (settings stay registered)."""
        with self._lock:
            shards = list(self._shards.values())
        for shard in shards:
            shard.close()

    def __repr__(self) -> str:
        return (f"<SettingRegistry settings={len(self._settings)} "
                f"compiled={len(self._shards)}"
                f"{'' if self.max_compiled is None else f'/{self.max_compiled}'}>")
