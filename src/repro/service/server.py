"""A stdlib-only JSON-lines TCP server over :class:`AsyncExchangeService`.

The demonstration workload of the serving layer: one asyncio server process
holding one :class:`~repro.service.AsyncExchangeService`, speaking
newline-delimited JSON (see :mod:`repro.service.protocol`).  Run it with::

    python -m repro.service.server [--host 127.0.0.1] [--port 8421]
        [--executor thread] [--parallel 4]
        [--max-compiled N] [--result-cache-maxsize N]

``--port 0`` picks a free port; the server always announces
``listening on HOST:PORT`` on stdout once it accepts connections, which is
what the client helper's ``--smoke`` mode (and CI) wait for.

Protocol (one JSON object per line, ``id`` echoed back when present):

===================  ====================================================
request ``op``       reply (all carry ``"ok"``; errors add ``error``/
                     ``message`` and keep the connection open)
===================  ====================================================
``register``         ``{"fingerprint": …}`` — body: ``{"setting": …}``
``consistency``      ``{"consistent": bool, "strategy": …, "elapsed": …}``
``classify``         ``{"tractable": bool, "detail": …}``
``solve``            ``{"result_ok": bool, "solution": tree|null, …}``
``certain_answers``  ``{"result_ok": bool, "answers": […]|null,``
                     ``"variables": […], …}``
``stats``            ``{"stats": {…}}`` — registry + per-shard counters
``ping``             ``{"pong": true}``
``shutdown``         ``{"bye": true}``, then the server exits cleanly
===================  ====================================================

Engine failures (``ChaseError``, precondition ``ValueError``\\ s, unknown
fingerprints) are *responses*, never connection drops: the error class name
travels in ``error`` so clients can re-raise faithfully.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Any, Dict, List, Optional

from .protocol import (answers_to_wire, decode_line, encode_line,
                       query_from_wire, setting_from_wire, tree_from_wire,
                       tree_to_wire)
from .service import SERVICE_EXECUTORS, AsyncExchangeService

__all__ = ["ExchangeServer", "main"]


class ExchangeServer:
    """The asyncio JSON-lines front end of one :class:`AsyncExchangeService`."""

    def __init__(self, service: AsyncExchangeService,
                 host: str = "127.0.0.1", port: int = 8421) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._writers: set = set()
        self.connections = 0
        self.requests = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._serve_connection,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self, announce: bool = True) -> None:
        """Serve until a ``shutdown`` request arrives, then close cleanly."""
        if self._server is None:
            await self.start()
        if announce:
            print(f"listening on {self.host}:{self.port}", flush=True)
        await self._shutdown.wait()
        await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            # Close every live connection first: a handler parked in
            # readline() sees EOF and exits, otherwise wait_closed() (which
            # since 3.12.1 waits for all connection handlers, not just the
            # listening socket) would hang on any idle client.
            for writer in list(self._writers):
                writer.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections += 1
        self._writers.add(writer)
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._handle_line(line)
                writer.write(encode_line(reply))
                await writer.drain()
                if reply.get("bye"):
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        try:
            message = decode_line(line)
            request_id = message.get("id")
            reply = await self._dispatch(message)
        except Exception as error:
            reply = {"ok": False, "error": type(error).__name__,
                     "message": str(error)}
        if request_id is not None:
            reply["id"] = request_id
        return reply

    async def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        self.requests += 1
        if op == "ping":
            return {"ok": True, "op": op, "pong": True}
        if op == "stats":
            return {"ok": True, "op": op, "stats": self.service.stats(),
                    "server": {"connections": self.connections,
                               "requests": self.requests}}
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "op": op, "bye": True}
        if op == "register":
            fingerprint = self.service.register(
                setting_from_wire(message["setting"]))
            return {"ok": True, "op": op, "fingerprint": fingerprint}
        if op == "consistency":
            result = await self.service.check_consistency(
                message["fingerprint"], message.get("strategy", "auto"))
            return {"ok": True, "op": op, "consistent": bool(result.payload),
                    "strategy": result.strategy, "elapsed": result.elapsed}
        if op == "classify":
            result = await self.service.classify(message["fingerprint"])
            return {"ok": True, "op": op,
                    "tractable": bool(result.payload.tractable),
                    "detail": result.detail, "elapsed": result.elapsed}
        if op == "solve":
            result = await self.service.solve(
                message["fingerprint"], tree_from_wire(message["tree"]))
            solution = (tree_to_wire(result.payload)
                        if result.ok and result.payload is not None else None)
            return {"ok": True, "op": op, "result_ok": result.ok,
                    "solution": solution, "detail": result.detail,
                    "elapsed": result.elapsed}
        if op == "certain_answers":
            order = message.get("variable_order")
            result = await self.service.certain_answers(
                message["fingerprint"], tree_from_wire(message["tree"]),
                query_from_wire(message["query"]), order)
            raw = result.raw
            return {"ok": True, "op": op, "result_ok": result.ok,
                    "answers": answers_to_wire(result.payload),
                    "variables": list(raw.variable_order),
                    "detail": result.detail, "elapsed": result.elapsed}
        raise ValueError(f"unknown operation {op!r}")


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.server", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--executor", default="thread",
                        choices=SERVICE_EXECUTORS)
    parser.add_argument("--parallel", type=int, default=4)
    parser.add_argument("--max-compiled", type=int, default=None,
                        help="LRU bound on concurrently compiled settings")
    parser.add_argument("--result-cache-maxsize", type=int, default=None,
                        help="per-setting LRU bound on cached results")
    args = parser.parse_args(argv)

    async def run() -> None:
        service = AsyncExchangeService(
            executor=args.executor, parallel=args.parallel,
            max_compiled=args.max_compiled,
            result_cache_maxsize=args.result_cache_maxsize)
        server = ExchangeServer(service, args.host, args.port)
        await server.serve_until_shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    print("server shut down cleanly", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
