"""A stdlib-only JSON-lines TCP server over :class:`AsyncExchangeService`.

The demonstration workload of the serving layer: one asyncio server process
holding one :class:`~repro.service.AsyncExchangeService`, speaking
newline-delimited JSON (see :mod:`repro.service.protocol`).  Run it with::

    python -m repro.service.server [--host 127.0.0.1] [--port 8421]
        [--executor thread] [--parallel 4] [--workers N]
        [--max-compiled N] [--result-cache-maxsize N]
        [--max-in-flight N] [--max-registered N] [--store PATH]

**Persistence**: ``--store PATH`` opens (creating if needed) an on-disk
:class:`~repro.storage.CorpusStore` at ``PATH``.  Documents uploaded with
the ``put_tree`` op land there and become addressable by fingerprint
(``"tree_fp"``) on every per-tree request; settings registered with
``"persist": true`` have their *compiled* form pickled into the store, and
on boot the server restores every persisted setting plan-warm — the first
request after a restart is a ``compiled_hit``, never a compile.  Without
``--store`` the server still accepts ``put_tree`` into an ephemeral
in-memory store (host mode excepted — worker processes can only share an
on-disk store).

``--port 0`` picks a free port; the server always announces
``listening on HOST:PORT`` on stdout once it accepts connections, which is
what the client helper's ``--smoke`` mode (and CI) wait for.

**Multi-process serving**: ``--workers N`` selects the ``host`` executor —
``N`` long-lived worker processes (default ``os.cpu_count()`` with
``--executor host`` alone), each owning the compiled settings, plan caches
and result caches of the fingerprints routed to it by
``DataExchangeSetting.fingerprint()``.  Workers stay warm across requests
(nothing per-setting is re-pickled per call, unlike ``--executor
process``), escape the GIL on multi-core machines, and are restarted and
re-registered transparently if they crash (``worker_restarts`` under
``stats()["host"]``).  This is the production shape for heavy multi-core
traffic; ``--executor thread`` remains the single-process default.

**Connections are pipelined**: every request line starts its own asyncio
task the moment it is read, and replies are written as the requests
*complete* — matched to their request by the echoed ``id``, not by arrival
order.  A slow ``solve`` never delays a fast ``ping`` sent after it on the
same connection.  Clients that want the old lock-step behaviour simply wait
for each reply before sending the next request (which is exactly what
:meth:`repro.service.client.ServiceClient.request` does); pipelining
clients use ``submit()``/``collect()`` or ``pipeline()`` and demultiplex
by ``id``.  Requests sent *without* an ``id`` are answered too, but their
replies carry nothing to match on — pipeline only with ids.

Protocol (one JSON object per line, ``id`` echoed back when present):

===================  ====================================================
request ``op``       reply (all carry ``"ok"``; errors add ``error``/
                     ``message`` and keep the connection open)
===================  ====================================================
``register``         ``{"fingerprint": …}`` — body: ``{"setting": …}``;
                     optional ``"prewarm": true`` schedules a background
                     compile so the first request finds the shard warm;
                     ``"persist": true`` compiles off-loop and pickles the
                     compiled setting into the store before replying
``put_tree``         ``{"fingerprint": …}`` — body: ``{"tree": …}``; the
                     stored fingerprint is accepted as ``"tree_fp"`` in
                     place of an inline ``"tree"`` on ``solve`` /
                     ``certain_answers`` (an unknown one is a typed
                     ``UnknownDocumentError`` response)
``consistency``      ``{"consistent": bool, "strategy": …, "elapsed": …}``
``classify``         ``{"tractable": bool, "detail": …}``
``solve``            ``{"result_ok": bool, "solution": tree|null, …}``
``certain_answers``  ``{"result_ok": bool, "answers": […]|null,``
                     ``"variables": […], …}``
``stats``            ``{"stats": {…}, "obs": {…}}`` — registry + per-shard
                     counters, plus the metrics-registry snapshot
``trace_dump``       ``{"enabled": bool, "spans": […]}`` — the span ring
                     buffer (optional ``"limit"`` keeps the newest N)
``ping``             ``{"pong": true}``
``shutdown``         ``{"bye": true}``, then the server exits cleanly
                     (in-flight requests on the connection reply first)
===================  ====================================================

Engine failures (``ChaseError``, precondition ``ValueError``\\ s, unknown
fingerprints, quota rejections) are *responses*, never connection drops:
the error class name travels in ``error`` so clients can re-raise
faithfully — see :func:`repro.service.protocol.error_to_wire`.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import threading
from typing import Any, Dict, List, Optional, Set

from ..obs.metrics import loop_lag_probe
from ..obs.metrics import registry as obs_metrics
from ..obs.trace import configure as obs_configure
from ..obs.trace import enabled as obs_enabled
from ..obs.trace import records as obs_records
from ..obs.trace import span as obs_span
from .protocol import (answers_to_wire, decode_line, encode_line,
                       error_to_wire, query_from_wire, setting_from_wire,
                       tree_from_wire, tree_to_wire)
from .quota import QuotaPolicy
from .service import SERVICE_EXECUTORS, AsyncExchangeService

__all__ = ["ExchangeServer", "serve_in_background", "main"]


class ExchangeServer:
    """The asyncio JSON-lines front end of one :class:`AsyncExchangeService`."""

    #: Per-line buffer bound: big solve requests (large source trees)
    #: easily exceed asyncio's 64 KiB default.
    DEFAULT_LINE_LIMIT = 32 * 1024 * 1024

    def __init__(self, service: AsyncExchangeService,
                 host: str = "127.0.0.1", port: int = 8421,
                 line_limit: int = DEFAULT_LINE_LIMIT) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.line_limit = line_limit
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._writers: set = set()
        #: Background prewarm tasks spawned by ``register`` + ``prewarm``.
        self._warm_tasks: Set[asyncio.Task] = set()
        #: Live connection-handler tasks, so aclose() can drain them
        #: instead of letting loop teardown cancel them mid-EOF.
        self._conn_tasks: Set[asyncio.Task] = set()
        self.connections = 0
        self.requests = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._serve_connection,
                                                  self.host, self.port,
                                                  limit=self.line_limit)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self, announce: bool = True) -> None:
        """Serve until a ``shutdown`` request arrives, then close cleanly."""
        if self._server is None:
            await self.start()
        if announce:
            # repro-lint: disable=RL001 -- startup banner: the CI smoke test
            # and example clients block on this exact line to learn the port
            print(f"listening on {self.host}:{self.port}", flush=True)
        probe: Optional[asyncio.Task] = None
        if obs_enabled():
            # The event-loop lag probe only runs when observability is on:
            # it feeds the ``loop.lag`` gauge the extended ``stats`` op
            # reports, surfacing loop stalls (big codec work that escaped
            # the offload threshold, GC pauses) as a number.
            probe = asyncio.create_task(loop_lag_probe())
        try:
            await self._shutdown.wait()
        finally:
            if probe is not None:
                probe.cancel()
            await self.aclose()

    async def aclose(self) -> None:
        for task in list(self._warm_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            # Close every live connection first: a handler parked in
            # readline() sees EOF and exits, otherwise wait_closed() (which
            # since 3.12.1 waits for all connection handlers, not just the
            # listening socket) would hang on any idle client.
            for writer in list(self._writers):
                writer.close()
            # ... and give the handlers a chance to actually process that
            # EOF: the service shutdown below blocks the loop, and a
            # handler still parked in readline() at loop teardown would be
            # cancelled noisily instead of exiting cleanly.
            if self._conn_tasks:
                await asyncio.wait(list(self._conn_tasks), timeout=5)
            await self._server.wait_closed()
            self._server = None
        await self.service.aclose()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """One connection, **pipelined**: each request line becomes its own
        task; replies are written (under a per-connection lock) as requests
        complete, in completion order, matched by the echoed ``id``."""
        self.connections += 1
        self._writers.add(writer)
        handler = asyncio.current_task()
        if handler is not None:
            self._conn_tasks.add(handler)
            handler.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        in_flight: Set[asyncio.Task] = set()
        closing = asyncio.Event()
        try:
            while not (self._shutdown.is_set() or closing.is_set()):
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(self._serve_line(
                    line, writer, write_lock, in_flight, closing))
                in_flight.add(task)
                task.add_done_callback(in_flight.discard)
            # EOF (or shutdown): let in-flight requests finish replying
            # before the connection is torn down.
            if in_flight:
                await asyncio.gather(*in_flight, return_exceptions=True)
        except (ConnectionResetError, asyncio.IncompleteReadError,
                ValueError):
            # ValueError: a request line overran line_limit — the stream is
            # no longer parseable, so the connection must drop.
            pass
        finally:
            for task in list(in_flight):
                task.cancel()
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock,
                          in_flight: Set[asyncio.Task],
                          closing: asyncio.Event) -> None:
        """Serve one request line to completion and write its reply."""
        reply = await self._handle_line(line)
        bye = bool(reply.get("bye"))
        first_bye = False
        if bye:
            # Only the FIRST shutdown on a connection waits for the other
            # in-flight requests — a second pipelined shutdown must not
            # gather the first (they would deadlock awaiting each other).
            first_bye = not closing.is_set()
            closing.set()
        try:
            if first_bye:
                # Graceful shutdown: every other in-flight request on this
                # connection replies before the "bye" goes out and the
                # server starts closing connections.
                current = asyncio.current_task()
                others = [task for task in in_flight if task is not current]
                if others:
                    await asyncio.gather(*others, return_exceptions=True)
            async with write_lock:
                try:
                    writer.write(encode_line(reply))
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    pass
        finally:
            # Only the FIRST bye triggers the server shutdown: it has
            # awaited every other in-flight task (later byes included), so
            # all replies are on the wire before connections start closing.
            # Set even when the client vanished before reading the reply —
            # the shutdown it requested must still happen.
            if first_bye:
                self._shutdown.set()

    #: Payloads above this many bytes are decoded/encoded off the event
    #: loop: a multi-megabyte solve tree must not stall the loop that every
    #: other connection's replies are written from.
    OFFLOAD_CODEC_BYTES = 64 * 1024

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        request_id: Any = None
        big = len(line) > self.OFFLOAD_CODEC_BYTES
        # server.request is the outermost span of a request's trace: every
        # codec, service and (host-mode) worker span parents under it.
        with obs_span("server.request", bytes=len(line)) as root:
            try:
                if big:
                    with obs_span("server.codec", kind="decode"):
                        message = await self.service.offload(
                            lambda: decode_line(line))
                else:
                    message = decode_line(line)
                request_id = message.get("id")
                root.annotate(op=message.get("op"))
                reply = await self._dispatch(message, big)
            except Exception as error:
                reply = error_to_wire(error)
        if request_id is not None:
            reply["id"] = request_id
        return reply

    async def _dispatch(self, message: Dict[str, Any],
                        big: bool = False) -> Dict[str, Any]:
        op = message.get("op")
        self.requests += 1

        async def wire_tree(wire: Any):
            """Deserialize the request tree — off-loop when the request
            line was big, so a huge source tree cannot stall the loop."""
            if big:
                with obs_span("server.codec", kind="tree"):
                    return await self.service.offload(
                        lambda: tree_from_wire(wire))
            return tree_from_wire(wire)

        async def wire_source(msg: Dict[str, Any]):
            """The per-tree request's source: a stored-document fingerprint
            (``tree_fp``, nothing tree-sized on the wire) or the inline
            ``tree`` — the compatibility path."""
            if msg.get("tree_fp") is not None:
                return str(msg["tree_fp"])
            return await wire_tree(msg["tree"])

        if op == "ping":
            return {"ok": True, "op": op, "pong": True}
        if op == "stats":
            return {"ok": True, "op": op, "stats": self.service.stats(),
                    "server": {"connections": self.connections,
                               "requests": self.requests},
                    "obs": {"tracing": obs_enabled(),
                            "metrics": obs_metrics.snapshot()}}
        if op == "trace_dump":
            # The live tracing surface: the ring buffer of finished spans,
            # newest last (``limit`` keeps only the most recent N).
            return {"ok": True, "op": op, "enabled": obs_enabled(),
                    "spans": obs_records(message.get("limit"))}
        if op == "shutdown":
            # The shutdown event is set by _serve_line *after* the "bye"
            # reply is on the wire (and after the connection's other
            # in-flight requests have replied) — setting it here would race
            # aclose() against our own reply.
            return {"ok": True, "op": op, "bye": True}
        if op == "register":
            # A big register line means a big setting: rebuild it off-loop
            # like trees, so DTD parsing cannot stall other connections.
            if big:
                with obs_span("server.codec", kind="setting"):
                    setting = await self.service.offload(
                        lambda: setting_from_wire(message["setting"]))
            else:
                setting = setting_from_wire(message["setting"])
            if message.get("persist"):
                # persist compiles (under prewarm accounting) and writes
                # the store — blocking work, so it runs off the loop; the
                # reply only goes out once the pickle is durable.
                service = self.service
                fingerprint = await service.offload(
                    lambda: service.register(setting, persist=True))
                return {"ok": True, "op": op, "fingerprint": fingerprint,
                        "persisted": True}
            fingerprint = self.service.register(setting)
            if message.get("prewarm"):
                self._spawn_prewarm(fingerprint)
            return {"ok": True, "op": op, "fingerprint": fingerprint}
        if op == "put_tree":
            tree = await wire_tree(message["tree"])
            fingerprint = await self.service.put_tree(tree)
            return {"ok": True, "op": op, "fingerprint": fingerprint}
        if op == "prewarm":
            self._spawn_prewarm(message["fingerprint"])
            return {"ok": True, "op": op, "scheduled": True}
        if op == "consistency":
            result = await self.service.check_consistency(
                message["fingerprint"], message.get("strategy", "auto"))
            return {"ok": True, "op": op, "consistent": bool(result.payload),
                    "strategy": result.strategy, "elapsed": result.elapsed}
        if op == "classify":
            result = await self.service.classify(message["fingerprint"])
            return {"ok": True, "op": op,
                    "tractable": bool(result.payload.tractable),
                    "detail": result.detail, "elapsed": result.elapsed}
        if op == "solve":
            result = await self.service.solve(
                message["fingerprint"], await wire_source(message))
            if result.ok and result.payload is not None:
                payload = result.payload
                # Solutions are at least source-sized: render big ones
                # off-loop too.
                if big:
                    with obs_span("server.codec", kind="solution"):
                        solution = await self.service.offload(
                            lambda: tree_to_wire(payload))
                else:
                    solution = tree_to_wire(payload)
            else:
                solution = None
            return {"ok": True, "op": op, "result_ok": result.ok,
                    "solution": solution, "detail": result.detail,
                    "elapsed": result.elapsed}
        if op == "certain_answers":
            order = message.get("variable_order")
            # The query parse rides the same rule as the tree: a big
            # request line must not decode any of its payload on the loop.
            if big:
                with obs_span("server.codec", kind="query"):
                    query = await self.service.offload(
                        lambda: query_from_wire(message["query"]))
            else:
                query = query_from_wire(message["query"])
            result = await self.service.certain_answers(
                message["fingerprint"], await wire_source(message),
                query, order)
            raw = result.raw
            payload = result.payload
            # Answer sets scale with the (big) source tree: render off-loop.
            if big:
                with obs_span("server.codec", kind="answers"):
                    answers = await self.service.offload(
                        lambda: answers_to_wire(payload))
            else:
                answers = answers_to_wire(payload)
            return {"ok": True, "op": op, "result_ok": result.ok,
                    "answers": answers,
                    "variables": list(raw.variable_order),
                    "detail": result.detail, "elapsed": result.elapsed}
        raise ValueError(f"unknown operation {op!r}")

    def _spawn_prewarm(self, fingerprint: str) -> None:
        """Compile-ahead in the background: the register/prewarm reply goes
        out immediately while the compile runs on the service executor, so
        the setting's first real request finds a warm shard."""
        task = asyncio.create_task(self._prewarm(fingerprint))
        self._warm_tasks.add(task)
        task.add_done_callback(self._warm_tasks.discard)

    async def _prewarm(self, fingerprint: str) -> None:
        try:
            await self.service.prewarm(fingerprint)
        except asyncio.CancelledError:  # pragma: no cover - shutdown race
            raise
        except Exception:
            # Best-effort warm-up: a failing compile surfaces (typed) on
            # the first real request, exactly as without prewarming.
            pass


# --------------------------------------------------------------------- #
# Embedded server
# --------------------------------------------------------------------- #

def serve_in_background(**service_kwargs: Any):
    """Boot an :class:`ExchangeServer` on a daemon thread with its own
    event loop; block until it accepts connections.

    The embedded-server helper the in-process tests and benchmarks share
    (an alternative to the ``python -m repro.service.server`` subprocess):
    returns ``(port, server, join)`` where ``join()`` waits for the server
    loop to exit after a ``shutdown`` request and raises if it does not.
    ``service_kwargs`` go to :class:`AsyncExchangeService` verbatim.
    """
    ready = threading.Event()
    holder: Dict[str, Any] = {}

    def run() -> None:
        async def serve() -> None:
            service = AsyncExchangeService(**service_kwargs)
            server = ExchangeServer(service, port=0)
            await server.start()
            holder["port"] = server.port
            holder["server"] = server
            ready.set()
            await server.serve_until_shutdown(announce=False)

        try:
            asyncio.run(serve())
        except BaseException as error:  # surfaced to the caller below
            holder["error"] = error
            ready.set()

    thread = threading.Thread(target=run, daemon=True,
                              name="exchange-server")
    thread.start()
    if not ready.wait(timeout=60):
        raise RuntimeError("embedded exchange server did not come up")
    if "error" in holder and "port" not in holder:
        raise RuntimeError("embedded exchange server failed to start") \
            from holder["error"]

    def join(timeout: float = 60) -> None:
        thread.join(timeout=timeout)
        if thread.is_alive():
            raise RuntimeError("embedded exchange server did not shut down")
        if "error" in holder:
            raise RuntimeError("embedded exchange server crashed") \
                from holder["error"]

    return holder["port"], holder["server"], join


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.server", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8421,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--executor", default=None,
                        choices=SERVICE_EXECUTORS,
                        help="request executor (default: thread, or host "
                             "when --workers is given)")
    parser.add_argument("--parallel", type=int, default=4)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the host executor "
                             "(implies --executor host; --executor host "
                             "alone defaults to os.cpu_count())")
    parser.add_argument("--max-compiled", type=int, default=None,
                        help="LRU bound on concurrently compiled settings")
    parser.add_argument("--result-cache-maxsize", type=int, default=None,
                        help="per-setting LRU bound on cached results")
    parser.add_argument("--max-in-flight", type=int, default=None,
                        help="per-setting quota on admitted-but-unfinished "
                             "requests (over-quota work is rejected with "
                             "QuotaExceededError, not queued)")
    parser.add_argument("--max-registered", type=int, default=None,
                        help="quota on distinct registered settings")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="open (creating if needed) an on-disk corpus "
                             "store at PATH: put_tree documents and "
                             "persist-registered settings survive restarts, "
                             "and every persisted setting is restored "
                             "plan-warm on boot")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="enable tracing and append every finished "
                             "span to PATH as JSON lines (render with "
                             "python -m repro.obs.report PATH)")
    parser.add_argument("--slow-ms", type=float, default=None,
                        help="enable tracing and log the full span tree "
                             "of any request slower than this many "
                             "milliseconds to stderr")
    args = parser.parse_args(argv)

    if args.workers is not None and args.executor not in (None, "host"):
        parser.error(f"--workers selects the host executor; it cannot be "
                     f"combined with --executor {args.executor}")
    executor = args.executor or ("host" if args.workers is not None
                                 else "thread")

    quota: Optional[QuotaPolicy] = None
    if args.max_in_flight is not None or args.max_registered is not None:
        quota = QuotaPolicy(max_in_flight=args.max_in_flight,
                            max_registered=args.max_registered)

    if args.trace is not None or args.slow_ms is not None:
        obs_configure(trace_path=args.trace,
                      slow_threshold=(args.slow_ms / 1000.0
                                      if args.slow_ms is not None else None))

    async def run() -> None:
        service = AsyncExchangeService(
            executor=executor, parallel=args.parallel,
            workers=args.workers,
            max_compiled=args.max_compiled,
            result_cache_maxsize=args.result_cache_maxsize,
            quota=quota, store=args.store)
        if args.store is not None:
            # Plan-warm boot: every setting persisted in the store is
            # re-admitted compiled before the listening banner, so the
            # first request a client can possibly send never compiles.
            restored = await service.offload(service.restore_settings)
            # repro-lint: disable=RL001 -- startup banner (pre-listen), the
            # restart smoke test blocks on this exact line
            print(f"restored {len(restored)} setting(s) from "
                  f"{args.store}", flush=True)
        server = ExchangeServer(service, args.host, args.port)
        await server.serve_until_shutdown()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    print("server shut down cleanly", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
