"""The async, multi-setting serving facade.

:class:`AsyncExchangeService` is what a long-lived server holds: one object
serving **many settings at once**, with every call awaitable and the actual
pipeline work running off the event loop on a configurable executor.

* Settings are admitted through :meth:`register` (cheap, synchronous) and
  compiled lazily by the underlying :class:`SettingRegistry`, bounded by its
  compiled-settings LRU.
* Single requests (:meth:`check_consistency`, :meth:`solve`,
  :meth:`certain_answers`, :meth:`classify`, :meth:`submit`) resolve to an
  :class:`~repro.engine.EngineResult` and **raise exactly what a direct
  engine call would raise** — ``ChaseError`` and friends surface unchanged
  through ``await``.
* :meth:`batch` takes a mixed-setting request list, partitions it into
  per-shard sub-batches (:class:`Router`), runs the sub-batches concurrently
  on the executor and re-assembles :class:`ServiceResult` slots in
  submission order, isolating failures per request.
* Admission control: with a :class:`~repro.service.quota.QuotaPolicy`, work
  beyond a setting's ``max_in_flight`` is rejected **at submission time**
  with a typed :class:`~repro.service.quota.QuotaExceededError` — raised
  await-side for single requests, captured as that slot's ``error`` in
  batches — instead of queueing without bound on the executor.  Rejections
  never touch the request's batch neighbours.
* Prewarming: ``register(setting, prewarm=True)`` compiles before
  returning; :meth:`prewarm` does the same compile off the event loop, so
  a server can warm settings in the background (``prewarm_*`` counters in
  ``stats()["registry"]``).

Executors
---------

``executor="thread"`` (default)
    Requests run on a shared thread pool via ``run_in_executor`` — the loop
    never blocks; pipeline work is GIL-bound but routing, caching and I/O
    overlap fully.
``executor="process"``
    Requests are *coordinated* on the thread pool but per-tree work runs on
    the owning shard's process pool (compiled setting shipped once per
    worker), escaping the GIL on multi-core machines.
``executor="serial"``
    Everything runs inline on the loop thread — deterministic and
    dependency-free, for tests and debugging; the loop *does* block while a
    request computes.
``executor="host"``
    Requests are forwarded to a :class:`~repro.service.host.ShardHost` —
    ``workers`` long-lived worker processes (default ``os.cpu_count()``),
    each owning the compiled settings, plan caches and result caches of the
    fingerprints routed to it.  Unlike ``"process"``, nothing per-setting is
    re-pickled per call: workers stay warm across requests, and a crashed
    worker is restarted and re-registered transparently (counted as
    ``worker_restarts`` in ``stats()["host"]``).  The thread pool merely
    coordinates pipe round-trips; quota admission stays loop-side in the
    local registry, which never compiles in this mode.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import (Any, Callable, Dict, List, Optional, Sequence, TypeVar,
                    Union)

from ..engine import EngineResult
from ..engine.compiled import CompiledSetting
from ..exchange.setting import DataExchangeSetting
from ..obs.trace import (activate, current_context, emit,
                         enabled as obs_enabled, span as obs_span)
from ..patterns.queries import Query
from ..storage import CorpusStore, StoreError
from ..xmlmodel.tree import XMLTree
from .host import ShardHost
from .quota import QuotaExceededError, QuotaPolicy
from .registry import SettingRegistry
from .requests import (ExchangeRequest, ServiceResult,
                       certain_answers_request, classify_request,
                       consistency_request, solve_request)
from .router import Router

__all__ = ["AsyncExchangeService", "SERVICE_EXECUTORS"]

#: Executor names accepted by :class:`AsyncExchangeService`.
SERVICE_EXECUTORS = ("serial", "thread", "process", "host")

_T = TypeVar("_T")


class AsyncExchangeService:
    """Await-able exchange serving across many settings (see module docs)."""

    def __init__(self, registry: Optional[SettingRegistry] = None,
                 executor: str = "thread", parallel: int = 4,
                 max_compiled: Optional[int] = None,
                 result_cache_maxsize: Optional[int] = None,
                 quota: Optional[QuotaPolicy] = None,
                 workers: Optional[int] = None,
                 store: Optional[Union[CorpusStore, str,
                                       "os.PathLike"]] = None) -> None:
        if executor not in SERVICE_EXECUTORS:
            raise ValueError(
                f"unknown service executor {executor!r}; "
                f"expected one of {', '.join(SERVICE_EXECUTORS)}")
        if parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel!r}")
        if workers is not None and executor != "host":
            raise ValueError("workers is the shard-host worker-process "
                             "count; it requires executor='host'")
        if registry is not None and store is not None:
            raise ValueError(
                "pass the corpus store either on the registry or to the "
                "service, not both: an explicit registry keeps its own "
                "store")
        #: The corpus store behind ``put_tree`` and fingerprint-addressed
        #: requests.  ``store`` may be a :class:`CorpusStore` or a store
        #: directory path; without one, non-host executors get an
        #: ephemeral in-memory store (so ``put_tree`` works out of the
        #: box — it just does not survive restarts), while host mode —
        #: whose workers must reopen the store from other processes —
        #: keeps ``None`` until given an on-disk path.
        if store is not None and not isinstance(store, CorpusStore):
            store = CorpusStore(store)
        if store is None and registry is None and executor != "host":
            store = CorpusStore(None)
        if registry is None:
            registry = SettingRegistry(
                max_compiled=max_compiled,
                result_cache_maxsize=result_cache_maxsize,
                quota=quota,
                store=None if executor == "host" else store)
        elif (max_compiled is not None or result_cache_maxsize is not None
                or quota is not None):
            raise ValueError(
                "pass cache bounds and quotas either on the registry or to "
                "the service, not both: an explicit registry keeps its own "
                "max_compiled / result_cache_maxsize / quota")
        self.store: Optional[CorpusStore] = \
            store if store is not None else registry.store
        self.registry = registry
        self.router = Router(registry)
        self.executor = executor
        self.parallel = parallel
        #: Per-tree work is sent to the owning shard's process pool only in
        #: process mode; the thread pool then merely coordinates.
        self._process_parallel = parallel if executor == "process" else None
        self._host: Optional[ShardHost] = None
        if executor == "host":
            # Worker registries mirror the local registry's cache bounds;
            # quota stays local — admission happens before the pipe.  The
            # store (when on-disk) is opened read-only in every worker;
            # the supervisor keeps the writable handle.
            self._host = ShardHost(
                workers=workers,
                max_compiled=registry.max_compiled,
                result_cache=registry.result_cache,
                result_cache_maxsize=registry.result_cache_maxsize,
                store=store)
        self._pool: Optional[ThreadPoolExecutor] = None
        if executor != "serial":
            # In host mode every in-flight pipe round-trip parks a thread,
            # so the coordinating pool must at least match the worker count
            # or it would serialise the workers it is supposed to saturate.
            pool_size = parallel if self._host is None \
                else max(parallel, self._host.workers)
            self._pool = ThreadPoolExecutor(
                max_workers=pool_size,
                thread_name_prefix="exchange-service")
        self._closed = False

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def register(self, setting: Union[DataExchangeSetting, CompiledSetting],
                 *legacy: bool, prewarm: bool = False,
                 persist: bool = False) -> str:
        """Admit a setting; returns its fingerprint (the routing key).

        Synchronous on purpose: admission only fingerprints and stores the
        setting — compilation happens lazily on the serving path.
        ``prewarm=True`` compiles before returning (blocking the caller, not
        the loop — from a coroutine prefer ``register()`` followed by
        ``await prewarm(fingerprint)``), so the first request never pays
        compile latency.  ``persist=True`` additionally pickles the compiled
        setting into the attached corpus store (compiling now if needed,
        under prewarm accounting), so a restarted server can
        :meth:`restore_settings` and answer its first request plan-warm.

        In host mode the local registry only *admits* (quota enforcement,
        routing keys — it never compiles); the setting is then forwarded to
        its owning worker process, which compiles on ``prewarm=True``.
        """
        prewarm = SettingRegistry._consolidate_register_args(legacy, prewarm)
        if self._host is None:
            return self.registry.register(setting, prewarm=prewarm,
                                          persist=persist)
        plain = setting.setting if isinstance(setting, CompiledSetting) \
            else setting
        fingerprint = self.registry.register(plain)
        self._host.register(setting, prewarm=prewarm, persist=persist)
        return fingerprint

    def restore_settings(self) -> List[str]:
        """Re-admit every setting persisted in the attached store, compiled
        and prewarmed (``prewarm_hits``, zero ``compiled_misses``): the
        plan-warm restart path.  Returns the restored fingerprints."""
        if self._host is not None:
            restored = self._host.restore_from_store()
            for fingerprint in restored:
                item = self.store.get_setting(fingerprint) \
                    if self.store is not None else None
                if item is not None:
                    # Local registry handles routing/quota only; admit the
                    # plain setting so fingerprints resolve loop-side.
                    self.registry.register(item.compiled.setting)
            return restored
        return self.registry.restore_from_store()

    async def put_tree(self, tree: XMLTree) -> str:
        """Store a source document; returns its fingerprint, usable in
        place of an inline tree on every per-tree request.  The write runs
        off the event loop (store I/O is blocking)."""
        store = self.store
        if store is None:
            raise StoreError(
                "service has no corpus store attached; host-mode services "
                "need an on-disk store (store=PATH) to accept documents")
        return await self._offload(partial(store.put_tree, tree))

    async def prewarm(self, fingerprint: str) -> bool:
        """Compile a registered setting off the event loop, ahead of its
        first request.  Returns ``True`` when this call did the compile,
        ``False`` when the setting was already warm."""
        if self._host is not None:
            return await self._offload(
                partial(self._host.prewarm, fingerprint))
        return await self._offload(
            partial(self.registry.prewarm, fingerprint))

    # ------------------------------------------------------------------ #
    # Await-able single requests
    # ------------------------------------------------------------------ #

    async def submit(self, request: ExchangeRequest) -> EngineResult:
        """Serve one request; shard exceptions surface unchanged.

        With an in-flight quota the request is admitted (or rejected with
        :class:`~repro.service.quota.QuotaExceededError`) *here*, before any
        executor queueing; the slot is released when the request settles.
        """
        with obs_span("service.request", op=request.op,
                      setting=request.fingerprint[:12]):
            with obs_span("service.admission"):
                self.registry.quota_acquire(request.fingerprint)
            try:
                if self._host is not None:
                    return await self._traced_offload(
                        partial(self._host.execute, request))
                return await self._traced_offload(
                    partial(self.router.execute, request,
                            process_parallel=self._process_parallel))
            finally:
                self.registry.quota_release(request.fingerprint)

    async def check_consistency(self, fingerprint: str,
                                strategy: str = "auto") -> EngineResult:
        return await self.submit(consistency_request(fingerprint, strategy))

    async def classify(self, fingerprint: str) -> EngineResult:
        return await self.submit(classify_request(fingerprint))

    async def solve(self, fingerprint: str,
                    tree: Union[XMLTree, str]) -> EngineResult:
        return await self.submit(solve_request(fingerprint, tree))

    async def certain_answers(self, fingerprint: str,
                              tree: Union[XMLTree, str],
                              query: Query,
                              variable_order: Optional[Sequence[str]] = None
                              ) -> EngineResult:
        return await self.submit(
            certain_answers_request(fingerprint, tree, query, variable_order))

    # ------------------------------------------------------------------ #
    # Batches
    # ------------------------------------------------------------------ #

    async def batch(self, requests: Sequence[ExchangeRequest],
                    return_exceptions: bool = True) -> List[ServiceResult]:
        """Serve a mixed-setting batch; results keep submission order.

        The batch is partitioned into per-shard sub-batches which run
        concurrently on the service executor.  Failures mark only their own
        slot (``ServiceResult.error``); with ``return_exceptions=False`` the
        first failed slot's exception is re-raised after the whole batch has
        settled, so one bad request still cannot abort its neighbours
        mid-flight.

        With an in-flight quota, slots are admitted in submission order —
        the first ``max_in_flight`` requests per setting are accepted, the
        rest become deterministic
        :class:`~repro.service.quota.QuotaExceededError` slots without ever
        touching a shard (or their admitted neighbours).
        """
        requests = list(requests)
        if not requests:
            return []
        admitted: List[tuple] = []
        rejected: List[ServiceResult] = []
        for index, request in enumerate(requests):
            try:
                self.registry.quota_acquire(request.fingerprint)
            except QuotaExceededError as error:
                rejected.append(ServiceResult(index, request.fingerprint,
                                              error=error))
            else:
                admitted.append((index, request))
        # Each admitted slot is released the moment its request settles
        # (the router's on_done hook) — not when the whole batch does, so
        # a finished setting's slots free up while unrelated sub-batches
        # are still running.  The idempotent guard lets the finally below
        # sweep up anything a failed/cancelled group run never reached.
        released: set = set()
        release_guard = threading.Lock()

        def release(index: int, request: ExchangeRequest) -> None:
            with release_guard:
                if index in released:
                    return
                released.add(index)
            self.registry.quota_release(request.fingerprint)

        try:
            with obs_span("service.batch", requests=len(requests),
                          admitted=len(admitted)):
                groups = self.router.partition_pairs(admitted)
                if self._host is not None:
                    group_runs = [
                        self._traced_offload(
                            partial(self._host.execute_group,
                                    fingerprint, group, on_done=release))
                        for fingerprint, group in groups.items()]
                else:
                    group_runs = [
                        self._traced_offload(
                            partial(self.router.execute_group,
                                    fingerprint, group,
                                    process_parallel=self._process_parallel,
                                    on_done=release))
                        for fingerprint, group in groups.items()]
                outcomes = list(await asyncio.gather(*group_runs))
        finally:
            for index, request in admitted:
                release(index, request)
        if rejected:
            outcomes.append(rejected)
        results = self.router.reassemble(outcomes, len(requests))
        if not return_exceptions:
            for item in results:
                if item.error is not None:
                    raise item.error
        return results

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, Any]:
        """Registry counters plus per-shard accounting.

        In host mode the ``registry``/``shards`` views are the worker
        registries' counters aggregated across processes (so they read
        exactly like a single-process run), with the quota counters — which
        live loop-side — overlaid from the local registry; the raw
        per-worker slices and the ``worker_restarts`` count are under
        ``host``.
        """
        quota = self.registry.quota
        view = {
            "executor": self.executor,
            "parallel": self.parallel,
            "quota": None if quota is None else {
                "max_in_flight": quota.max_in_flight,
                "max_registered": quota.max_registered,
                "max_compiled": quota.max_compiled,
            },
            "registry": self.registry.stats(),
            "shards": self.registry.shard_stats(),
        }
        if self._host is not None:
            host_stats = self._host.stats()
            local = view["registry"]
            merged = dict(host_stats["registry"])
            for name in ("settings_registered", "in_flight",
                         "quota_rejections", "quota_release_underflow"):
                merged[name] = local.get(name, 0)
            view["registry"] = merged
            view["shards"] = host_stats["shards"]
            view["host"] = {
                "workers": host_stats["workers"],
                "worker_restarts": host_stats["worker_restarts"],
                "per_worker": host_stats["per_worker"],
            }
        return view

    async def aclose(self) -> None:
        """Shut the service down: worker pools drained, settings kept."""
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.registry.close()
        if self._host is not None:
            self._host.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.store is not None:
            self.store.close()

    async def __aenter__(self) -> "AsyncExchangeService":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    def __repr__(self) -> str:
        return (f"<AsyncExchangeService executor={self.executor} "
                f"parallel={self.parallel} registry={self.registry!r}>")

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    async def offload(self, fn: Callable[[], _T]) -> _T:
        """Run ``fn()`` off the event loop on the service's pool (inline
        for the serial executor).  The server front end also routes heavy
        *codec* work — decoding multi-megabyte request lines, building and
        rendering wire trees — through here, so big payloads cannot stall
        the loop that other connections' replies are written from."""
        if self._closed:
            raise RuntimeError("service is closed")
        if self._pool is None:  # serial: inline on the loop thread
            return fn()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, fn)

    _offload = offload

    async def _traced_offload(self, fn: Callable[[], _T]) -> _T:
        """:meth:`offload` with queueing attributed: the span context is
        captured on the loop (contextvars do not cross executor threads),
        re-activated in the pool thread, the executor wait is emitted
        retroactively as ``service.queue``, and the work itself runs under
        ``service.execute``.  Tracing off → plain :meth:`offload`."""
        if not obs_enabled():
            return await self._offload(fn)
        context = current_context()
        submitted = time.perf_counter()

        def run() -> _T:
            with activate(context):
                emit("service.queue", submitted, time.perf_counter())
                with obs_span("service.execute"):
                    return fn()

        return await self._offload(run)
