"""The serving layer: async, multi-setting exchange over sharded engines.

Where :mod:`repro.engine` serves one compiled setting for a batch-job
lifetime, this package serves **many settings at once** for a server
lifetime:

* :class:`SettingRegistry` — admits settings keyed by
  ``DataExchangeSetting.fingerprint()``, compiles them lazily and keeps at
  most ``max_compiled`` compiled (LRU), with per-setting bounded result
  caches so tenants cannot evict each other's entries;
* :class:`Router` — partitions mixed-setting batches into per-shard
  sub-batches and re-assembles results in submission order;
* :class:`AsyncExchangeService` — the awaitable facade
  (``await consistency/solve/certain_answers/batch``) running work on a
  configurable serial/thread/process/host executor without blocking the
  event loop;
* :class:`ShardHost` — the multi-process shape behind ``executor="host"``:
  one long-lived worker process per core, each owning a full registry
  slice (compiled settings, plan caches, result caches stay warm across
  requests), routed by fingerprint over length-prefixed pickle frames,
  with crashed workers restarted and re-registered transparently;
* :class:`QuotaPolicy` — admission control: per-setting ``max_in_flight``
  and registry-wide ``max_registered`` ceilings; over-quota work is
  rejected immediately with a typed :class:`QuotaExceededError` (await-side
  and over the wire) instead of queueing without bound;
* prewarming — ``register(setting, prewarm=True)`` /
  ``await service.prewarm(fp)`` compile ahead of the first request
  (``prewarm_*`` counters in registry stats), so hot settings never pay
  first-request compile latency;
* persistence — with a :class:`~repro.storage.CorpusStore` attached
  (``store=`` on the registry/service/host, ``--store`` on the server),
  ``await service.put_tree(tree)`` stores documents addressable by
  fingerprint on every per-tree call (``tree_fp`` on the wire),
  ``register(setting, persist=True)`` pickles the *compiled* setting, and
  ``restore_settings()`` re-admits everything plan-warm after a restart —
  the first request of the new process is a ``compiled_hit``;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a stdlib-only
  JSON-lines TCP server (``python -m repro.service.server``) with
  **per-connection request pipelining** (replies in completion order,
  matched by id) and its client helper (lock-step ``request`` or pipelined
  ``submit``/``collect``/``pipeline``), the demonstration workload of the
  layer.

Quickstart::

    from repro.service import AsyncExchangeService, certain_answers_request

    async with AsyncExchangeService(max_compiled=64,
                                    result_cache_maxsize=1024) as service:
        fp = service.register(setting)              # routing key
        ok = (await service.check_consistency(fp)).payload
        answers = (await service.certain_answers(fp, tree, query)).payload
        slots = await service.batch([certain_answers_request(fp, t, query)
                                     for t in trees])
"""

from .host import ShardHost, WorkerCrashError
from .quota import QuotaExceededError, QuotaPolicy
from .registry import SettingRegistry, UnknownSettingError
from .requests import (OPERATIONS, ExchangeRequest, ServiceResult,
                       certain_answers_request, classify_request,
                       consistency_request, solve_request)
from .router import Router
from .service import SERVICE_EXECUTORS, AsyncExchangeService
from .shard import Shard

__all__ = [
    "AsyncExchangeService", "SERVICE_EXECUTORS",
    "SettingRegistry", "UnknownSettingError", "Router", "Shard",
    "ShardHost", "WorkerCrashError",
    "QuotaPolicy", "QuotaExceededError",
    "ExchangeRequest", "ServiceResult", "OPERATIONS",
    "consistency_request", "classify_request", "solve_request",
    "certain_answers_request",
]
