"""One shard of the serving layer: a compiled setting behind an engine.

A :class:`Shard` owns the :class:`~repro.engine.ExchangeEngine` for exactly
one setting fingerprint, plus the shard-local accounting the service reports
(requests served, errors raised).  All requests for a fingerprint land on
its shard, so the engine's compiled-setting caches and its bounded result
cache are **per setting by construction** — one tenant's traffic can warm,
fill or evict only its own shard's entries.

Per-tree work can optionally run on a shard-owned process pool: the
(picklable) compiled setting ships to each worker once through the pool
initializer, so workers start warm and tasks only carry the per-tree
payload.  Setting-level operations (consistency, classification) are always
answered by the parent's compiled setting — they are cached after the first
call and not worth a round-trip.  The parent keeps sole ownership of the
result cache: it is consulted before dispatching to a worker and updated
with the worker's outcome, so cache counters and eviction behaviour are
identical across inline and process execution.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, Optional, Tuple

from ..engine import EngineResult, ExchangeEngine
from ..engine.compiled import CompiledSetting
from ..exchange.certain_answers import certain_answers
from ..exchange.chase import canonical_solution
from ..obs.trace import span as obs_span, timer as obs_timer
from .requests import ExchangeRequest

__all__ = ["Shard"]


class Shard:
    """The serving unit for one setting fingerprint."""

    def __init__(self, fingerprint: str, engine: ExchangeEngine,
                 prewarmed: bool = False) -> None:
        self.fingerprint = fingerprint
        self.engine = engine
        #: Was this shard compiled ahead of its first request (register
        #: ``prewarm=True`` / pre-seeded compiled setting) rather than
        #: lazily on the serving path?
        self.prewarmed = prewarmed
        self.requests = 0
        self.errors = 0
        #: Process pools discarded after a worker died mid-task (see
        #: ``_run_task``); the next request builds a fresh pool.
        self.pool_restarts = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, request: ExchangeRequest,
                process_parallel: Optional[int] = None) -> EngineResult:
        """Serve one request on this shard.

        ``process_parallel=N`` moves per-tree work (``solve``,
        ``certain_answers``) onto the shard's ``N``-worker process pool;
        by default everything runs inline on the caller's thread.
        Exceptions (``ChaseError``, precondition ``ValueError``\\ s, ...)
        propagate unchanged either way.
        """
        if request.fingerprint != self.fingerprint:
            raise ValueError(
                f"request for setting {request.fingerprint[:12]}… routed to "
                f"shard {self.fingerprint[:12]}…")
        with self._lock:
            self.requests += 1
        try:
            if request.op == "consistency":
                return self.engine.check_consistency(request.strategy)
            if request.op == "classify":
                return self.engine.classify()
            if request.op == "solve":
                return self._solve(request, process_parallel)
            if request.op == "certain_answers":
                return self._certain_answers(request, process_parallel)
            raise ValueError(f"unknown operation {request.op!r}")
        except BaseException:
            with self._lock:
                self.errors += 1
            raise

    def _solve(self, request: ExchangeRequest,
               process_parallel: Optional[int]) -> EngineResult:
        if not process_parallel:
            return self.engine.solve(request.source)
        with obs_timer("engine.solve") as clock:
            # Fingerprint-addressed documents are resolved in the parent
            # (through the engine's thawed-tree LRU and the store) before
            # the task ships — pool workers carry no store handle.
            tree = self.engine.resolve_tree(request.source)
            outcome = self._run_task(("solve", tree), process_parallel)
            return self.engine._result(outcome.success, outcome.tree,
                                       "chase", clock,
                                       detail=outcome.failure or "",
                                       raw=outcome)

    def _certain_answers(self, request: ExchangeRequest,
                         process_parallel: Optional[int]) -> EngineResult:
        if not process_parallel:
            return self.engine.certain_answers(request.source, request.query,
                                               request.variable_order)
        with obs_timer("engine.certain_answers") as clock:
            engine = self.engine
            tree = engine.resolve_tree(request.source)
            key = engine._result_key(tree, request.query,
                                     request.variable_order)
            if key is not None:
                with obs_span("engine.cache_lookup"):
                    cached = engine._cache_lookup(key)
                if cached is not None:
                    return engine._certain_result(cached, clock)
            outcome = self._run_task(
                ("certain_answers",
                 (tree, request.query, request.variable_order)),
                process_parallel)
            if key is not None:
                engine._cache_store(key, outcome)
            return engine._certain_result(outcome, clock)

    # ------------------------------------------------------------------ #
    # Worker pool / lifecycle
    # ------------------------------------------------------------------ #

    def _run_task(self, task: Tuple[str, Any], workers: int):
        """Run one per-tree task on the shard's process pool, falling back
        to inline execution when the pool is (or just became) closed.

        Eviction must be a performance event, never a correctness event: a
        request that raced a ``close()`` — or arrived on a stale shard
        reference after eviction — computes in-process instead of failing,
        and a closed shard never re-creates a pool the registry could no
        longer reach.
        """
        with self._lock:
            if self._pool is None and not self._pool_closed:
                # Workers are spawned on demand (and idle ones reused), so
                # a serially-driven shard only ever forks one process even
                # with a larger ``workers`` bound; concurrent submissions
                # from the service's coordinator threads grow it as needed.
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_shard_worker_init,
                    initargs=(self.engine.compiled,))
            pool = self._pool
        if pool is not None:
            try:
                return pool.submit(_shard_worker_run, task).result()
            except BrokenProcessPool:
                # A pool worker died mid-task (segfault, OOM kill, …),
                # which poisons the whole executor.  Discard it — the next
                # request builds a fresh pool — and answer this request
                # inline: a dead worker is a performance event, never a
                # correctness event (and never a raised BrokenProcessPool).
                with self._lock:
                    if self._pool is pool:
                        self._pool = None
                        self.pool_restarts += 1
                pool.shutdown(wait=False)
            except RuntimeError as error:
                if "shutdown" not in str(error):
                    raise
        return _run_exchange_task(self.engine.compiled, task)

    def close(self, wait: bool = True) -> None:
        """Shut the shard's worker pool down (idempotent, permanent).

        The shard's engine stays usable — an evicted shard already handed
        to in-flight requests keeps answering them inline; only its process
        pool is gone, and it stays gone.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_closed = True
        if pool is not None:
            pool.shutdown(wait=wait)

    def stats(self) -> Dict[str, Any]:
        """Shard accounting merged with the engine's result-cache view."""
        summary = self.engine.stats_summary()
        with self._lock:
            served, errors = self.requests, self.errors
        return {
            "requests": served,
            "errors": errors,
            "pool_restarts": self.pool_restarts,
            "prewarmed": self.prewarmed,
            "engine_requests": summary.requests,
            "result_cache_hits": summary.result_cache_hits,
            "result_cache_misses": summary.result_cache_misses,
            "result_cache_evictions": summary.result_cache_evictions,
            "result_cache_entries": summary.result_cache_entries,
            "result_cache_maxsize": summary.result_cache_maxsize,
            # Compiled query plans are per-setting state: all requests for
            # this fingerprint share them, so the second evaluation of any
            # query on a shard is always a plan_cache hit.
            "plan_cache_hits": summary.plan_cache_hits,
            "plan_cache_misses": summary.plan_cache_misses,
            "plan_cache_evictions": summary.plan_cache_evictions,
            "plan_cache_entries": summary.plan_cache_entries,
        }

    def __repr__(self) -> str:
        return (f"<Shard {self.fingerprint[:12]}… requests={self.requests} "
                f"errors={self.errors}>")


# --------------------------------------------------------------------- #
# Process-pool workers
# --------------------------------------------------------------------- #
#
# Mirrors the engine's batch workers: the compiled setting arrives once per
# worker via the initializer; tasks carry only the per-tree payload and
# return the raw functional-API outcome (picklable), which the parent wraps
# into an EngineResult and stores into its result cache.  Exceptions raised
# here propagate through the future to the caller unchanged.

_SHARD_COMPILED: Optional[CompiledSetting] = None


def _shard_worker_init(compiled: CompiledSetting) -> None:
    global _SHARD_COMPILED
    _SHARD_COMPILED = compiled


def _shard_worker_run(task: Tuple[str, Any]):
    compiled = _SHARD_COMPILED
    assert compiled is not None, "shard worker used before initialisation"
    return _run_exchange_task(compiled, task)


def _run_exchange_task(compiled: CompiledSetting, task: Tuple[str, Any]):
    """The per-tree computation itself — shared by the pool workers and the
    inline fallback, so both paths are identical by construction."""
    operation, payload = task
    if operation == "solve":
        return canonical_solution(compiled.setting, payload,
                                  compiled=compiled)
    if operation == "certain_answers":
        tree, query, variable_order = payload
        return certain_answers(compiled.setting, tree, query, variable_order,
                               compiled=compiled)
    raise ValueError(f"unknown shard worker operation {operation!r}")
