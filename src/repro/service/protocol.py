"""Wire codec of the JSON-lines service protocol.

Everything the server and client exchange is one JSON object per
``\\n``-terminated line (UTF-8).  This module holds the pure codec — no
sockets — so the server, the client helper and the tests share one
definition of the wire format:

* **settings** travel structurally — root, ``{element: content-model}``
  rules and ``{element: [attribute, ...]}`` maps per DTD, plus the STDs as
  ``target :- source`` pattern-text pairs — and rebuild to a setting with
  the **same fingerprint**, so client-side and server-side routing keys
  agree;
* **trees** travel as nested ``[label, {attr: value}, [child, ...]]``
  triples; constants are plain strings and nulls (which occur in solution
  trees the server returns) are tagged ``{"null": n}``;
* **queries** travel as tree-pattern text (:func:`repro.parse_pattern`
  syntax); the server wraps them with :func:`repro.pattern_query`;
* **answer sets** travel as a sorted list of value lists (``null`` for a
  no-solution outcome, mirroring ``CertainAnswers.answers``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Set, Tuple

from ..exchange.setting import DataExchangeSetting
from ..exchange.std import std
from ..patterns.parse import parse_pattern
from ..patterns.queries import Query, pattern_query
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import Null, Value, is_null

__all__ = ["encode_line", "decode_line", "value_to_wire", "value_from_wire",
           "tree_to_wire", "tree_from_wire", "dtd_to_wire", "dtd_from_wire",
           "setting_to_wire", "setting_from_wire", "query_from_wire",
           "answers_to_wire"]


def encode_line(message: Dict[str, Any]) -> bytes:
    """One protocol message as a ``\\n``-terminated UTF-8 JSON line."""
    return (json.dumps(message, ensure_ascii=False, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


# --------------------------------------------------------------------- #
# Values and trees
# --------------------------------------------------------------------- #

def value_to_wire(value: Value) -> Any:
    """A constant as itself, a null as ``{"null": ident}``."""
    if is_null(value):
        return {"null": value.ident}
    return value


def value_from_wire(wire: Any) -> Value:
    if isinstance(wire, dict):
        return Null(int(wire["null"]))
    return wire


def tree_to_wire(tree: XMLTree, ident: Optional[int] = None) -> List[Any]:
    """The (sub)tree as a nested ``[label, attrs, children]`` triple."""
    if ident is None:
        ident = tree.root
    node = tree.node(ident)
    attrs = {name: value_to_wire(value)
             for name, value in sorted(node.attributes.items())}
    children = [tree_to_wire(tree, child) for child in node.children]
    return [node.label, attrs, children]


def tree_from_wire(wire: List[Any], ordered: bool = True) -> XMLTree:
    label, attrs, children = wire
    tree = XMLTree(str(label), ordered=ordered)
    for name, value in attrs.items():
        tree.set_attribute(tree.root, name, value_from_wire(value))
    for child in children:
        _graft_from_wire(tree, tree.root, child)
    return tree


def _graft_from_wire(tree: XMLTree, parent: int, wire: List[Any]) -> None:
    label, attrs, children = wire
    node = tree.add_child(parent, str(label),
                          {name: value_from_wire(value)
                           for name, value in attrs.items()})
    for child in children:
        _graft_from_wire(tree, node, child)


# --------------------------------------------------------------------- #
# DTDs and settings
# --------------------------------------------------------------------- #

def dtd_to_wire(dtd: DTD) -> Dict[str, Any]:
    """Structural rendering that :class:`DTD` rebuilds verbatim."""
    elements = sorted(dtd.rules)
    return {
        "root": dtd.root,
        "rules": {element: str(dtd.content_model(element))
                  for element in elements},
        "attributes": {element: sorted(dtd.attributes_of(element))
                       for element in elements},
    }


def dtd_from_wire(wire: Dict[str, Any]) -> DTD:
    return DTD(wire["root"], wire.get("rules", {}),
               wire.get("attributes", {}))


def setting_to_wire(setting: DataExchangeSetting) -> Dict[str, Any]:
    """A setting as two structural DTDs plus pattern-text STDs.

    Rebuilding via :func:`setting_from_wire` yields a setting with the same
    ``fingerprint()``, so routing keys computed on either side agree.
    """
    return {
        "source_dtd": dtd_to_wire(setting.source_dtd),
        "target_dtd": dtd_to_wire(setting.target_dtd),
        "stds": [{"target": str(dependency.target),
                  "source": str(dependency.source)}
                 for dependency in setting.stds],
    }


def setting_from_wire(wire: Dict[str, Any]) -> DataExchangeSetting:
    dependencies = [std(item["target"], item["source"])
                    for item in wire.get("stds", [])]
    return DataExchangeSetting(dtd_from_wire(wire["source_dtd"]),
                               dtd_from_wire(wire["target_dtd"]),
                               dependencies)


# --------------------------------------------------------------------- #
# Queries and answers
# --------------------------------------------------------------------- #

def query_from_wire(wire: Any) -> Query:
    """A query from its wire form: tree-pattern text (or ``{"pattern": …}``)."""
    if isinstance(wire, dict):
        wire = wire.get("pattern")
    if not isinstance(wire, str):
        raise ValueError("queries travel as tree-pattern text")
    return pattern_query(parse_pattern(wire))


def answers_to_wire(answers: Optional[Set[Tuple[Value, ...]]]
                    ) -> Optional[List[List[Any]]]:
    """A certain-answer set as a sorted list of value lists.

    Certain answers are all-constant tuples (strings), so the rendering is
    loss-free; ``None`` (no solution) stays ``None``.
    """
    if answers is None:
        return None
    return sorted([value_to_wire(value) for value in answer]
                  for answer in answers)
