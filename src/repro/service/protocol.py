"""Wire codec of the JSON-lines service protocol.

Everything the server and client exchange is one JSON object per
``\\n``-terminated line (UTF-8).  This module holds the pure codec — no
sockets — so the server, the client helper and the tests share one
definition of the wire format:

* **settings** travel structurally — root, ``{element: content-model}``
  rules and ``{element: [attribute, ...]}`` maps per DTD, plus the STDs as
  ``target :- source`` pattern-text pairs — and rebuild to a setting with
  the **same fingerprint**, so client-side and server-side routing keys
  agree;
* **trees** travel as nested ``[label, {attr: value}, [child, ...]]``
  triples; constants are plain strings and nulls (which occur in solution
  trees the server returns) are tagged ``{"null": n}``;
* **queries** travel as tree-pattern text (:func:`repro.parse_pattern`
  syntax); the server wraps them with :func:`repro.pattern_query`;
* **answer sets** travel as a sorted list of value lists (``null`` for a
  no-solution outcome, mirroring ``CertainAnswers.answers``);
* **errors** travel as ``{"ok": false, "error": <class name>, "message": …}``
  and rebuild client-side into the exception the direct engine call would
  have raised (:func:`error_to_wire` / :func:`error_from_wire`) — typed
  failures like ``QuotaExceededError`` cross the wire losslessly enough
  for ``except`` clauses to behave identically on either side.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..exchange.errors import ChaseError, ExchangeError, NoSolutionError
from ..exchange.setting import DataExchangeSetting
from ..exchange.std import std
from ..patterns.parse import parse_pattern
from ..patterns.queries import Query, pattern_query
from ..xmlmodel.dtd import DTD
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import Null, Value, is_null
from ..storage import UnknownDocumentError
from .quota import QuotaExceededError
from .registry import UnknownSettingError

__all__ = ["encode_line", "decode_line", "value_to_wire", "value_from_wire",
           "tree_to_wire", "tree_from_wire", "dtd_to_wire", "dtd_from_wire",
           "setting_to_wire", "setting_from_wire", "query_from_wire",
           "answers_to_wire", "error_to_wire", "error_from_wire",
           "ServerError"]


def encode_line(message: Dict[str, Any]) -> bytes:
    """One protocol message as a ``\\n``-terminated UTF-8 JSON line."""
    return (json.dumps(message, ensure_ascii=False, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


# --------------------------------------------------------------------- #
# Values and trees
# --------------------------------------------------------------------- #

def value_to_wire(value: Value) -> Any:
    """A constant as itself, a null as ``{"null": ident}``."""
    if is_null(value):
        return {"null": value.ident}
    return value


def value_from_wire(wire: Any) -> Value:
    if isinstance(wire, dict):
        return Null(int(wire["null"]))
    return wire


#: Trees nested deeper than this travel in the *flat* wire format: the
#: nested triples are interoperable with older peers but the JSON
#: encoder/decoder (and the pre-PR-5 recursive codec) recurse per nesting
#: level, so very deep documents — which the engine itself handles fine,
#: every tree traversal being iterative — would blow the ~1000-frame
#: recursion guards.  800 keeps every depth an old peer could actually
#: round-trip on the old nested format (preserving both-ways interop for
#: that whole window) and switches to the recursion-free encoding only
#: where the old format was already broken.
NESTED_TREE_DEPTH_LIMIT = 800


def _wire_attrs(tree: XMLTree, ident: int) -> Dict[str, Any]:
    return {name: value_to_wire(value)
            for name, value in sorted(tree.attributes(ident).items())}


def tree_to_wire(tree: XMLTree, ident: Optional[int] = None) -> Any:
    """The (sub)tree in wire form.

    Nested ``[label, attrs, children]`` triples for ordinary documents;
    documents deeper than :data:`NESTED_TREE_DEPTH_LIMIT` switch to the
    flat ``{"flat": [[label, attrs, parent_index], ...]}`` encoding
    (pre-order, parents before children), which neither the codec nor the
    JSON layer recurses on.  Both encoders are iterative; depth is tracked
    *during* the nested encode, so the common (shallow) case pays exactly
    one traversal and only an over-deep document restarts in flat form.
    """
    if ident is None:
        ident = tree.root
    assembled: Dict[int, List[Any]] = {}
    walk: List[Tuple[int, int, bool]] = [(ident, 0, False)]
    while walk:
        node_id, level, expanded = walk.pop()
        if not expanded:
            if level > NESTED_TREE_DEPTH_LIMIT:
                return _flat_tree_wire(tree, ident)
            walk.append((node_id, level, True))
            walk.extend((child, level + 1, False)
                        for child in tree.children(node_id))
            continue
        children = [assembled.pop(child)
                    for child in tree.children(node_id)]
        assembled[node_id] = [tree.label(node_id),
                              _wire_attrs(tree, node_id), children]
    return assembled[ident]


def _flat_tree_wire(tree: XMLTree, ident: int) -> Dict[str, Any]:
    """The recursion-free encoding for over-deep documents."""
    flat: List[List[Any]] = []
    positions: Dict[int, int] = {}
    order: List[int] = [ident]
    cursor = 0
    while cursor < len(order):
        node_id = order[cursor]
        positions[node_id] = cursor
        cursor += 1
        order.extend(tree.children(node_id))
    for node_id in order:
        parent = tree.parent(node_id)
        flat.append([tree.label(node_id), _wire_attrs(tree, node_id),
                     -1 if node_id == ident else positions[parent]])
    return {"flat": flat}


def tree_from_wire(wire: Any, ordered: bool = True) -> XMLTree:
    """Rebuild a tree from either wire encoding (iteratively)."""
    if isinstance(wire, dict):
        nodes = wire["flat"]
        label, attrs, _ = nodes[0]
        tree = XMLTree(str(label), ordered=ordered)
        idents = [tree.root]
        for name, value in attrs.items():
            tree.set_attribute(tree.root, name, value_from_wire(value))
        for label, attrs, parent in nodes[1:]:
            idents.append(tree.add_child(
                idents[parent], str(label),
                {name: value_from_wire(value)
                 for name, value in attrs.items()}))
        return tree
    label, attrs, children = wire
    tree = XMLTree(str(label), ordered=ordered)
    for name, value in attrs.items():
        tree.set_attribute(tree.root, name, value_from_wire(value))
    stack = [(tree.root, child) for child in reversed(children)]
    while stack:
        parent, (label, attrs, kids) = stack.pop()
        node = tree.add_child(parent, str(label),
                              {name: value_from_wire(value)
                               for name, value in attrs.items()})
        stack.extend((node, kid) for kid in reversed(kids))
    return tree


# --------------------------------------------------------------------- #
# DTDs and settings
# --------------------------------------------------------------------- #

def dtd_to_wire(dtd: DTD) -> Dict[str, Any]:
    """Structural rendering that :class:`DTD` rebuilds verbatim."""
    elements = sorted(dtd.rules)
    return {
        "root": dtd.root,
        "rules": {element: str(dtd.content_model(element))
                  for element in elements},
        "attributes": {element: sorted(dtd.attributes_of(element))
                       for element in elements},
    }


def dtd_from_wire(wire: Dict[str, Any]) -> DTD:
    return DTD(wire["root"], wire.get("rules", {}),
               wire.get("attributes", {}))


def setting_to_wire(setting: DataExchangeSetting) -> Dict[str, Any]:
    """A setting as two structural DTDs plus pattern-text STDs.

    Rebuilding via :func:`setting_from_wire` yields a setting with the same
    ``fingerprint()``, so routing keys computed on either side agree.
    """
    return {
        "source_dtd": dtd_to_wire(setting.source_dtd),
        "target_dtd": dtd_to_wire(setting.target_dtd),
        "stds": [{"target": str(dependency.target),
                  "source": str(dependency.source)}
                 for dependency in setting.stds],
    }


def setting_from_wire(wire: Dict[str, Any]) -> DataExchangeSetting:
    dependencies = [std(item["target"], item["source"])
                    for item in wire.get("stds", [])]
    return DataExchangeSetting(dtd_from_wire(wire["source_dtd"]),
                               dtd_from_wire(wire["target_dtd"]),
                               dependencies)


# --------------------------------------------------------------------- #
# Queries and answers
# --------------------------------------------------------------------- #

def query_from_wire(wire: Any) -> Query:
    """A query from its wire form: tree-pattern text (or ``{"pattern": …}``)."""
    if isinstance(wire, dict):
        wire = wire.get("pattern")
    if not isinstance(wire, str):
        raise ValueError("queries travel as tree-pattern text")
    return pattern_query(parse_pattern(wire))


def answers_to_wire(answers: Optional[Set[Tuple[Value, ...]]]
                    ) -> Optional[List[List[Any]]]:
    """A certain-answer set as a sorted list of value lists.

    Certain answers are all-constant tuples (strings), so the rendering is
    loss-free; ``None`` (no solution) stays ``None``.
    """
    if answers is None:
        return None
    return sorted([value_to_wire(value) for value in answer]
                  for answer in answers)


# --------------------------------------------------------------------- #
# Errors
# --------------------------------------------------------------------- #

class ServerError(RuntimeError):
    """A server-side failure with no local exception class to map onto."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error


def _rebuild_unknown_setting(message: str) -> UnknownSettingError:
    """Reconstruct with the fingerprint (prefix) the server's message names,
    not the whole sentence — ``.fingerprint`` must stay a routing key."""
    match = re.search(r"fingerprint ([0-9a-f]{8,})", message)
    return UnknownSettingError(match.group(1) if match else message)


def _rebuild_unknown_document(message: str) -> UnknownDocumentError:
    """Same recovery for document fingerprints: the typed miss on a
    fingerprint-addressed request keeps ``.fingerprint`` usable as a store
    key on the client side too."""
    match = re.search(r"fingerprint ([0-9a-f]{8,})", message)
    return UnknownDocumentError(match.group(1) if match else message)


#: Error names the server may send, mapped back to the exception the direct
#: engine (or registry) call would have raised.
_ERROR_TYPES: Dict[str, Callable[[str], BaseException]] = {
    "ChaseError": ChaseError,
    "NoSolutionError": NoSolutionError,
    "ExchangeError": ExchangeError,
    "QuotaExceededError": QuotaExceededError,
    "UnknownSettingError": _rebuild_unknown_setting,
    "UnknownDocumentError": _rebuild_unknown_document,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
}


def error_to_wire(error: BaseException) -> Dict[str, Any]:
    """One failure as an error *response* (the connection stays open)."""
    return {"ok": False, "error": type(error).__name__,
            "message": str(error)}


def error_from_wire(name: str, message: str) -> BaseException:
    """The exception instance an error response stands for.

    Known names rebuild as their original class so ``except`` clauses match
    the direct-call behaviour; unknown names degrade to
    :class:`ServerError` (which keeps the server-side class name around).
    """
    factory = _ERROR_TYPES.get(name)
    if factory is None:
        return ServerError(name, message)
    return factory(message)
