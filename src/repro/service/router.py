"""Fingerprint routing: mixed-setting batches → per-shard sub-batches.

The :class:`Router` is the synchronous routing core the async facade builds
on.  It maps single requests to their shard and splits a mixed-setting batch
into per-shard sub-batches that preserve each request's original position,
so sub-batch outcomes can be re-assembled into submission order no matter
how the sub-batches were scheduled.

Within one sub-batch requests run sequentially on the shard — that is what
keeps a shard's result cache coherent and duplicate work collapsed — while
distinct sub-batches are independent and may run concurrently (the async
service fans them out over its executor).  Failures are isolated per
request: an exception marks only the :class:`ServiceResult` slot of the
request that raised it.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import Executor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..engine import EngineResult
from .registry import SettingRegistry
from .requests import ExchangeRequest, ServiceResult
from .shard import Shard

__all__ = ["Router"]


class Router:
    """Routes requests to shards by setting fingerprint."""

    def __init__(self, registry: SettingRegistry) -> None:
        self.registry = registry

    # ------------------------------------------------------------------ #
    # Single requests
    # ------------------------------------------------------------------ #

    def shard_for(self, request: ExchangeRequest) -> Shard:
        """The shard owning the request's fingerprint (compiling lazily)."""
        return self.registry.shard(request.fingerprint)

    def execute(self, request: ExchangeRequest,
                process_parallel: Optional[int] = None) -> EngineResult:
        """Serve one request synchronously; exceptions propagate unchanged."""
        return self.shard_for(request).execute(request, process_parallel)

    # ------------------------------------------------------------------ #
    # Batches
    # ------------------------------------------------------------------ #

    def partition(self, requests: Sequence[ExchangeRequest]
                  ) -> "OrderedDict[str, List[Tuple[int, ExchangeRequest]]]"\
                  :
        """Group a mixed batch by fingerprint, keeping original positions.

        The mapping iterates fingerprints in first-appearance order; each
        value lists ``(index, request)`` pairs in submission order.
        """
        return self.partition_pairs(enumerate(requests))

    def partition_pairs(self,
                        pairs: Iterable[Tuple[int, ExchangeRequest]]
                        ) -> "OrderedDict[str, List[Tuple[int, ExchangeRequest]]]":
        """:meth:`partition` over explicitly-indexed requests.

        For callers that dropped some slots before routing (quota
        rejections): the pairs carry each request's *original* batch
        position, so :meth:`reassemble` can merge routed outcomes with the
        caller's rejection slots back into submission order.
        """
        groups: "OrderedDict[str, List[Tuple[int, ExchangeRequest]]]" = \
            OrderedDict()
        for index, request in pairs:
            groups.setdefault(request.fingerprint, []).append((index, request))
        return groups

    def execute_group(self, fingerprint: str,
                      group: Sequence[Tuple[int, ExchangeRequest]],
                      process_parallel: Optional[int] = None,
                      on_done: Optional[
                          Callable[[int, ExchangeRequest], None]] = None
                      ) -> List[ServiceResult]:
        """Run one per-shard sub-batch, capturing failures per request.

        A routing failure (unknown fingerprint) fails every slot of the
        group — there is no shard to try the others on; execution failures
        fail only their own slot.  ``on_done(index, request)`` fires as
        each request settles (success or failure) — the async service uses
        it to release in-flight quota slots per request, not per batch.
        """
        try:
            shard = self.registry.shard(fingerprint)
        except Exception as error:
            results = [ServiceResult(index, fingerprint, error=error)
                       for index, _ in group]
            if on_done is not None:
                for index, request in group:
                    on_done(index, request)
            return results
        results = []
        for index, request in group:
            try:
                outcome = shard.execute(request, process_parallel)
            except Exception as error:
                results.append(ServiceResult(index, fingerprint, error=error))
            else:
                results.append(ServiceResult(index, fingerprint,
                                             result=outcome))
            finally:
                if on_done is not None:
                    on_done(index, request)
        return results

    def execute_batch(self, requests: Sequence[ExchangeRequest],
                      pool: Optional[Executor] = None,
                      process_parallel: Optional[int] = None
                      ) -> List[ServiceResult]:
        """Serve a mixed-setting batch, re-assembled in submission order.

        ``pool`` (any ``concurrent.futures`` executor) runs the per-shard
        sub-batches concurrently; without it they run sequentially in
        first-appearance order.  Either way each slot of the returned list
        corresponds to the request at the same position, with failures
        captured per slot.
        """
        groups = self.partition(requests)
        if pool is not None and len(groups) > 1:
            futures = [pool.submit(self.execute_group, fingerprint, group,
                                   process_parallel)
                       for fingerprint, group in groups.items()]
            outcomes = [future.result() for future in futures]
        else:
            outcomes = [self.execute_group(fingerprint, group,
                                           process_parallel)
                        for fingerprint, group in groups.items()]
        return self.reassemble(outcomes, len(requests))

    @staticmethod
    def reassemble(group_outcomes: Sequence[List[ServiceResult]],
                   count: int) -> List[ServiceResult]:
        """Merge per-shard sub-batch outcomes back into submission order.

        The single home of the order-preservation invariant — both the sync
        batch path here and the async service's ``batch`` use it.
        """
        slots: List[Optional[ServiceResult]] = [None] * count
        for group_results in group_outcomes:
            for item in group_results:
                slots[item.index] = item
        assert all(slot is not None for slot in slots)
        return slots  # type: ignore[return-value]
