"""Synchronous client helper for the JSON-lines exchange server.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` wire format
over one TCP connection and gives callers back native objects — settings go
in as :class:`~repro.DataExchangeSetting`, solutions come back as
:class:`~repro.XMLTree`, answers as sets of tuples — and server-side
failures re-raise as their original exception classes.

Replies are matched to requests **by id**, not by arrival order, so the
client interoperates with pipelined servers (which reply in completion
order) and with old arrival-order servers alike:

* :meth:`request` — send one message and block for *its* reply (lock-step;
  any other replies that arrive first are parked for their own waiters);
* :meth:`submit` / :meth:`collect` — fire a request without waiting, pick
  its reply up later by id;
* :meth:`collect_any` — the next reply in completion order (how a pipelined
  consumer observes fast requests overtaking slow ones);
* :meth:`pipeline` — send a whole batch back-to-back down the socket, then
  collect every reply, returned in submission order.

Also runnable as the end-to-end smoke check CI uses::

    python -m repro.service.client --smoke

which boots a server subprocess on a free port, round-trips a register +
consistency + certain-answers + solve conversation (plus a pipelined batch),
asks the server to shut down and asserts the process exits cleanly.
"""

from __future__ import annotations

import argparse
import socket
import subprocess
import sys
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..exchange.setting import DataExchangeSetting
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import Value
from .protocol import (ServerError, decode_line, encode_line,
                       error_from_wire, setting_to_wire, tree_from_wire,
                       tree_to_wire, value_from_wire)
from .registry import SettingRegistry

__all__ = ["ServiceClient", "ServerError", "main"]


class ServiceClient:
    """One JSON-lines connection to an exchange server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 timeout: Optional[float] = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        #: Replies that arrived while a different id was being awaited,
        #: parked here for their own :meth:`collect` call.
        self._parked: Dict[int, Dict[str, Any]] = {}
        self._outstanding: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def submit(self, message: Dict[str, Any]) -> int:
        """Send one message without waiting; returns the assigned id.

        Pair with :meth:`collect` (by id) or :meth:`collect_any`
        (completion order) — the wire is now pipelined until collected.
        """
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(encode_line(dict(message, id=request_id)))
        self._outstanding.add(request_id)
        return request_id

    def collect(self, request_id: int,
                raise_errors: bool = True) -> Dict[str, Any]:
        """Block for the reply to ``request_id``, in whatever order the
        server completes requests; raises the typed server error by default.
        """
        reply = self._parked.pop(request_id, None)
        if reply is None and request_id not in self._outstanding:
            # Fail fast instead of parking every future reply while
            # blocking on a reply that can never arrive.
            raise RuntimeError(f"request id {request_id!r} is not "
                               f"outstanding (already collected, or never "
                               f"submitted on this connection)")
        while reply is None:
            arrived_id, arrived = self._read_reply()
            if arrived_id == request_id:
                reply = arrived
            else:
                self._parked[arrived_id] = arrived
        self._outstanding.discard(request_id)
        if raise_errors and not reply.get("ok"):
            raise self._as_error(reply)
        return reply

    def pending(self) -> int:
        """How many submitted requests have not been collected yet."""
        return len(self._outstanding)

    def collect_any(self) -> Tuple[int, Dict[str, Any]]:
        """The next outstanding reply in **completion order** (parked
        replies first); never raises for error replies — inspect ``ok``.

        This is the pipelined consumer's view: after a burst of
        :meth:`submit` calls, fast requests come back here before slow ones
        submitted ahead of them.
        """
        if not self._outstanding:
            raise RuntimeError("no outstanding requests to collect")
        if self._parked:
            request_id = next(iter(self._parked))
            reply = self._parked.pop(request_id)
        else:
            request_id, reply = self._read_reply()
        self._outstanding.discard(request_id)
        return request_id, reply

    def pipeline(self, messages: Sequence[Dict[str, Any]],
                 return_exceptions: bool = False
                 ) -> List[Union[Dict[str, Any], BaseException]]:
        """Send a batch back-to-back, then collect all replies.

        Every message is on the wire before the first reply is read, so the
        server works on the whole batch at once; the returned list is in
        submission order regardless of completion order.  Error replies
        never poison their neighbours: with ``return_exceptions=True`` they
        come back as exception instances in their own slot, otherwise the
        first error is raised after every reply has been drained.
        """
        ids = [self.submit(message) for message in messages]
        replies = [self.collect(request_id, raise_errors=False)
                   for request_id in ids]
        slots: List[Union[Dict[str, Any], BaseException]] = [
            reply if reply.get("ok") else self._as_error(reply)
            for reply in replies]
        if not return_exceptions:
            for slot in slots:
                if isinstance(slot, BaseException):
                    raise slot
        return slots

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, await its reply, raise server errors."""
        return self.collect(self.submit(message))

    def _read_reply(self) -> Tuple[int, Dict[str, Any]]:
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = decode_line(line)
        reply_id = reply.get("id")
        if not isinstance(reply_id, int):
            raise ConnectionError(
                f"reply carries no usable id (got {reply_id!r}); "
                f"cannot demultiplex")
        return reply_id, reply

    @staticmethod
    def _as_error(reply: Dict[str, Any]) -> BaseException:
        return error_from_wire(str(reply.get("error", "ServerError")),
                               str(reply.get("message", "")))

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def register(self, setting: DataExchangeSetting, *legacy: bool,
                 prewarm: bool = False, persist: bool = False) -> str:
        """Register a setting; returns its fingerprint (the routing key).

        Takes the consolidated keyword set shared with every ``register``
        surface (:class:`~repro.service.registry.SettingRegistry`, the
        async service, the shard host): ``prewarm=True`` asks the server to
        compile the setting in the background immediately, so the first
        real request finds a warm shard (``prewarm_*`` counters in
        :meth:`stats`); ``persist=True`` makes the server compile *before
        replying* and pickle the compiled setting into its corpus store,
        so a restarted server restores it plan-warm.
        """
        prewarm = SettingRegistry._consolidate_register_args(legacy, prewarm)
        message: Dict[str, Any] = {"op": "register",
                                   "setting": setting_to_wire(setting)}
        if prewarm:
            message["prewarm"] = True
        if persist:
            message["persist"] = True
        return self.request(message)["fingerprint"]

    def put_tree(self, tree: XMLTree) -> str:
        """Upload a source document into the server's corpus store; returns
        its fingerprint.  Pass the fingerprint anywhere :meth:`solve` /
        :meth:`certain_answers` take a tree and nothing tree-sized travels
        with those requests again."""
        return self.request({"op": "put_tree",
                             "tree": tree_to_wire(tree)})["fingerprint"]

    def prewarm(self, fingerprint: str) -> bool:
        """Schedule a background compile of a registered setting."""
        return bool(self.request({"op": "prewarm",
                                  "fingerprint": fingerprint})["scheduled"])

    def check_consistency(self, fingerprint: str,
                          strategy: str = "auto") -> bool:
        reply = self.request({"op": "consistency", "fingerprint": fingerprint,
                              "strategy": strategy})
        return bool(reply["consistent"])

    def classify(self, fingerprint: str) -> bool:
        """Is the setting in the tractable class (Theorem 6.2)?"""
        return bool(self.request({"op": "classify",
                                  "fingerprint": fingerprint})["tractable"])

    @staticmethod
    def _source_field(tree: Union[XMLTree, str]) -> Dict[str, Any]:
        """``{"tree": …}`` for an inline document, ``{"tree_fp": …}`` for a
        stored-document fingerprint (see :meth:`put_tree`)."""
        if isinstance(tree, str):
            return {"tree_fp": tree}
        return {"tree": tree_to_wire(tree)}

    def solve(self, fingerprint: str,
              tree: Union[XMLTree, str]) -> Optional[XMLTree]:
        """The canonical solution, or ``None`` when no solution exists;
        ``tree`` is the document or its stored fingerprint."""
        reply = self.request(dict({"op": "solve",
                                   "fingerprint": fingerprint},
                                  **self._source_field(tree)))
        if not reply["result_ok"] or reply["solution"] is None:
            return None
        return tree_from_wire(reply["solution"], ordered=False)

    def certain_answers(self, fingerprint: str, tree: Union[XMLTree, str],
                        query_pattern: str,
                        variable_order: Optional[Sequence[str]] = None
                        ) -> Optional[Set[Tuple[Value, ...]]]:
        """``certain(Q, T)`` for a pattern-text query; ``None`` = no solution.
        ``tree`` is the document or its stored fingerprint."""
        message: Dict[str, Any] = dict(
            {"op": "certain_answers", "fingerprint": fingerprint,
             "query": query_pattern}, **self._source_field(tree))
        if variable_order is not None:
            message["variable_order"] = list(variable_order)
        reply = self.request(message)
        if reply["answers"] is None:
            return None
        return {tuple(value_from_wire(value) for value in answer)
                for answer in reply["answers"]}

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def trace_dump(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The server's span ring buffer: ``{"enabled": bool, "spans":
        [...]}``, newest spans last (``limit`` keeps only the newest N).
        Feed the spans to :func:`repro.obs.trace.format_trace` or dump
        them for ``python -m repro.obs.report``."""
        message: Dict[str, Any] = {"op": "trace_dump"}
        if limit is not None:
            message["limit"] = limit
        reply = self.request(message)
        return {"enabled": reply.get("enabled", False),
                "spans": reply.get("spans", [])}

    def shutdown(self) -> bool:
        """Ask the server to exit; returns its acknowledgement."""
        return bool(self.request({"op": "shutdown"}).get("bye"))


# --------------------------------------------------------------------- #
# Smoke mode (used by CI)
# --------------------------------------------------------------------- #

def run_smoke(executor: str = "thread", verbose: bool = True) -> int:
    """Boot a server subprocess, round-trip the core conversation, assert a
    clean shutdown.  Returns a process-style exit code."""
    from ..workloads import library

    def say(text: str) -> None:
        if verbose:
            print(text, flush=True)

    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server", "--port", "0",
         "--executor", executor, "--result-cache-maxsize", "64"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        banner = process.stdout.readline().strip()
        if not banner.startswith("listening on "):
            raise AssertionError(f"unexpected server banner: {banner!r}")
        host, port = banner.split()[-1].rsplit(":", 1)
        say(f"server up on {host}:{port}")

        setting = library.library_setting()
        tree = library.generate_source(4, authors_per_book=2, seed=1)
        with ServiceClient(host, int(port)) as client:
            assert client.ping()
            fingerprint = client.register(setting)
            assert fingerprint == setting.fingerprint(), \
                "client- and server-side fingerprints disagree"
            say(f"registered setting {fingerprint[:16]}…")
            assert client.check_consistency(fingerprint) is True
            say("consistency round-trip ok")
            answers = client.certain_answers(
                fingerprint, tree, "bib[writer(@name=w)[work(@title='Book-0')]]")
            assert answers == {("Author-1",), ("Author-2",)}, answers
            say(f"certain-answers round-trip ok ({len(answers)} tuples)")
            solution = client.solve(fingerprint, tree)
            assert solution is not None and len(solution) > 1
            say(f"solve round-trip ok ({len(solution)} solution nodes)")
            pipelined = client.pipeline([
                {"op": "ping"},
                {"op": "consistency", "fingerprint": fingerprint},
                {"op": "ping"},
            ])
            assert [reply["op"] for reply in pipelined] == \
                ["ping", "consistency", "ping"]
            say("pipelined batch round-trip ok (3 replies demuxed by id)")
            stats = client.stats()
            assert stats["registry"]["settings_registered"] == 1
            assert client.shutdown()
        if process.wait(timeout=30) != 0:
            raise AssertionError(f"server exited with {process.returncode}")
        tail = process.stdout.read()
        assert "server shut down cleanly" in tail, tail
        say("clean shutdown confirmed")
        say("SMOKE PASS")
        return 0
    except BaseException as error:
        process.kill()
        process.wait()
        print(f"SMOKE FAIL: {error}", file=sys.stderr, flush=True)
        return 1


def _boot_store_server(store: str, executor: str):
    """Boot a ``--store`` server subprocess; returns ``(process, host,
    port, restored)`` once the listening banner is out (``restored`` is the
    count from the plan-warm boot banner)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server", "--port", "0",
         "--executor", executor, "--store", store],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    restored: Optional[int] = None
    while True:
        line = process.stdout.readline()
        if not line:
            process.wait()
            raise AssertionError(
                f"server exited ({process.returncode}) before the "
                f"listening banner")
        line = line.strip()
        if line.startswith("restored "):
            restored = int(line.split()[1])
        elif line.startswith("listening on "):
            host, port = line.split()[-1].rsplit(":", 1)
            return process, host, int(port), restored


def run_restart_smoke(executor: str = "thread", verbose: bool = True) -> int:
    """The persistence smoke check CI runs: boot a server on a fresh
    ``--store``, persist a setting and upload a document, shut down; boot a
    *second* server on the same store and assert its very first request is
    answered plan-warm — ``prewarm_hits >= 1``, ``compiled_misses == 0`` —
    against the fingerprint-addressed document, with no re-register and no
    re-upload.  Returns a process-style exit code."""
    import tempfile

    from ..workloads import library

    def say(text: str) -> None:
        if verbose:
            print(text, flush=True)

    setting = library.library_setting()
    tree = library.generate_source(4, authors_per_book=2, seed=1)
    query = "bib[writer(@name=w)[work(@title='Book-0')]]"
    expected = {("Author-1",), ("Author-2",)}
    with tempfile.TemporaryDirectory(prefix="repro-store-") as store:
        process, host, port, restored = _boot_store_server(store, executor)
        try:
            assert restored == 0, f"fresh store restored {restored}"
            with ServiceClient(host, port) as client:
                fingerprint = client.register(setting, persist=True)
                tree_fp = client.put_tree(tree)
                answers = client.certain_answers(fingerprint, tree_fp, query)
                assert answers == expected, answers
                say(f"leg 1: persisted setting {fingerprint[:16]}… and "
                    f"document {tree_fp[:16]}…, fp-addressed request ok")
                assert client.shutdown()
            if process.wait(timeout=30) != 0:
                raise AssertionError(
                    f"server exited with {process.returncode}")
        except BaseException as error:
            process.kill()
            process.wait()
            print(f"RESTART SMOKE FAIL: {error}", file=sys.stderr,
                  flush=True)
            return 1
        process, host, port, restored = _boot_store_server(store, executor)
        try:
            assert restored == 1, f"expected 1 restored setting, " \
                                  f"got {restored}"
            with ServiceClient(host, port) as client:
                # The very first request of the new process: no register,
                # no upload — the store supplies both halves.
                answers = client.certain_answers(fingerprint, tree_fp, query)
                assert answers == expected, answers
                registry = client.stats()["registry"]
                assert registry["compiled_misses"] == 0, registry
                assert registry["prewarm_hits"] >= 1, registry
                assert registry["store_hits"] >= 1, registry
                say(f"leg 2: restored boot answered its first request "
                    f"plan-warm (prewarm_hits="
                    f"{registry['prewarm_hits']}, compiled_misses=0, "
                    f"store_hits={registry['store_hits']})")
                assert client.shutdown()
            if process.wait(timeout=30) != 0:
                raise AssertionError(
                    f"server exited with {process.returncode}")
            say("RESTART SMOKE PASS")
            return 0
        except BaseException as error:
            process.kill()
            process.wait()
            print(f"RESTART SMOKE FAIL: {error}", file=sys.stderr,
                  flush=True)
            return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="boot a server subprocess and round-trip the "
                             "core conversation (CI smoke check)")
    parser.add_argument("--smoke-restart", action="store_true",
                        help="persistence smoke check: persist into a "
                             "--store, restart the server on it, assert "
                             "the first request is answered plan-warm")
    parser.add_argument("--executor", default="thread",
                        help="server executor for --smoke/--smoke-restart")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.executor)
    if args.smoke_restart:
        return run_restart_smoke(args.executor)
    parser.error("nothing to do: pass --smoke or --smoke-restart (or use "
                 "ServiceClient programmatically)")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
