"""Synchronous client helper for the JSON-lines exchange server.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` wire format
over one TCP connection and gives callers back native objects — settings go
in as :class:`~repro.DataExchangeSetting`, solutions come back as
:class:`~repro.XMLTree`, answers as sets of tuples — and server-side
failures re-raise as their original exception classes.

Also runnable as the end-to-end smoke check CI uses::

    python -m repro.service.client --smoke

which boots a server subprocess on a free port, round-trips a register +
consistency + certain-answers + solve conversation, asks the server to shut
down and asserts the process exits cleanly.
"""

from __future__ import annotations

import argparse
import re
import socket
import subprocess
import sys
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..exchange.errors import ChaseError, ExchangeError, NoSolutionError
from ..exchange.setting import DataExchangeSetting
from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import Value
from .protocol import (decode_line, encode_line, setting_to_wire,
                       tree_from_wire, tree_to_wire, value_from_wire)
from .registry import UnknownSettingError

__all__ = ["ServiceClient", "ServerError", "main"]

def _rebuild_unknown_setting(message: str) -> UnknownSettingError:
    """Reconstruct with the fingerprint (prefix) the server's message names,
    not the whole sentence — ``.fingerprint`` must stay a routing key."""
    match = re.search(r"fingerprint ([0-9a-f]{8,})", message)
    return UnknownSettingError(match.group(1) if match else message)


#: Error names the server may send, mapped back to the exception the direct
#: engine call would have raised.
_ERROR_TYPES = {
    "ChaseError": ChaseError,
    "NoSolutionError": NoSolutionError,
    "ExchangeError": ExchangeError,
    "UnknownSettingError": _rebuild_unknown_setting,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
}


class ServerError(RuntimeError):
    """A server-side failure with no local exception class to map onto."""

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error


class ServiceClient:
    """One JSON-lines connection to an exchange server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8421,
                 timeout: Optional[float] = 30.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message, await its reply, raise server errors."""
        self._next_id += 1
        message = dict(message, id=self._next_id)
        self._sock.sendall(encode_line(message))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = decode_line(line)
        if reply.get("id") != self._next_id:
            raise ConnectionError(
                f"out-of-order reply: sent id {self._next_id}, "
                f"got {reply.get('id')!r}")
        if not reply.get("ok"):
            name = str(reply.get("error", "ServerError"))
            text = str(reply.get("message", ""))
            raise _ERROR_TYPES.get(name, lambda m: ServerError(name, m))(text)
        return reply

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def register(self, setting: DataExchangeSetting) -> str:
        """Register a setting; returns its fingerprint (the routing key)."""
        reply = self.request({"op": "register",
                              "setting": setting_to_wire(setting)})
        return reply["fingerprint"]

    def check_consistency(self, fingerprint: str,
                          strategy: str = "auto") -> bool:
        reply = self.request({"op": "consistency", "fingerprint": fingerprint,
                              "strategy": strategy})
        return bool(reply["consistent"])

    def classify(self, fingerprint: str) -> bool:
        """Is the setting in the tractable class (Theorem 6.2)?"""
        return bool(self.request({"op": "classify",
                                  "fingerprint": fingerprint})["tractable"])

    def solve(self, fingerprint: str, tree: XMLTree) -> Optional[XMLTree]:
        """The canonical solution, or ``None`` when no solution exists."""
        reply = self.request({"op": "solve", "fingerprint": fingerprint,
                              "tree": tree_to_wire(tree)})
        if not reply["result_ok"] or reply["solution"] is None:
            return None
        return tree_from_wire(reply["solution"], ordered=False)

    def certain_answers(self, fingerprint: str, tree: XMLTree,
                        query_pattern: str,
                        variable_order: Optional[Sequence[str]] = None
                        ) -> Optional[Set[Tuple[Value, ...]]]:
        """``certain(Q, T)`` for a pattern-text query; ``None`` = no solution."""
        message: Dict[str, Any] = {
            "op": "certain_answers", "fingerprint": fingerprint,
            "tree": tree_to_wire(tree), "query": query_pattern}
        if variable_order is not None:
            message["variable_order"] = list(variable_order)
        reply = self.request(message)
        if reply["answers"] is None:
            return None
        return {tuple(value_from_wire(value) for value in answer)
                for answer in reply["answers"]}

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> bool:
        """Ask the server to exit; returns its acknowledgement."""
        return bool(self.request({"op": "shutdown"}).get("bye"))


# --------------------------------------------------------------------- #
# Smoke mode (used by CI)
# --------------------------------------------------------------------- #

def run_smoke(executor: str = "thread", verbose: bool = True) -> int:
    """Boot a server subprocess, round-trip the core conversation, assert a
    clean shutdown.  Returns a process-style exit code."""
    from ..workloads import library

    def say(text: str) -> None:
        if verbose:
            print(text, flush=True)

    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server", "--port", "0",
         "--executor", executor, "--result-cache-maxsize", "64"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        banner = process.stdout.readline().strip()
        if not banner.startswith("listening on "):
            raise AssertionError(f"unexpected server banner: {banner!r}")
        host, port = banner.split()[-1].rsplit(":", 1)
        say(f"server up on {host}:{port}")

        setting = library.library_setting()
        tree = library.generate_source(4, authors_per_book=2, seed=1)
        with ServiceClient(host, int(port)) as client:
            assert client.ping()
            fingerprint = client.register(setting)
            assert fingerprint == setting.fingerprint(), \
                "client- and server-side fingerprints disagree"
            say(f"registered setting {fingerprint[:16]}…")
            assert client.check_consistency(fingerprint) is True
            say("consistency round-trip ok")
            answers = client.certain_answers(
                fingerprint, tree, "bib[writer(@name=w)[work(@title='Book-0')]]")
            assert answers == {("Author-1",), ("Author-2",)}, answers
            say(f"certain-answers round-trip ok ({len(answers)} tuples)")
            solution = client.solve(fingerprint, tree)
            assert solution is not None and len(solution) > 1
            say(f"solve round-trip ok ({len(solution)} solution nodes)")
            stats = client.stats()
            assert stats["registry"]["settings_registered"] == 1
            assert client.shutdown()
        if process.wait(timeout=30) != 0:
            raise AssertionError(f"server exited with {process.returncode}")
        tail = process.stdout.read()
        assert "server shut down cleanly" in tail, tail
        say("clean shutdown confirmed")
        say("SMOKE PASS")
        return 0
    except BaseException as error:
        process.kill()
        process.wait()
        print(f"SMOKE FAIL: {error}", file=sys.stderr, flush=True)
        return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="boot a server subprocess and round-trip the "
                             "core conversation (CI smoke check)")
    parser.add_argument("--executor", default="thread",
                        help="server executor for --smoke")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke(args.executor)
    parser.error("nothing to do: pass --smoke (or use ServiceClient "
                 "programmatically)")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
