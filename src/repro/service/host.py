"""Multi-process serving: one long-lived shard worker per core.

A :class:`ShardHost` promotes the :class:`~repro.service.shard.Shard`
boundary from a thread to a **process** boundary.  It spawns ``workers``
long-lived worker processes (default ``os.cpu_count()``), each owning a
full :class:`~repro.service.registry.SettingRegistry` slice: compiled
settings, plan caches and result caches live *in the worker* and stay warm
across requests — unlike the per-request ``ProcessPoolExecutor`` tasks of
``executor="process"``, nothing per-setting is ever re-shipped per call.

Routing is by ``DataExchangeSetting.fingerprint()``: the first 16 hex
digits of the (SHA-256) fingerprint, taken modulo the worker count — a
stable, cross-process hash, so every request for a setting lands on the
same worker and the shared-nothing caches it warmed.  ``register`` and
``prewarm`` are forwarded to the owning worker; :meth:`stats` fans out to
every worker and aggregates.

Transport is stdlib only: one duplex :func:`multiprocessing.Pipe` per
worker carrying **length-prefixed pickle frames** (an 8-byte big-endian
payload length followed by the pickle bytes).  The prefix is verified on
receipt, so a frame truncated by a dying worker surfaces as a typed
:class:`FrameError` instead of a half-deserialized object.  Frames are
``(request_id, op, payload)`` tuples; each worker serves its pipe serially
(shared-nothing, one process per core) while the supervisor demultiplexes
replies to concurrent callers by ``request_id``.

**Crash containment**: a worker that segfaults, gets OOM-killed or is
fault-injected (:meth:`inject_crash`) is detected by its reader thread
(pipe EOF), restarted, and re-registered from the supervisor's
authoritative setting map — prewarming again whatever was prewarmed.  The
event is counted as ``worker_restarts`` in :meth:`stats`.  Requests that
were in flight on the dead worker are resubmitted once to its replacement
(exchange requests are pure compute, so the retry is safe and no reply is
lost); a request whose *retry* also dies fails with
:class:`WorkerCrashError` rather than crash-looping the worker.  A crash
therefore degrades one shard slice's cache warmth — never the service.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..engine import CacheStats, EngineResult
from ..engine.compiled import CompiledSetting, compile_setting
from ..exchange.setting import DataExchangeSetting
from ..obs.metrics import registry as obs_metrics
from ..obs.trace import (activate, capture, current_context, emit,
                         ingest, span as obs_span)
from ..storage import CorpusStore, StoreError
from .registry import SettingRegistry, UnknownSettingError
from .requests import ExchangeRequest, ServiceResult

__all__ = ["ShardHost", "WorkerCrashError", "FrameError"]


class WorkerCrashError(RuntimeError):
    """A request was lost to a crashing worker twice (original + retry)."""


class FrameError(RuntimeError):
    """A pipe frame failed its length-prefix integrity check."""


# --------------------------------------------------------------------- #
# Length-prefixed pickle frames
# --------------------------------------------------------------------- #

_HEADER = struct.Struct("!Q")


def _encode_frame(obj: Any) -> bytes:
    """``obj`` as one frame: 8-byte big-endian payload length + pickle."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(len(payload)) + payload


def _decode_frame(frame: bytes) -> Any:
    """The object a frame carries; :class:`FrameError` on a bad prefix."""
    if len(frame) < _HEADER.size:
        raise FrameError(f"short frame: {len(frame)} byte(s), "
                         f"no {_HEADER.size}-byte length prefix")
    (length,) = _HEADER.unpack_from(frame)
    if length != len(frame) - _HEADER.size:
        raise FrameError(f"frame length prefix says {length} byte(s) but "
                         f"{len(frame) - _HEADER.size} arrived (truncated "
                         f"write from a dying peer?)")
    return pickle.loads(frame[_HEADER.size:])


# --------------------------------------------------------------------- #
# The worker process
# --------------------------------------------------------------------- #

def _worker_main(conn, registry_config: Dict[str, Any]) -> None:
    """One worker: a private registry slice served serially off one pipe.

    Runs until the supervisor sends ``shutdown`` or closes the pipe.  Every
    failure is a *reply*, never a worker exit: exceptions (``ChaseError``,
    ``UnknownSettingError``, …) travel back pickled and re-raise in the
    supervisor, exactly like the in-process executors.
    """
    # The supervisor owns lifecycle; a terminal Ctrl-C goes to it, and this
    # worker exits on pipe EOF rather than on a racing KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    registry = SettingRegistry(**registry_config)
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            break  # supervisor gone: exit quietly
        try:
            decoded = _decode_frame(frame)
            request_id, op, payload = decoded[:3]
            context = decoded[3] if len(decoded) > 3 else None
        except Exception:
            break  # unframeable garbage: the pipe is beyond recovery
        if op == "shutdown":
            try:
                conn.send_bytes(_encode_frame((request_id, True, True, ())))
            except (OSError, ValueError):
                pass
            break
        if op == "crash":
            # Fault injection for lifecycle tests and chaos drills: die
            # exactly as a segfault would — mid-stream, without replying.
            os._exit(int(payload or 2))
        captured: List[Dict[str, Any]] = []
        try:
            if context is not None:
                # The supervisor shipped a span context: run under it and
                # capture whatever spans the op opens, so the reply carries
                # them home and the request's trace stays one rooted tree
                # across the process boundary.  perf_counter values are not
                # comparable across processes — reconstruction leans on the
                # parent ids and durations only, never on the clocks.
                with capture() as captured, activate(tuple(context)):
                    with obs_span("host.worker", op=op, pid=os.getpid()):
                        outcome: Any = _serve_worker_op(registry, op, payload)
            else:
                outcome = _serve_worker_op(registry, op, payload)
            reply = (request_id, True, outcome, tuple(captured))
        except BaseException as error:
            reply = (request_id, False, error, tuple(captured))
        try:
            conn.send_bytes(_encode_frame(reply))
        except (OSError, ValueError):
            if not reply[1]:
                break  # cannot even report the failure: exit, get restarted
            # The outcome itself would not pickle/send: report that instead
            # of dying with the request unanswered.
            fallback = (request_id, False, RuntimeError(
                f"worker could not ship the {op!r} outcome back: "
                f"{type(reply[2]).__name__} did not serialize"),
                tuple(captured))
            try:
                conn.send_bytes(_encode_frame(fallback))
            except (OSError, ValueError):
                break
    registry.close()
    conn.close()


def _serve_worker_op(registry: SettingRegistry, op: str, payload: Any) -> Any:
    if op == "request":
        return registry.shard(payload.fingerprint).execute(payload)
    if op == "register":
        setting, prewarm = payload
        return registry.register(setting, prewarm=prewarm)
    if op == "prewarm":
        return registry.prewarm(payload)
    if op == "stats":
        return {"pid": os.getpid(), "registry": registry.stats(),
                "shards": registry.shard_stats()}
    if op == "ping":
        return True
    raise ValueError(f"unknown shard-host worker operation {op!r}")


# --------------------------------------------------------------------- #
# Supervisor-side plumbing
# --------------------------------------------------------------------- #

class _PendingCall:
    """One in-flight frame: what to resend on a crash, where to wait."""

    __slots__ = ("op", "payload", "ctx", "event", "ok", "outcome", "retries")

    def __init__(self, op: str, payload: Any) -> None:
        self.op = op
        self.payload = payload
        #: Span context captured at submission time, shipped in the frame so
        #: worker spans parent under the supervisor's request span.  A retry
        #: after a crash reuses it — the retried work still belongs to the
        #: original request's trace.
        self.ctx = current_context()
        self.event = threading.Event()
        self.ok = False
        self.outcome: Any = None
        self.retries = 0

    def resolve(self, ok: bool, outcome: Any) -> None:
        self.ok = ok
        self.outcome = outcome
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.resolve(False, error)

    def wait(self) -> Any:
        self.event.wait()
        if not self.ok:
            raise self.outcome
        return self.outcome


class _WorkerHandle:
    """One live worker process plus its pipe, pending map and reader."""

    def __init__(self, index: int, process, conn,
                 generation: int = 1) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        #: Monotonic per-slot spawn count: generation 1 is the original
        #: worker, each restart increments it.  Stats views are tagged with
        #: it so aggregation never mixes a dead worker's counters with its
        #: replacement's.
        self.generation = generation
        #: Guards ``pending``/``next_id``/``dead`` *and* serializes frame
        #: writes — concurrent senders must never interleave frame bytes.
        self.lock = threading.Lock()
        self.pending: Dict[int, _PendingCall] = {}
        self.next_id = 0
        self.dead = False
        self.reader: Optional[threading.Thread] = None
        self.in_flight = obs_metrics.gauge(f"host.worker{index}.in_flight")

    def submit(self, call: _PendingCall) -> bool:
        """Enqueue ``call`` on this worker; ``False`` if it is already dead
        (the caller re-routes to the replacement handle).

        The frame is encoded *before* the pending map is touched, so an
        unpicklable payload raises to the caller without leaking an entry.
        A send that fails because the worker just died leaves the entry
        pending on purpose: the restart sweep resubmits it.
        """
        frame = _encode_frame((0, call.op, call.payload, call.ctx))  # probe
        with self.lock:
            if self.dead:
                return False
            self.next_id += 1
            request_id = self.next_id
            self.pending[request_id] = call
            self.in_flight.set(len(self.pending))
            frame = _encode_frame((request_id, call.op, call.payload,
                                   call.ctx))
            try:
                self.conn.send_bytes(frame)
            except (OSError, ValueError):
                # Broken pipe: the reader thread is about to observe EOF
                # and restart this worker; the entry rides the resubmit.
                pass
        return True

    def send_raw(self, op: str, payload: Any = None) -> None:
        """Fire-and-forget control frame (``shutdown``/``crash``)."""
        with self.lock:
            self.dead = True
            try:
                self.conn.send_bytes(_encode_frame((0, op, payload)))
            except (OSError, ValueError):
                pass

    def take_pending(self) -> List[_PendingCall]:
        """Mark dead and drain the pending map (restart/close sweep)."""
        with self.lock:
            self.dead = True
            orphans = list(self.pending.values())
            self.pending.clear()
            self.in_flight.set(0)
        return orphans


class ShardHost:
    """Supervisor of one worker process per core (see module docs)."""

    def __init__(self, workers: Optional[int] = None,
                 max_compiled: Optional[int] = None,
                 result_cache: bool = True,
                 result_cache_maxsize: Optional[int] = None,
                 shutdown_timeout: float = 10.0,
                 store: Optional[Union[CorpusStore, str,
                                       "os.PathLike"]] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers
        self.shutdown_timeout = shutdown_timeout
        #: The corpus store, supervisor side.  The supervisor holds the
        #: *writable* handle (persist / ingest / crash-replay source);
        #: every worker opens the same directory read-only through its
        #: registry config, so fingerprint-addressed requests resolve
        #: in-worker and worker restarts come back warm from disk.  An
        #: in-memory store cannot cross the process boundary, hence the
        #: on-disk requirement.
        if store is not None and not isinstance(store, CorpusStore):
            store = CorpusStore(store)
        if store is not None and store.path is None:
            raise ValueError(
                "a shard host needs an on-disk store (workers open it "
                "read-only in their own processes); an in-memory "
                "CorpusStore cannot be shared")
        self.store: Optional[CorpusStore] = store
        #: Every worker builds its registry slice from this exact config.
        self._registry_config: Dict[str, Any] = {
            "max_compiled": max_compiled,
            "result_cache": result_cache,
            "result_cache_maxsize": result_cache_maxsize,
        }
        if store is not None:
            self._registry_config["store"] = store.path
            self._registry_config["store_read_only"] = True
        #: Authoritative setting map: what `register` admitted (compiled
        #: settings kept compiled, so a restarted worker re-seeds
        #: plan-warm), replayed into a replacement worker on restart.
        self._settings: Dict[str, Union[DataExchangeSetting,
                                        CompiledSetting]] = {}
        self._prewarmed: set = set()
        self._stats = CacheStats()
        self._closing = False
        self._lock = threading.RLock()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        #: Per-slot spawn counts; ``_spawn`` increments before starting the
        #: process, so the first worker in every slot is generation 1.
        self._generations: List[int] = [0] * workers
        self._handles: List[_WorkerHandle] = [
            self._spawn(index) for index in range(workers)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _spawn(self, index: int) -> _WorkerHandle:
        supervisor_end, worker_end = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main, args=(worker_end, self._registry_config),
            name=f"shard-host-worker-{index}", daemon=True)
        process.start()
        worker_end.close()  # the child's end lives in the child only
        self._generations[index] += 1
        handle = _WorkerHandle(index, process, supervisor_end,
                               generation=self._generations[index])
        handle.reader = threading.Thread(
            target=self._read_replies, args=(handle,),
            name=f"shard-host-reader-{index}", daemon=True)
        handle.reader.start()
        return handle

    def _read_replies(self, handle: _WorkerHandle) -> None:
        """Per-worker reader: demux replies by id; restart on pipe EOF."""
        while True:
            try:
                reply = _decode_frame(handle.conn.recv_bytes())
                request_id, ok, outcome = reply[:3]
                spans = reply[3] if len(reply) > 3 else ()
            except (EOFError, OSError, FrameError, pickle.UnpicklingError,
                    TypeError, ValueError):
                break  # pipe closed or worker died mid-frame
            with handle.lock:
                call = handle.pending.pop(request_id, None)
                handle.in_flight.set(len(handle.pending))
            if call is not None:  # an unknown id is a stale duplicate: drop
                if spans:
                    ingest(spans)
                call.resolve(ok, outcome)
        if handle.dead or self._closing:
            return  # expected: shutdown or a restart already in progress
        self._restart(handle)

    def _restart(self, handle: _WorkerHandle) -> None:
        """Replace a crashed worker; re-register its slice; retry its
        in-flight requests once each."""
        with self._lock:
            orphans = handle.take_pending()
            if self._closing or self._handles[handle.index] is not handle:
                replacement = None  # closed, or another path restarted it
            else:
                handle.process.join(timeout=self.shutdown_timeout)
                self._stats.count("worker_restarts")
                replacement = self._spawn(handle.index)
                self._handles[handle.index] = replacement
                for fingerprint, setting in self._settings.items():
                    if self.worker_for(fingerprint) == handle.index:
                        replacement.submit(_PendingCall(
                            "register",
                            (setting, fingerprint in self._prewarmed)))
        for call in orphans:
            if replacement is None:
                call.fail(WorkerCrashError(
                    "shard-host worker died while the host was closing"))
            elif call.retries >= 1:
                call.fail(WorkerCrashError(
                    f"request {call.op!r} crashed shard-host worker "
                    f"{handle.index} twice (original + retry); not "
                    f"resubmitting a poison request"))
            else:
                call.retries += 1
                if not replacement.submit(call):
                    call.fail(WorkerCrashError(
                        f"shard-host worker {handle.index} died again "
                        f"before the retry could be submitted"))

    def close(self) -> None:
        """Shut every worker down (idempotent).  Workers get
        ``shutdown_timeout`` seconds to finish their current request, then
        are terminated; still-pending calls fail with a closed-host error.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
            handles = list(self._handles)
        for handle in handles:
            handle.send_raw("shutdown")
        for handle in handles:
            handle.process.join(timeout=self.shutdown_timeout)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
                if handle.process.is_alive():  # pragma: no cover - stuck
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
            handle.conn.close()
            for call in handle.take_pending():
                call.fail(RuntimeError("shard host closed with the request "
                                       "still in flight"))
        for handle in handles:
            if handle.reader is not None:
                handle.reader.join(timeout=self.shutdown_timeout)

    def __enter__(self) -> "ShardHost":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def worker_for(self, fingerprint: str) -> int:
        """The worker index owning ``fingerprint``: a stable hash of the
        hex digest, identical across processes and ``PYTHONHASHSEED``\\ s."""
        return int(fingerprint[:16], 16) % self.workers

    def _call(self, index: int, op: str, payload: Any = None) -> Any:
        """One frame to worker ``index``; blocks for (and returns) the
        reply, re-raising whatever the worker raised."""
        call = _PendingCall(op, payload)
        while True:
            with self._lock:
                if self._closing:
                    raise RuntimeError("shard host is closed")
                handle = self._handles[index]
            if handle.submit(call):
                return call.wait()
            # The handle died between routing and submission; the restart
            # path has (or will have) swapped in a replacement — re-route.

    def _call_handle(self, handle: _WorkerHandle, op: str,
                     payload: Any = None) -> Any:
        """One frame to *this specific* handle — never its replacement.

        Used by :meth:`stats`, where answers must stay attributable to the
        exact process (pid, generation) they were snapshotted from; a dead
        handle raises :class:`WorkerCrashError` instead of silently asking
        whichever worker now occupies the slot.
        """
        call = _PendingCall(op, payload)
        if not handle.submit(call):
            raise WorkerCrashError(
                f"shard-host worker {handle.index} "
                f"(generation {handle.generation}) is dead")
        return call.wait()

    # ------------------------------------------------------------------ #
    # Serving API (mirrors SettingRegistry / Router)
    # ------------------------------------------------------------------ #

    def register(self, setting: Union[DataExchangeSetting, CompiledSetting],
                 *legacy: bool, prewarm: bool = False,
                 persist: bool = False) -> str:
        """Admit a setting on its owning worker; returns the fingerprint.

        Takes the consolidated keyword set shared with
        :meth:`SettingRegistry.register`.  The supervisor keeps the
        authoritative copy for crash recovery; a
        :class:`~repro.engine.compiled.CompiledSetting` is forwarded (and
        replayed on restart) compiled, so the worker arrives plan-warm.
        ``prewarm=True`` compiles in the worker before returning and is
        re-applied when a crashed worker is re-registered.
        ``persist=True`` compiles *in the supervisor* (workers never write
        the store), saves the pickle, and forwards the compiled setting —
        so the owning worker, every restart of it, and every future boot
        from this store all start plan-warm.
        """
        prewarm = SettingRegistry._consolidate_register_args(legacy, prewarm)
        plain = setting.setting if isinstance(setting, CompiledSetting) \
            else setting
        if not isinstance(plain, DataExchangeSetting):
            raise TypeError(f"expected a DataExchangeSetting or "
                            f"CompiledSetting, got {type(setting).__name__}")
        if persist:
            if self.store is None:
                raise StoreError(
                    "register(persist=True) needs the shard host built "
                    "with an on-disk store (pass store=...)")
            if not isinstance(setting, CompiledSetting):
                setting = compile_setting(plain)
            self.store.put_setting(setting, prewarm=prewarm)
        fingerprint = plain.fingerprint()
        with self._lock:
            self._settings[fingerprint] = setting
            if prewarm or persist:
                self._prewarmed.add(fingerprint)
        return self._call(self.worker_for(fingerprint), "register",
                          (setting, prewarm or persist))

    def restore_from_store(self) -> List[str]:
        """Re-admit every setting persisted in the supervisor's store,
        forwarding the pickled compiled form to its owning worker — the
        shard-host leg of a plan-warm boot.  Returns the fingerprints."""
        if self.store is None:
            return []
        restored: List[str] = []
        with obs_span("storage.restore"):
            for item in self.store.settings():
                self.register(item.compiled, prewarm=True)
                restored.append(item.fingerprint)
        return restored

    def prewarm(self, fingerprint: str) -> bool:
        """Compile ``fingerprint`` in its owning worker ahead of traffic;
        restarts re-prewarm it.  ``True`` when this call did the compile."""
        with self._lock:
            if fingerprint not in self._settings:
                raise UnknownSettingError(fingerprint)
            self._prewarmed.add(fingerprint)
        return self._call(self.worker_for(fingerprint), "prewarm",
                          fingerprint)

    def execute(self, request: ExchangeRequest) -> EngineResult:
        """Serve one request on the owning worker; worker-side exceptions
        re-raise here unchanged (same contract as ``Router.execute``)."""
        with self._lock:
            if request.fingerprint not in self._settings:
                raise UnknownSettingError(request.fingerprint)
        index = self.worker_for(request.fingerprint)
        # host.pipe is the supervisor's view of the round-trip; the gap
        # between it and the worker's host.worker span is pure transport
        # (pickling + pipe + the worker's queue).
        with obs_span("host.pipe", worker=index):
            return self._call(index, "request", request)

    def execute_group(self, fingerprint: str,
                      group: Sequence[Tuple[int, ExchangeRequest]],
                      on_done=None) -> List[ServiceResult]:
        """One per-fingerprint sub-batch, pipelined down the owning
        worker's pipe (submitted back-to-back, collected in order), with
        failures isolated per slot — the process-boundary analogue of
        ``Router.execute_group``."""
        pairs = list(group)
        calls: List[Optional[_PendingCall]] = []
        submitted: List[float] = []
        results: List[ServiceResult] = []
        for index, request in pairs:
            try:
                with self._lock:
                    if self._closing:
                        raise RuntimeError("shard host is closed")
                    known = request.fingerprint in self._settings
                if not known:
                    raise UnknownSettingError(request.fingerprint)
                call = _PendingCall("request", request)
                while True:
                    with self._lock:
                        handle = self._handles[
                            self.worker_for(request.fingerprint)]
                    if handle.submit(call):
                        break
                calls.append(call)
                submitted.append(time.perf_counter())
            except Exception as error:
                calls.append(None)
                submitted.append(0.0)
                results.append(ServiceResult(index, fingerprint,
                                             error=error))
                if on_done is not None:
                    on_done(index, request)
                continue
            results.append(ServiceResult(index, fingerprint))
        for slot, call, started, (index, request) in zip(
                results, calls, submitted, pairs):
            if call is None:
                continue  # already failed at submission
            try:
                slot.result = call.wait()
            except Exception as error:
                slot.error = error
            finally:
                # Pipelined calls cannot nest a ``with`` per round-trip
                # (submissions overlap), so the pipe span is emitted
                # retroactively from the recorded submission time.
                emit("host.pipe", started, time.perf_counter(),
                     worker=self.worker_for(request.fingerprint))
                if on_done is not None:
                    on_done(index, request)
        return results

    def ping(self) -> List[bool]:
        """Round-trip every worker's pipe (liveness probe)."""
        return [bool(self._call(index, "ping"))
                for index in range(self.workers)]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def fingerprints(self) -> List[str]:
        with self._lock:
            return list(self._settings)

    def worker_pids(self) -> List[Optional[int]]:
        """Current worker process ids (for lifecycle tests and ops)."""
        with self._lock:
            return [handle.process.pid for handle in self._handles]

    def inject_crash(self, index: int, exit_code: int = 2) -> None:
        """Fault injection: make worker ``index`` die mid-stream without
        replying, exactly as a segfault would.  The reader thread restarts
        it; use :meth:`stats`' ``worker_restarts`` to observe."""
        with self._lock:
            handle = self._handles[index]
        with handle.lock:
            try:
                handle.conn.send_bytes(_encode_frame((0, "crash",
                                                      exit_code)))
            except (OSError, ValueError):
                pass  # already dead — which is what was asked for

    def stats(self) -> Dict[str, Any]:
        """Supervisor counters plus every worker's registry aggregated.

        The handle list is snapshotted *once* under the supervisor's lock,
        and every per-worker view is tagged with the pid and generation of
        the exact handle it was fetched from.  A view is marked ``stale``
        — and excluded from the merged aggregates — when its worker died
        mid-snapshot, answered from a different pid (a replacement raced
        in), or was replaced in the handle table before the snapshot
        finished.  Aggregation therefore never mixes a dead worker's
        counters with its replacement's: restart-survivors show up in the
        *next* snapshot, attributed to their new generation.

        ``registry`` sums each numeric counter over the fresh slices (so
        ``compiled_hits``/``plan_cache_*``/… read exactly like a
        single-process registry); ``shards`` merges the per-fingerprint
        shard views (disjoint by construction — each fingerprint lives on
        exactly one worker); ``per_worker`` keeps the unmerged, tagged
        slices, stale ones included.
        """
        with self._lock:
            handles = list(self._handles)
            flat = self._stats.snapshot()
            registered = len(self._settings)
        flat.setdefault("worker_restarts", 0)
        per_worker: List[Dict[str, Any]] = []
        for handle in handles:
            view: Dict[str, Any] = {"pid": handle.process.pid,
                                    "generation": handle.generation,
                                    "stale": False,
                                    "registry": {}, "shards": {}}
            try:
                reply = self._call_handle(handle, "stats")
            except (WorkerCrashError, RuntimeError):
                view["stale"] = True
            else:
                view["registry"] = reply.get("registry", {})
                view["shards"] = reply.get("shards", {})
                if reply.get("pid") != handle.process.pid:
                    # A replacement answered a resubmitted frame: counters
                    # belong to a different incarnation than the tag says.
                    view["stale"] = True
            with self._lock:
                if self._handles[handle.index] is not handle or handle.dead:
                    view["stale"] = True
            with handle.lock:
                view["in_flight"] = len(handle.pending)
            per_worker.append(view)
        merged: Dict[str, int] = {}
        shards: Dict[str, Any] = {}
        for view in per_worker:
            if view["stale"]:
                continue
            for name, value in view["registry"].items():
                if isinstance(value, (int, float)):
                    merged[name] = merged.get(name, 0) + value
            shards.update(view["shards"])
        merged["settings_registered"] = registered
        return {"workers": self.workers,
                "worker_restarts": flat["worker_restarts"],
                "registry": merged, "shards": shards,
                "per_worker": per_worker}

    def __repr__(self) -> str:
        return (f"<ShardHost workers={self.workers} "
                f"settings={len(self._settings)} "
                f"restarts={self._stats.counts('worker_restarts')}>")
