"""Conjunctive tree queries: CTQ, CTQ//, CTQ∪ and CTQ//,∪ (paper, Section 5).

The query language is the closure of tree-pattern formulae under conjunction
and existential quantification::

    Q := ϕ | Q ∧ Q | ∃x Q

plus finite unions ``Q_1 ∪ … ∪ Q_m`` of queries with the same free variables.
Queries return sets of tuples of attribute values (never trees), so that the
certain-answer semantics of Section 5.1 is well defined.

Fragments:

* ``CTQ``     — no descendant ``//``,
* ``CTQ//``   — with descendant,
* ``CTQ∪``    — unions of CTQ queries,
* ``CTQ//,∪`` — unions of CTQ// queries.

:func:`classify_query` reports which fragment a query belongs to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import Value
from .evaluate import (Assignment, assignment_key, join_assignments,
                       match_anywhere)
from .formula import TreePattern

__all__ = [
    "Query", "PatternQuery", "ConjunctionQuery", "ExistsQuery", "UnionQuery",
    "pattern_query", "conjunction", "exists", "union_query",
    "evaluate_query", "classify_query", "boolean_query_holds",
]


class Query:
    """Base class of CTQ//,∪ queries."""

    def free_variables(self) -> List[str]:
        """Free variables, in order of first occurrence."""
        raise NotImplementedError

    def patterns(self) -> Iterable[TreePattern]:
        """All tree-pattern atoms occurring in the query."""
        raise NotImplementedError

    def evaluate(self, tree: XMLTree) -> List[Assignment]:
        """All assignments of the *free* variables satisfied in ``tree``."""
        raise NotImplementedError

    # -- derived views ---------------------------------------------------- #

    def answers(self, tree: XMLTree,
                variable_order: Optional[Sequence[str]] = None) -> Set[Tuple[Value, ...]]:
        """``Q(T)`` as a set of tuples ordered by ``variable_order`` (defaults
        to the free-variable order)."""
        order = list(variable_order) if variable_order is not None else self.free_variables()
        result = set()
        for assignment in self.evaluate(tree):
            result.add(tuple(assignment[name] for name in order))
        return result

    def is_boolean(self) -> bool:
        """True iff the query has no free variables (a sentence)."""
        return not self.free_variables()

    def holds(self, tree: XMLTree) -> bool:
        """For Boolean queries: ``T ⊨ Q``."""
        return bool(self.evaluate(tree))

    def uses_descendant(self) -> bool:
        return any(p.uses_descendant() for p in self.patterns())

    def uses_union(self) -> bool:
        return isinstance(self, UnionQuery) and len(self.members) > 1

    def fingerprint(self) -> str:
        """A content fingerprint of the query: the SHA-256 digest of its
        class name and canonical string rendering (which is deterministic for
        every query shape).  Queries with the same fingerprint are
        syntactically identical, so the digest is a sound — conservative —
        cache key for query results."""
        key = f"{type(self).__name__}:{self}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PatternQuery(Query):
    """A single tree-pattern atom ``ϕ(x̄)``."""

    pattern: TreePattern

    def free_variables(self) -> List[str]:
        return [v.name for v in self.pattern.variables()]

    def patterns(self) -> Iterable[TreePattern]:
        return [self.pattern]

    def evaluate(self, tree: XMLTree) -> List[Assignment]:
        return match_anywhere(tree, self.pattern)

    def __str__(self) -> str:
        return str(self.pattern)


@dataclass(frozen=True)
class ConjunctionQuery(Query):
    """``Q_1 ∧ … ∧ Q_k``."""

    members: Tuple[Query, ...]

    def free_variables(self) -> List[str]:
        seen: List[str] = []
        for member in self.members:
            for name in member.free_variables():
                if name not in seen:
                    seen.append(name)
        return seen

    def patterns(self) -> Iterable[TreePattern]:
        for member in self.members:
            yield from member.patterns()

    def evaluate(self, tree: XMLTree) -> List[Assignment]:
        result: List[Assignment] = [{}]
        for member in self.members:
            result = join_assignments(result, member.evaluate(tree))
            if not result:
                return []
        return result

    def __str__(self) -> str:
        return " ∧ ".join(f"({m})" for m in self.members)


@dataclass(frozen=True)
class ExistsQuery(Query):
    """``∃x_1 … ∃x_k Q``."""

    variables: Tuple[str, ...]
    inner: Query

    def free_variables(self) -> List[str]:
        bound = set(self.variables)
        return [name for name in self.inner.free_variables() if name not in bound]

    def patterns(self) -> Iterable[TreePattern]:
        return self.inner.patterns()

    def evaluate(self, tree: XMLTree) -> List[Assignment]:
        free = self.free_variables()
        projected: List[Assignment] = []
        seen = set()
        for assignment in self.inner.evaluate(tree):
            reduced = {name: assignment[name] for name in free if name in assignment}
            key = assignment_key(reduced)
            if key not in seen:
                seen.add(key)
                projected.append(reduced)
        return projected

    def __str__(self) -> str:
        quantified = " ".join(f"∃{v}" for v in self.variables)
        return f"{quantified} ({self.inner})"


@dataclass(frozen=True)
class UnionQuery(Query):
    """``Q_1 ∪ … ∪ Q_m`` (all members share the same free variables)."""

    members: Tuple[Query, ...]

    def __post_init__(self) -> None:
        signatures = {tuple(sorted(m.free_variables())) for m in self.members}
        if len(signatures) > 1:
            raise ValueError(
                "all members of a union query must have the same free variables; "
                f"got {sorted(signatures)}")

    def free_variables(self) -> List[str]:
        return self.members[0].free_variables() if self.members else []

    def patterns(self) -> Iterable[TreePattern]:
        for member in self.members:
            yield from member.patterns()

    def evaluate(self, tree: XMLTree) -> List[Assignment]:
        collected: List[Assignment] = []
        seen = set()
        for member in self.members:
            for assignment in member.evaluate(tree):
                key = assignment_key(assignment)
                if key not in seen:
                    seen.add(key)
                    collected.append(assignment)
        return collected

    def __str__(self) -> str:
        return " ∪ ".join(f"({m})" for m in self.members)


# --------------------------------------------------------------------- #
# Constructors and helpers
# --------------------------------------------------------------------- #

def pattern_query(pattern: TreePattern) -> PatternQuery:
    """Wrap a tree-pattern formula as a query atom."""
    return PatternQuery(pattern)


def conjunction(*members: Query) -> Query:
    """Conjunction of queries (flattening single members)."""
    if len(members) == 1:
        return members[0]
    return ConjunctionQuery(tuple(members))


def exists(variables: Sequence[str], inner: Query) -> Query:
    """Existential quantification ``∃x̄ Q``."""
    if not variables:
        return inner
    return ExistsQuery(tuple(variables), inner)


def union_query(*members: Query) -> Query:
    """Union of queries with identical free variables."""
    if len(members) == 1:
        return members[0]
    return UnionQuery(tuple(members))


def evaluate_query(query: Query, tree: XMLTree,
                   variable_order: Optional[Sequence[str]] = None) -> Set[Tuple[Value, ...]]:
    """``Q(T)`` as a set of value tuples."""
    return query.answers(tree, variable_order)


def boolean_query_holds(query: Query, tree: XMLTree) -> bool:
    """``T ⊨ Q`` for a Boolean query."""
    return query.holds(tree)


def classify_query(query: Query) -> str:
    """Return the fragment name: ``"CTQ"``, ``"CTQ//"``, ``"CTQ∪"`` or
    ``"CTQ//,∪"`` (Section 5)."""
    descendant = query.uses_descendant()
    union = isinstance(query, UnionQuery) and len(query.members) > 1
    if descendant and union:
        return "CTQ//,∪"
    if descendant:
        return "CTQ//"
    if union:
        return "CTQ∪"
    return "CTQ"
