"""Tree-pattern formulae and attribute formulae (paper, Section 3.1).

Attribute formulae over ``(E, A)``::

    α := ℓ  |  ℓ(@a_1 = x_1, …, @a_n = x_n)

where ``ℓ`` is an element type or the wildcard ``_`` and the ``x_i`` are
variables (we additionally allow string literals in place of variables, which
is convenient when building queries with constants — a literal behaves like a
variable pre-bound to that constant).

Tree-pattern formulae::

    ϕ := α  |  α[ϕ, …, ϕ]  |  //ϕ

``//ϕ`` is witnessed at a node ``v`` iff some *proper descendant* of ``v``
witnesses ``ϕ``; ``α[ϕ_1, …, ϕ_k]`` is witnessed at ``v`` iff ``α`` holds at
``v`` and each ``ϕ_i`` is witnessed at some (not necessarily distinct) child
of ``v``.  A formula is true in a tree iff *some* node of the tree witnesses
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union as TUnion


__all__ = [
    "WILDCARD", "Variable", "Term", "AttributeFormula",
    "TreePattern", "NodePattern", "DescendantPattern",
    "node", "descendant", "wildcard",
]

#: The wildcard label ``_`` that matches every element type.
WILDCARD = "_"


@dataclass(frozen=True)
class Variable:
    """A variable ranging over attribute values (``Str``)."""

    name: str

    def __str__(self) -> str:
        return self.name


#: A term in an attribute formula: a variable or a constant value.
Term = TUnion[Variable, str]


@dataclass(frozen=True)
class AttributeFormula:
    """``ℓ(@a_1 = t_1, …, @a_n = t_n)`` — or the bare label when ``assignments``
    is empty.  ``label`` may be :data:`WILDCARD`."""

    label: str
    assignments: Tuple[Tuple[str, Term], ...] = ()

    def variables(self) -> List[Variable]:
        """Free variables, in order of first occurrence."""
        seen: List[Variable] = []
        for _, term in self.assignments:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return seen

    def attribute_names(self) -> Set[str]:
        return {name for name, _ in self.assignments}

    def is_wildcard(self) -> bool:
        return self.label == WILDCARD

    def label_only(self) -> "AttributeFormula":
        """The formula ``α°`` of Claim 4.2: keep the label, drop attributes."""
        return AttributeFormula(self.label)

    def __str__(self) -> str:
        if not self.assignments:
            return self.label
        parts = ", ".join(
            f"@{name}={term if isinstance(term, Variable) else repr(term)}"
            for name, term in self.assignments)
        return f"{self.label}({parts})"


class TreePattern:
    """Base class of tree-pattern formulae."""

    def variables(self) -> List[Variable]:
        """Free variables in order of first occurrence."""
        raise NotImplementedError

    def subpatterns(self) -> Iterator["TreePattern"]:
        """All subformulae, including ``self`` (pre-order)."""
        raise NotImplementedError

    def uses_descendant(self) -> bool:
        """Does the formula use ``//``?"""
        return any(isinstance(p, DescendantPattern) for p in self.subpatterns())

    def uses_wildcard(self) -> bool:
        """Does the formula use the wildcard label?"""
        return any(isinstance(p, NodePattern) and p.attribute.is_wildcard()
                   for p in self.subpatterns())

    def size(self) -> int:
        """``‖ϕ‖``: number of subformulae plus attribute comparisons."""
        total = 0
        for pattern in self.subpatterns():
            total += 1
            if isinstance(pattern, NodePattern):
                total += len(pattern.attribute.assignments)
        return total

    def erase_attributes(self) -> "TreePattern":
        """The formula ``ϕ°`` of Claim 4.2 (drop all attribute comparisons)."""
        raise NotImplementedError

    def is_path_pattern(self) -> bool:
        """Path-pattern formulae (Section 4): at most one child per node."""
        return all(len(p.children) <= 1 for p in self.subpatterns()
                   if isinstance(p, NodePattern))


@dataclass(frozen=True)
class NodePattern(TreePattern):
    """``α`` or ``α[ϕ_1, …, ϕ_k]``."""

    attribute: AttributeFormula
    children: Tuple[TreePattern, ...] = ()

    def variables(self) -> List[Variable]:
        seen: List[Variable] = []
        for var in self.attribute.variables():
            if var not in seen:
                seen.append(var)
        for child in self.children:
            for var in child.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def subpatterns(self) -> Iterator[TreePattern]:
        yield self
        for child in self.children:
            yield from child.subpatterns()

    def erase_attributes(self) -> TreePattern:
        return NodePattern(self.attribute.label_only(),
                           tuple(c.erase_attributes() for c in self.children))

    def __str__(self) -> str:
        if not self.children:
            return str(self.attribute)
        inner = ", ".join(str(c) for c in self.children)
        return f"{self.attribute}[{inner}]"


@dataclass(frozen=True)
class DescendantPattern(TreePattern):
    """``//ϕ``."""

    inner: TreePattern

    def variables(self) -> List[Variable]:
        return self.inner.variables()

    def subpatterns(self) -> Iterator[TreePattern]:
        yield self
        yield from self.inner.subpatterns()

    def erase_attributes(self) -> TreePattern:
        return DescendantPattern(self.inner.erase_attributes())

    def __str__(self) -> str:
        return f"//{self.inner}"


# --------------------------------------------------------------------- #
# Convenience constructors
# --------------------------------------------------------------------- #

def _term(value) -> Term:
    if isinstance(value, (Variable, str)):
        return value
    raise TypeError(f"attribute terms must be Variable or str, got {value!r}")


def node(label: str, attrs: Optional[Dict[str, Term]] = None,
         *children: TreePattern) -> NodePattern:
    """Build ``label(@a=t, …)[children…]``.  ``attrs`` values may be
    :class:`Variable` instances, bare variable names prefixed with ``$`` (e.g.
    ``"$x"``), or constant strings."""
    assignments: List[Tuple[str, Term]] = []
    for name, value in (attrs or {}).items():
        if isinstance(value, str) and value.startswith("$"):
            value = Variable(value[1:])
        assignments.append((name, _term(value)))
    return NodePattern(AttributeFormula(label, tuple(assignments)), tuple(children))


def wildcard(attrs: Optional[Dict[str, Term]] = None,
             *children: TreePattern) -> NodePattern:
    """Build a wildcard pattern ``_(...)[children…]``."""
    return node(WILDCARD, attrs, *children)


def descendant(inner: TreePattern) -> DescendantPattern:
    """Build ``//inner``."""
    return DescendantPattern(inner)
