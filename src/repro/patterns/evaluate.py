"""Evaluation of tree-pattern formulae over XML trees (paper, Section 3.1).

The central notion is the *witness node*: ``T ⊨ ϕ(s̄)`` holds iff some node of
``T`` is a witness for ``ϕ(s̄)``.  For query answering we need the set of all
satisfying assignments of the free variables, so the evaluator returns
assignments (dictionaries from variable name to value) rather than booleans;
booleans are derived views.

The evaluator works on both ordered and unordered trees — patterns never
mention sibling order — and treats nulls as ordinary values that are equal
only to themselves (Section 5.1 then keeps only all-constant tuples in
certain answers).

This interpreter is the **parity oracle**: the hot path (pre-solution
instantiation, certain-answer evaluation) runs the compiled plan evaluator
of :mod:`repro.patterns.plan` over frozen trees instead, and the generated
property harness asserts the two agree on every scenario it sweeps.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..xmlmodel.tree import XMLTree
from ..xmlmodel.values import Value
from .formula import (AttributeFormula, DescendantPattern, NodePattern,
                      TreePattern, Variable)

__all__ = [
    "Assignment", "match_at_node", "match_anywhere", "pattern_holds",
    "satisfying_assignments", "join_assignments", "assignment_key",
]

#: A (partial) assignment of variable names to attribute values.
Assignment = Dict[str, Value]


def assignment_key(assignment: Assignment) -> tuple:
    """A hashable identity key for an assignment.

    Keyed on the *value objects themselves* (sorted by variable name), so
    equality is Python's own type-aware equality: two distinct values can
    never alias the way ``repr``-rendered keys could (a ``repr`` collision
    across value types would silently merge distinct assignments).  Values
    are never compared against each other — variable names are unique
    within an assignment, so the sort never ties.
    """
    return tuple(sorted(assignment.items(), key=lambda item: item[0]))


def join_assignments(left: Iterable[Assignment],
                     right: Iterable[Assignment]) -> List[Assignment]:
    """Natural join of two assignment sets (consistent unions only)."""
    result: List[Assignment] = []
    right_list = list(right)
    for first in left:
        for second in right_list:
            merged = _merge(first, second)
            if merged is not None:
                result.append(merged)
    return _dedup(result)


def _merge(first: Assignment, second: Assignment) -> Optional[Assignment]:
    merged = dict(first)
    for key, value in second.items():
        if key in merged and merged[key] != value:
            return None
        merged[key] = value
    return merged


def _dedup(assignments: List[Assignment]) -> List[Assignment]:
    seen = set()
    result = []
    for assignment in assignments:
        key = assignment_key(assignment)
        if key not in seen:
            seen.add(key)
            result.append(assignment)
    return result


class PatternMatcher:
    """Evaluates patterns against one tree with memoisation per (pattern, node)."""

    def __init__(self, tree: XMLTree,
                 binding: Optional[Mapping[str, Value]] = None) -> None:
        self.tree = tree
        self.binding = dict(binding or {})
        self._memo: Dict[Tuple[int, int], List[Assignment]] = {}

    # -- attribute formulae ------------------------------------------------

    def _match_attribute(self, node: int, formula: AttributeFormula) -> List[Assignment]:
        if not formula.is_wildcard() and self.tree.label(node) != formula.label:
            return []
        assignment: Assignment = {}
        for attr_name, term in formula.assignments:
            value = self.tree.attribute(node, attr_name)
            if value is None:
                return []
            if isinstance(term, Variable):
                bound = self.binding.get(term.name)
                if bound is not None and bound != value:
                    return []
                if term.name in assignment and assignment[term.name] != value:
                    return []
                assignment[term.name] = value
            else:  # constant
                if value != term:
                    return []
        return [assignment]

    # -- tree patterns -----------------------------------------------------

    def match_at(self, node: int, pattern: TreePattern) -> List[Assignment]:
        """All assignments under which ``node`` is a witness for ``pattern``."""
        key = (id(pattern), node)
        if key in self._memo:
            return self._memo[key]
        result: List[Assignment]
        if isinstance(pattern, DescendantPattern):
            collected: List[Assignment] = []
            for desc in self.tree.descendants(node):
                collected.extend(self.match_at(desc, pattern.inner))
            result = _dedup(collected)
        elif isinstance(pattern, NodePattern):
            base = self._match_attribute(node, pattern.attribute)
            if not base:
                result = []
            else:
                result = base
                children = self.tree.children(node)
                for child_pattern in pattern.children:
                    child_matches: List[Assignment] = []
                    for child in children:
                        child_matches.extend(self.match_at(child, child_pattern))
                    child_matches = _dedup(child_matches)
                    result = join_assignments(result, child_matches)
                    if not result:
                        break
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown pattern node: {pattern!r}")
        self._memo[key] = result
        return result

    def match_anywhere(self, pattern: TreePattern) -> List[Assignment]:
        """All assignments under which *some* node of the tree witnesses
        ``pattern`` (the satisfaction relation ``T ⊨ ϕ(s̄)``)."""
        collected: List[Assignment] = []
        for node in self.tree.nodes():
            collected.extend(self.match_at(node, pattern))
        return _dedup(collected)


def match_at_node(tree: XMLTree, node: int, pattern: TreePattern,
                  binding: Optional[Mapping[str, Value]] = None) -> List[Assignment]:
    """All assignments making ``node`` a witness for ``pattern`` in ``tree``."""
    return PatternMatcher(tree, binding).match_at(node, pattern)


def match_anywhere(tree: XMLTree, pattern: TreePattern,
                   binding: Optional[Mapping[str, Value]] = None) -> List[Assignment]:
    """All assignments ``σ`` with ``T ⊨ ϕ(σ)``."""
    return PatternMatcher(tree, binding).match_anywhere(pattern)


def satisfying_assignments(tree: XMLTree, pattern: TreePattern) -> List[Assignment]:
    """Alias of :func:`match_anywhere` (complete assignments to free variables)."""
    return match_anywhere(tree, pattern)


def pattern_holds(tree: XMLTree, pattern: TreePattern,
                  binding: Optional[Mapping[str, Value]] = None) -> bool:
    """``T ⊨ ϕ(s̄)`` for the (possibly partial) variable binding ``s̄``."""
    return bool(match_anywhere(tree, pattern, binding))
