"""Tree-pattern formulae and conjunctive tree queries (paper, Sections 3.1, 5)."""

from .evaluate import (Assignment, assignment_key, join_assignments,
                       match_anywhere, match_at_node, pattern_holds,
                       satisfying_assignments)
from .formula import (WILDCARD, AttributeFormula, DescendantPattern,
                      NodePattern, Term, TreePattern, Variable, descendant,
                      node, wildcard)
from .parse import PatternParseError, parse_pattern
from .plan import (PatternPlan, PlanCache, QueryPlan, compile_pattern,
                   compile_query)
from .queries import (ConjunctionQuery, ExistsQuery, PatternQuery, Query,
                      UnionQuery, boolean_query_holds, classify_query,
                      conjunction, evaluate_query, exists, pattern_query,
                      union_query)

__all__ = [
    "WILDCARD", "Variable", "Term", "AttributeFormula",
    "TreePattern", "NodePattern", "DescendantPattern",
    "node", "wildcard", "descendant",
    "parse_pattern", "PatternParseError",
    "Assignment", "match_at_node", "match_anywhere", "pattern_holds",
    "satisfying_assignments", "join_assignments", "assignment_key",
    "Query", "PatternQuery", "ConjunctionQuery", "ExistsQuery", "UnionQuery",
    "pattern_query", "conjunction", "exists", "union_query",
    "evaluate_query", "boolean_query_holds", "classify_query",
    "PatternPlan", "QueryPlan", "PlanCache", "compile_pattern",
    "compile_query",
]
