"""Compiled query plans: CTQ//,∪ lowered onto frozen trees.

The interpreted :class:`~repro.patterns.evaluate.PatternMatcher` re-walks
the pattern AST per (pattern, node) pair, building dict assignments that it
deduplicates through rendered keys.  This module pays that interpretation
cost **once per query** instead of once per (query, node):

* :func:`compile_pattern` / :func:`compile_query` lower a
  :class:`~repro.patterns.formula.TreePattern` or a full
  :class:`~repro.patterns.queries.Query` (conjunction, ∃-projection, union,
  descendant ``//``) into a *slot-based plan* — every variable is mapped to
  an integer slot, assignments are fixed-width tuples (``None`` marks an
  unbound slot), label tests are single ``int`` comparisons against the
  interned labels of a :class:`~repro.xmlmodel.frozen.FrozenTree`, and
  joins are slot-merge loops over those tuples;
* **two evaluation strategies** share those lowered ops.  The *recurrence*
  runs one bottom-up pass over the frozen tree's ``post_order``, filling
  per-op match tables — ``//ϕ`` is lowered to the recurrence
  ``desc(v) = ⋃_{c child of v} (inner(c) ∪ desc(c))``, so no descendant
  set is ever enumerated.  The *structural join* is set-at-a-time over
  the pre/post plane: each node op scans only its candidate seed
  (``nodes_by_label`` for a labelled op, the smallest tested attribute
  table for a wildcard with tests), ``/`` steps are merge joins over the
  contiguous BFS child spans, and collapsed ``//`` chains are skip-ahead
  staircase joins — one ``bisect`` into the inner matches sorted by pre
  rank, bounded by ``pre[v] + size[v]`` and filtered by depth.  Both
  strategies produce **bit-identical rows in bit-identical order** (the
  join replays the recurrence's document-order gathers), so downstream
  null allocation — and therefore canonical-solution fingerprints — never
  depends on which one ran;
* the strategy is chosen per ``matches()`` call by a cheap selectivity
  heuristic (join when the summed seed sizes are at most half of
  ``n × node-ops``), overridable via ``REPRO_EVAL_STRATEGY=join|
  recurrence|auto``; callers that pass a ``stats`` recorder get
  ``plan_join_runs`` / ``plan_recurrence_runs`` event counts;
* :class:`PlanCache` is a bounded, counted, thread-safe LRU keyed by
  ``Query.fingerprint()`` — the engine and every service shard reuse plans
  across requests.  Per-tree spec resolution (label/attribute interning)
  is cached on the plan itself, keyed weakly by the frozen snapshot, so
  repeat evaluation of a hot document skips the rebind loop.

Variable scoping matches the interpreter: members of a conjunction share
slots by variable *name* (that is the join), while each ``∃x̄`` scope
allocates fresh slots for its bound variables (an inner ``x`` never aliases
an outer ``x``).

The interpreted API (:func:`~repro.patterns.evaluate.match_anywhere`,
``Query.evaluate``) stays unchanged and serves as the parity oracle — the
generated property harness asserts plan/interpreter agreement on every
scenario it sweeps.
"""

from __future__ import annotations

import os
import threading
import weakref
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from ..xmlmodel.frozen import FrozenTree
from ..xmlmodel.values import Value
from .formula import (DescendantPattern, NodePattern, TreePattern, Variable)
from .queries import (ConjunctionQuery, ExistsQuery, PatternQuery, Query,
                      UnionQuery)

__all__ = ["PatternPlan", "QueryPlan", "PlanCache",
           "compile_pattern", "compile_query",
           "shared_pattern_plan", "shared_query_plan"]

#: A slot row: one assignment as a fixed-width tuple, ``None`` = unbound.
Row = Tuple[Optional[Value], ...]

_EMPTY: Tuple[Row, ...] = ()


def _verify_enabled() -> bool:
    """Whether ``REPRO_PLAN_VERIFY`` asks for compile-time verification.

    The test suite turns this on by default (``tests/conftest.py``), so
    every plan the suite compiles is statically verified by
    :func:`repro.analysis.plancheck.verify_plan` before it runs;
    production keeps it off and pays nothing.
    """
    return os.environ.get("REPRO_PLAN_VERIFY", "0").strip().lower() \
        not in ("", "0", "false", "no", "off")


def _maybe_verify(plan: Any) -> Any:
    """Verify ``plan`` (and stamp ``plan.verified``) when enabled.

    Verification happens exactly once, at compile time: the ``verified``
    stamp travels through pickle with the plan, so compiled settings
    shipped to process-pool workers are **not** re-verified on unpickle.
    """
    if _verify_enabled():
        from ..analysis import plancheck
        plancheck.verify_plan(plan)
        plan.verified = True
    return plan


_STRATEGIES = ("auto", "join", "recurrence")


def _strategy_override() -> str:
    """The ``REPRO_EVAL_STRATEGY`` knob: ``join``, ``recurrence`` or
    ``auto`` (the default — per-pattern selectivity heuristic).  Read per
    call so tests and operators can flip it without recompiling plans."""
    raw = os.environ.get("REPRO_EVAL_STRATEGY", "auto").strip().lower()
    if not raw:
        return "auto"
    if raw not in _STRATEGIES:
        raise ValueError(
            f"REPRO_EVAL_STRATEGY={raw!r} is not one of {_STRATEGIES}")
    return raw


def _pick_strategy(resolved: Sequence[tuple], frozen: FrozenTree) -> str:
    """``join`` or ``recurrence`` for one pattern evaluation.

    The heuristic is deliberately cheap: sum the candidate-seed sizes of
    the resolved node ops (the work the join pass scans) and compare
    against ``n × node-ops`` (the work the recurrence pass scans).  Join
    wins when its seeds cover at most half the recurrence's sweep — on a
    label-selective pattern the seeds are tiny and the join is chosen; on
    a wildcard-heavy pattern both sides degenerate to ``n`` per op and the
    recurrence keeps its allocation-light single pass.
    """
    choice = _strategy_override()
    if choice != "auto":
        return choice
    n = frozen.n
    total = 0
    node_ops = 0
    for rop in resolved:
        kind = rop[0]
        if kind == "desc":
            continue
        node_ops += 1
        if kind == "never":
            continue
        rlabel = rop[1]
        if rlabel >= 0:
            total += len(frozen.nodes_by_label[rlabel])
        elif rop[2] or rop[3]:
            total += min(len(table) for table, _ in rop[2] + rop[3])
        else:
            total += n
    return "join" if total * 2 <= n * node_ops else "recurrence"


# --------------------------------------------------------------------- #
# Pattern lowering
# --------------------------------------------------------------------- #
#
# A lowered pattern is a flat tuple of op specs, children before parents:
#
#   ("node", label_or_None, const_tests, var_tests, child_op_indexes)
#   ("desc", inner_op_index)
#
# const_tests: ((attr_name, constant), ...)    — equality against a literal
# var_tests:   ((attr_name, slot), ...)        — bind/check a variable slot
#
# The op tuple for the whole pattern is its last entry.  Specs carry label
# and attribute *names*; they are interned against a concrete FrozenTree at
# evaluation time (a label or attribute absent from the tree disables the
# op in O(1) instead of failing per node).


class _SlotTable:
    """Allocates integer slots for variable names (append-only)."""

    __slots__ = ("names",)

    def __init__(self) -> None:
        self.names: List[str] = []

    def allocate(self, name: str) -> int:
        self.names.append(name)
        return len(self.names) - 1


def _lower_pattern(pattern: TreePattern, env: Dict[str, int],
                   slots: _SlotTable, ops: List[tuple]) -> int:
    """Append the ops for ``pattern`` to ``ops``; return its root op index.

    ``env`` maps in-scope variable names to slots; first occurrences
    allocate (and record) a new slot.
    """
    if isinstance(pattern, DescendantPattern):
        inner = _lower_pattern(pattern.inner, env, slots, ops)
        ops.append(("desc", inner))
        return len(ops) - 1
    if not isinstance(pattern, NodePattern):  # pragma: no cover - defensive
        raise TypeError(f"unknown pattern node: {pattern!r}")
    child_indexes = tuple(_lower_pattern(child, env, slots, ops)
                          for child in pattern.children)
    const_tests: List[Tuple[str, Value]] = []
    var_tests: List[Tuple[str, int]] = []
    for attr_name, term in pattern.attribute.assignments:
        if isinstance(term, Variable):
            slot = env.get(term.name)
            if slot is None:
                slot = slots.allocate(term.name)
                env[term.name] = slot
            var_tests.append((attr_name, slot))
        else:
            const_tests.append((attr_name, term))
    label = None if pattern.attribute.is_wildcard() else pattern.attribute.label
    ops.append(("node", label, tuple(const_tests), tuple(var_tests),
                child_indexes))
    return len(ops) - 1


def _collapse_desc(ops: Sequence[tuple], index: int) -> Tuple[int, int]:
    """Walk a ``desc`` chain starting at op ``index`` down to its node op.

    Returns ``(inner, k)``: the terminal node-op index and the chain
    length.  ``desc^k(ϕ)`` at ``v`` is witnessed exactly by the matches of
    ``ϕ`` at descendants ``w`` of ``v`` with ``depth[w] ≥ depth[v] + k``
    — the whole chain evaluates as one staircase join with a depth floor.
    """
    hops = 0
    while ops[index][0] == "desc":
        hops += 1
        index = ops[index][1]
    return index, hops


def _derive_join_ops(ops: Sequence[tuple]) -> Tuple[tuple, ...]:
    """The structural-join program paired with a recurrence op sequence.

    One entry per op, same indexes:

      ``("node", child_specs)``   — specs mirror the op's child indexes;
                                    each is ``("child", op_index)`` for a
                                    child-span merge join or
                                    ``("desc", inner_op_index, k)`` for a
                                    collapsed ``//`` chain (staircase join
                                    with depth floor ``depth[v] + 1 + k``);
      ``("desc", inner, k)``      — a desc op itself, collapsed (consumed
                                    only when the chain is the pattern
                                    root: the final gather filters the
                                    inner matches by ``depth[w] ≥ k``).

    Derived at compile time (and statically verified next to the ops by
    :mod:`repro.analysis.plancheck`), so evaluation never re-walks chains.
    """
    derived: List[tuple] = []
    for op in ops:
        if op[0] == "desc":
            inner, hops = _collapse_desc(ops, op[1])
            derived.append(("desc", inner, hops + 1))
            continue
        specs: List[tuple] = []
        for child_index in op[4]:
            if ops[child_index][0] == "desc":
                specs.append(("desc",) + _collapse_desc(ops, child_index))
            else:
                specs.append(("child", child_index))
        derived.append(("node", tuple(specs)))
    return tuple(derived)


def _merge_rows(first: Row, second: Row) -> Optional[Row]:
    """Slot-merge of two rows: ``None`` on a bound-slot conflict."""
    merged: Optional[List[Optional[Value]]] = None
    for index, value in enumerate(second):
        if value is None:
            continue
        current = first[index] if merged is None else merged[index]
        if current is None:
            if merged is None:
                merged = list(first)
            merged[index] = value
        elif current != value:
            return None
    return first if merged is None else tuple(merged)


def _join_rows(left: Sequence[Row], right: Sequence[Row]) -> Tuple[Row, ...]:
    """Natural join of two row sets (deduplicated)."""
    out: List[Row] = []
    seen: Set[Row] = set()
    for first in left:
        for second in right:
            merged = _merge_rows(first, second)
            if merged is not None and merged not in seen:
                seen.add(merged)
                out.append(merged)
    return tuple(out)


def _resolve_ops(ops: Sequence[tuple],
                 frozen: FrozenTree) -> Tuple[tuple, ...]:
    """Bind op specs to one tree: intern labels and attribute names once.

    ``rlabel``: -1 = wildcard, -2 = label absent (op can never match).
    The result depends only on the tree's interning tables, so it is
    cached per (plan, frozen snapshot) — see :meth:`PatternPlan._bound_ops`
    — and shared by both evaluation strategies.
    """
    attr_tables = frozen.attr_tables
    attr_ids = frozen.attr_ids
    resolved: List[tuple] = []
    for op in ops:
        if op[0] == "desc":
            resolved.append(("desc", op[1]))
            continue
        _, label, const_tests, var_tests, child_indexes = op
        if label is None:
            rlabel = -1
        else:
            rlabel = frozen.label_ids.get(label, -2)
        rconst: List[Tuple[Dict[int, Value], Value]] = []
        rvar: List[Tuple[Dict[int, Value], int]] = []
        possible = rlabel != -2
        for attr_name, constant in const_tests:
            aid = attr_ids.get(attr_name)
            if aid is None:
                possible = False
                break
            rconst.append((attr_tables[aid], constant))
        if possible:
            for attr_name, slot in var_tests:
                aid = attr_ids.get(attr_name)
                if aid is None:
                    possible = False
                    break
                rvar.append((attr_tables[aid], slot))
        if not possible:
            resolved.append(("never",))
        else:
            resolved.append(("node", rlabel, tuple(rconst), tuple(rvar),
                             child_indexes))
    return tuple(resolved)


def _evaluate_ops(ops: Sequence[tuple], frozen: FrozenTree, width: int,
                  base: Row,
                  resolved: Optional[Sequence[tuple]] = None
                  ) -> List[List[Tuple[Row, ...]]]:
    """One bottom-up pass: per-op, per-node match tables over ``frozen``
    (the recurrence strategy)."""
    n = frozen.n
    labels = frozen.labels
    child_start = frozen.child_start
    child_end = frozen.child_end
    if resolved is None:
        resolved = _resolve_ops(ops, frozen)
    tables: List[List[Tuple[Row, ...]]] = [[_EMPTY] * n for _ in ops]

    for v in frozen.post_order:
        cs = child_start[v]
        ce = child_end[v]
        for index, op in enumerate(resolved):
            kind = op[0]
            if kind == "never":
                continue
            if kind == "desc":
                if cs == ce:
                    continue
                inner_table = tables[op[1]]
                self_table = tables[index]
                gathered: List[Row] = []
                for c in range(cs, ce):
                    found = inner_table[c]
                    if found:
                        gathered.extend(found)
                    found = self_table[c]
                    if found:
                        gathered.extend(found)
                if gathered:
                    if len(gathered) > 1:
                        gathered = list(dict.fromkeys(gathered))
                    self_table[v] = tuple(gathered)
                continue
            _, rlabel, rconst, rvar, child_indexes = op
            if rlabel >= 0 and labels[v] != rlabel:
                continue
            ok = True
            for table, constant in rconst:
                if table.get(v) != constant:
                    ok = False
                    break
            if not ok:
                continue
            row = base
            if rvar:
                scratch: Optional[List[Optional[Value]]] = None
                for table, slot in rvar:
                    value = table.get(v)
                    if value is None:
                        ok = False
                        break
                    current = row[slot] if scratch is None else scratch[slot]
                    if current is None:
                        if scratch is None:
                            scratch = list(row)
                        scratch[slot] = value
                    elif current != value:
                        ok = False
                        break
                if not ok:
                    continue
                if scratch is not None:
                    row = tuple(scratch)
            result: Tuple[Row, ...] = (row,)
            for child_index in child_indexes:
                child_table = tables[child_index]
                gathered = []
                for c in range(cs, ce):
                    found = child_table[c]
                    if found:
                        gathered.extend(found)
                if not gathered:
                    result = _EMPTY
                    break
                if len(gathered) > 1:
                    gathered = list(dict.fromkeys(gathered))
                result = _join_rows(result, gathered)
                if not result:
                    break
            if result:
                tables[index][v] = result
    return tables


def _evaluate_join(ops: Sequence[tuple], join_ops: Sequence[tuple],
                   root: int, frozen: FrozenTree, base: Row,
                   resolved: Sequence[tuple]) -> Tuple[Row, ...]:
    """Set-at-a-time structural-join evaluation over the pre/post plane.

    Node ops run in index order (children before parents), each over its
    candidate seed only; results live in sparse ``{position: rows}`` maps.
    ``/`` steps bisect the inner op's BFS-ascending position list into the
    parent's contiguous child span (a merge join); collapsed ``//`` chains
    bisect the inner matches sorted by pre rank into the parent's subtree
    interval ``(pre[v], pre[v] + size[v])`` and filter by the chain's
    depth floor (a skip-ahead staircase join).

    Row-order parity with the recurrence is load-bearing, not cosmetic:
    the recurrence's ``desc`` gathers enumerate inner matches in document
    (pre-) order and its final gather walks positions ascending, and
    downstream null allocation (`presolution._instantiate_std`) keys off
    that enumeration order.  The join path reproduces both orders exactly
    — candidate seeds are scanned ascending, staircase gathers ascend in
    pre rank — so the two strategies return identical tuples in identical
    order.  Returns the deduplicated match rows of the pattern root
    (what :meth:`PatternPlan.matches` would gather from the recurrence's
    tables).
    """
    n = frozen.n
    child_start = frozen.child_start
    child_end = frozen.child_end
    nodes_by_label = frozen.nodes_by_label

    count = len(ops)
    rows_of: List[Optional[Dict[int, Tuple[Row, ...]]]] = [None] * count
    poslist: List[Optional[List[int]]] = [None] * count
    pre_sorted: List[Optional[List[int]]] = [None] * count
    pre_keys: List[Optional[List[int]]] = [None] * count

    # Node ops consumed through a staircase join need their matches
    # projected onto the pre axis once (sorted positions + parallel keys).
    staircase_inner: Set[int] = set()
    for jop in join_ops:
        if jop[0] == "desc":
            staircase_inner.add(jop[1])
        else:
            for spec in jop[1]:
                if spec[0] == "desc":
                    staircase_inner.add(spec[1])
    # The interval plane is only needed for staircase joins — a pure
    # child-chain pattern (no ``//``) runs entirely on seeds and child
    # spans, so a fresh snapshot never pays the plane build for it.
    if staircase_inner:
        pre, _post = frozen.pre_post()
        depths = frozen.depths()
        sizes = frozen.subtree_sizes()
    else:
        pre = depths = sizes = ()

    for index, rop in enumerate(resolved):
        if rop[0] != "node":
            continue  # "desc" collapses into its consumers; "never" stays empty
        _, rlabel, rconst, rvar, _child_indexes = rop
        specs = join_ops[index][1]
        # Candidate seed, always scanned in ascending BFS position so the
        # output maps iterate in the recurrence's gather order.
        if rlabel >= 0:
            candidates: Sequence[int] = nodes_by_label[rlabel]
        elif rconst or rvar:
            candidates = sorted(min((table for table, _ in rconst + rvar),
                                    key=len))
        else:
            candidates = range(n)
        out: Dict[int, Tuple[Row, ...]] = {}
        for v in candidates:
            ok = True
            for table, constant in rconst:
                if table.get(v) != constant:
                    ok = False
                    break
            if not ok:
                continue
            row = base
            if rvar:
                scratch: Optional[List[Optional[Value]]] = None
                for table, slot in rvar:
                    value = table.get(v)
                    if value is None:
                        ok = False
                        break
                    current = row[slot] if scratch is None else scratch[slot]
                    if current is None:
                        if scratch is None:
                            scratch = list(row)
                        scratch[slot] = value
                    elif current != value:
                        ok = False
                        break
                if not ok:
                    continue
                if scratch is not None:
                    row = tuple(scratch)
            result: Tuple[Row, ...] = (row,)
            for spec in specs:
                target = spec[1]
                inner_rows = rows_of[target]
                gathered: List[Row] = []
                if inner_rows:
                    if spec[0] == "child":
                        cs = child_start[v]
                        ce = child_end[v]
                        if cs < ce:
                            plist = poslist[target]
                            i = bisect_left(plist, cs)
                            stop = len(plist)
                            while i < stop:
                                c = plist[i]
                                if c >= ce:
                                    break
                                gathered.extend(inner_rows[c])
                                i += 1
                    else:  # ("desc", target, k): staircase with depth floor
                        keys = pre_keys[target]
                        positions = pre_sorted[target]
                        pv = pre[v]
                        lo = bisect_right(keys, pv)
                        hi = bisect_left(keys, pv + sizes[v])
                        floor = depths[v] + 1 + spec[2]
                        for j in range(lo, hi):
                            w = positions[j]
                            if depths[w] >= floor:
                                gathered.extend(inner_rows[w])
                if not gathered:
                    result = _EMPTY
                    break
                if len(gathered) > 1:
                    gathered = list(dict.fromkeys(gathered))
                result = _join_rows(result, gathered)
                if not result:
                    break
            if result:
                out[v] = result
        rows_of[index] = out
        poslist[index] = list(out)  # insertion order == ascending BFS
        if index in staircase_inner:
            ordered = sorted(out, key=pre.__getitem__)
            pre_sorted[index] = ordered
            pre_keys[index] = [pre[p] for p in ordered]

    # Final gather — replicates PatternPlan.matches over the recurrence's
    # root table: positions ascending for a node root; for a `//` root the
    # (deduplicated) table at the tree root already equals the inner
    # matches in pre order with the chain's depth floor applied.
    gathered_all: List[Row] = []
    root_jop = join_ops[root]
    if root_jop[0] == "desc":
        inner_rows = rows_of[root_jop[1]]
        if inner_rows:
            floor = root_jop[2]
            for w in pre_sorted[root_jop[1]]:
                if depths[w] >= floor:
                    gathered_all.extend(inner_rows[w])
    else:
        inner_rows = rows_of[root]
        if inner_rows:
            for v in poslist[root]:
                gathered_all.extend(inner_rows[v])
    if len(gathered_all) > 1:
        gathered_all = list(dict.fromkeys(gathered_all))
    return tuple(gathered_all)


class PatternPlan:
    """One tree-pattern formula lowered to slot-based ops.

    ``slots`` maps the pattern's variable names to their integer slots
    inside rows of width ``width`` (a query-level plan shares one global
    slot table across all its atoms, so an atom's rows typically leave most
    slots unbound).
    """

    __slots__ = ("pattern", "ops", "join_ops", "root", "width", "slots",
                 "variables", "verified", "_bind_cache")

    def __init__(self, pattern: TreePattern, ops: Tuple[tuple, ...],
                 root: int, width: int, slots: Dict[str, int]) -> None:
        self.pattern = pattern
        self.ops = ops
        #: The structural-join program paired with ``ops`` (same indexes;
        #: see :func:`_derive_join_ops`).  Derived once at compile time and
        #: verified next to the recurrence ops by the plan verifier.
        self.join_ops = _derive_join_ops(ops)
        self.root = root
        self.width = width
        self.slots = slots
        self.variables: Tuple[str, ...] = tuple(
            v.name for v in pattern.variables())
        #: True once :func:`repro.analysis.plancheck.verify_plan` accepted
        #: this plan (stamped at compile time under ``REPRO_PLAN_VERIFY``;
        #: travels through pickle so workers skip re-verification).
        self.verified = False
        #: Per-tree resolved ops, keyed weakly by the frozen snapshot so a
        #: dropped tree never pins its bindings (and vice versa).  Two
        #: threads racing resolve the same specs twice and one result wins
        #: — resolution is pure, so the race is benign.
        self._bind_cache: "weakref.WeakKeyDictionary[FrozenTree, Tuple[tuple, ...]]" = \
            weakref.WeakKeyDictionary()

    # Pickling (plans travel to process-pool workers inside compiled
    # settings): the per-tree bind cache is request-local state — it stays
    # behind and the worker starts with an empty one.
    def __getstate__(self) -> Dict[str, Any]:
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_bind_cache"}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._bind_cache = weakref.WeakKeyDictionary()

    def slot_of(self, name: str) -> int:
        """The slot index of a pattern variable."""
        return self.slots[name]

    def _bound_ops(self, frozen: FrozenTree) -> Tuple[tuple, ...]:
        """The ops resolved against ``frozen`` (cached per snapshot)."""
        resolved = self._bind_cache.get(frozen)
        if resolved is None:
            resolved = _resolve_ops(self.ops, frozen)
            self._bind_cache[frozen] = resolved
        return resolved

    def _base_row(self, binding: Optional[Mapping[str, Value]]) -> Row:
        base: List[Optional[Value]] = [None] * self.width
        if binding:
            for name, value in binding.items():
                slot = self.slots.get(name)
                if slot is not None:
                    base[slot] = value
        return tuple(base)

    def matches(self, frozen: FrozenTree,
                binding: Optional[Mapping[str, Value]] = None,
                stats: Optional[Any] = None) -> Tuple[Row, ...]:
        """All rows under which *some* node of ``frozen`` witnesses the
        pattern (the plan analogue of
        :func:`~repro.patterns.evaluate.match_anywhere`), deduplicated.

        The evaluation strategy — structural join vs bottom-up recurrence
        — is picked per call (:func:`_pick_strategy`, overridable via
        ``REPRO_EVAL_STRATEGY``); both return bit-identical rows in
        bit-identical order.  ``stats`` (a
        :class:`~repro.engine.stats.CacheStats`) records one
        ``plan_join_runs`` / ``plan_recurrence_runs`` event per call.
        """
        base = self._base_row(binding)
        resolved = self._bound_ops(frozen)
        strategy = _pick_strategy(resolved, frozen)
        if strategy == "join":
            if stats is not None:
                stats.count("plan_join_runs")
            return _evaluate_join(self.ops, self.join_ops, self.root,
                                  frozen, base, resolved)
        if stats is not None:
            stats.count("plan_recurrence_runs")
        tables = _evaluate_ops(self.ops, frozen, self.width, base, resolved)
        root_table = tables[self.root]
        gathered: List[Row] = []
        for found in root_table:
            if found:
                gathered.extend(found)
        if len(gathered) > 1:
            gathered = list(dict.fromkeys(gathered))
        return tuple(gathered)

    def assignments(self, frozen: FrozenTree,
                    binding: Optional[Mapping[str, Value]] = None,
                    stats: Optional[Any] = None) -> List[Dict[str, Value]]:
        """The matches as name-keyed dicts (parity with the interpreter)."""
        items = [(name, self.slots[name]) for name in self.variables]
        out = []
        for row in self.matches(frozen, binding, stats=stats):
            out.append({name: row[slot] for name, slot in items
                        if row[slot] is not None})
        return out

    def __repr__(self) -> str:
        return (f"<PatternPlan ops={len(self.ops)} width={self.width} "
                f"vars={list(self.variables)}>")


def compile_pattern(pattern: TreePattern) -> PatternPlan:
    """Lower a single tree-pattern formula into a standalone plan.

    Under ``REPRO_PLAN_VERIFY=1`` the lowered plan is statically verified
    (:func:`repro.analysis.plancheck.verify_plan`) before it is returned.
    """
    slots = _SlotTable()
    env: Dict[str, int] = {}
    ops: List[tuple] = []
    root = _lower_pattern(pattern, env, slots, ops)
    return _maybe_verify(
        PatternPlan(pattern, tuple(ops), root, len(slots.names), env))


# --------------------------------------------------------------------- #
# Query lowering
# --------------------------------------------------------------------- #

class _Atom:
    __slots__ = ("plan",)

    def __init__(self, plan: PatternPlan) -> None:
        self.plan = plan

    def rows(self, frozen: FrozenTree, width: int,
             stats: Optional[Any] = None) -> Tuple[Row, ...]:
        return self.plan.matches(frozen, stats=stats)


class _Join:
    __slots__ = ("members",)

    def __init__(self, members: Tuple[Any, ...]) -> None:
        self.members = members

    def rows(self, frozen: FrozenTree, width: int,
             stats: Optional[Any] = None) -> Tuple[Row, ...]:
        result: Tuple[Row, ...] = ((None,) * width,)
        for member in self.members:
            result = _join_rows(result, member.rows(frozen, width, stats))
            if not result:
                return _EMPTY
        return result


class _Project:
    __slots__ = ("inner", "cleared")

    def __init__(self, inner: Any, cleared: frozenset) -> None:
        self.inner = inner
        self.cleared = cleared

    def rows(self, frozen: FrozenTree, width: int,
             stats: Optional[Any] = None) -> Tuple[Row, ...]:
        cleared = self.cleared
        projected = [tuple(None if index in cleared else value
                           for index, value in enumerate(row))
                     for row in self.inner.rows(frozen, width, stats)]
        if len(projected) > 1:
            projected = list(dict.fromkeys(projected))
        return tuple(projected)


class _Union:
    __slots__ = ("members",)

    def __init__(self, members: Tuple[Any, ...]) -> None:
        self.members = members

    def rows(self, frozen: FrozenTree, width: int,
             stats: Optional[Any] = None) -> Tuple[Row, ...]:
        gathered: List[Row] = []
        for member in self.members:
            gathered.extend(member.rows(frozen, width, stats))
        if len(gathered) > 1:
            gathered = list(dict.fromkeys(gathered))
        return tuple(gathered)


def _lower_query(query: Query, env: Dict[str, int], slots: _SlotTable):
    if isinstance(query, PatternQuery):
        ops: List[tuple] = []
        root = _lower_pattern(query.pattern, env, slots, ops)
        # Width is finalised by the caller once the whole query is lowered;
        # the atom reads it through the shared slot table.
        plan = PatternPlan(query.pattern, tuple(ops), root, 0, dict(env))
        return _Atom(plan)
    if isinstance(query, ConjunctionQuery):
        # Members share the environment: equal names = equal slots = the join.
        return _Join(tuple(_lower_query(member, env, slots)
                           for member in query.members))
    if isinstance(query, ExistsQuery):
        inner_env = dict(env)
        bound = set(query.variables)
        cleared = []
        for name in query.variables:
            slot = slots.allocate(name)
            inner_env[name] = slot           # shadows any outer binding
            cleared.append(slot)
        node = _Project(_lower_query(query.inner, inner_env, slots),
                        frozenset(cleared))
        # Non-quantified variables first seen inside the scope are *free*
        # in the Exists: export their slots (the quantified names keep
        # whatever meaning — if any — they had outside).
        for name, slot in inner_env.items():
            if name not in bound and name not in env:
                env[name] = slot
        return node
    if isinstance(query, UnionQuery):
        return _Union(tuple(_lower_query(member, env, slots)
                            for member in query.members))
    raise TypeError(f"cannot compile query of type {type(query).__name__}")


def _fix_widths(node: Any, width: int) -> None:
    """Stamp the final slot-table width onto every atom's pattern plan."""
    if isinstance(node, _Atom):
        node.plan.width = width
        return
    if isinstance(node, _Project):
        _fix_widths(node.inner, width)
        return
    if isinstance(node, (_Join, _Union)):
        for member in node.members:
            _fix_widths(member, width)


class QueryPlan:
    """A whole CTQ//,∪ query compiled once, evaluated per frozen tree.

    ``slot_names`` lists every allocated slot (free and ∃-bound) in
    allocation order; ``free_variables``/``free_slots`` give the output
    schema in the query's free-variable order.
    """

    __slots__ = ("query", "node", "width", "slot_names",
                 "free_variables", "free_slots", "_slot_by_name",
                 "verified")

    def __init__(self, query: Query, node: Any, width: int,
                 slot_names: Tuple[str, ...],
                 free_variables: Tuple[str, ...],
                 free_slots: Tuple[int, ...]) -> None:
        self.query = query
        self.node = node
        self.width = width
        self.slot_names = slot_names
        self.free_variables = free_variables
        self.free_slots = free_slots
        self._slot_by_name = dict(zip(free_variables, free_slots))
        #: See :attr:`PatternPlan.verified` — stamped once at compile time,
        #: never re-checked on unpickle.
        self.verified = False

    def rows(self, frozen: FrozenTree,
             stats: Optional[Any] = None) -> Tuple[Row, ...]:
        """All satisfying assignments as slot rows (deduplicated).

        ``stats`` (a :class:`~repro.engine.stats.CacheStats`) receives one
        ``plan_join_runs`` / ``plan_recurrence_runs`` event per atom
        evaluated, recording which strategy served each pattern."""
        return self.node.rows(frozen, self.width, stats)

    def answers(self, frozen: FrozenTree,
                variable_order: Optional[Sequence[str]] = None,
                stats: Optional[Any] = None) -> Set[Tuple[Value, ...]]:
        """``Q(T)`` as a set of value tuples ordered by ``variable_order``
        (defaults to the free-variable order) — the plan analogue of
        :meth:`~repro.patterns.queries.Query.answers`."""
        order = (tuple(variable_order) if variable_order is not None
                 else self.free_variables)
        slots = tuple(self._slot_by_name[name] for name in order)
        return {tuple(row[slot] for slot in slots)
                for row in self.rows(frozen, stats)}

    def evaluate(self, frozen: FrozenTree,
                 stats: Optional[Any] = None) -> List[Dict[str, Value]]:
        """Assignments of the free variables as dicts (parity with
        :meth:`~repro.patterns.queries.Query.evaluate`)."""
        pairs = tuple(zip(self.free_variables, self.free_slots))
        return [{name: row[slot] for name, slot in pairs
                 if row[slot] is not None}
                for row in self.rows(frozen, stats)]

    def holds(self, frozen: FrozenTree,
              stats: Optional[Any] = None) -> bool:
        """For Boolean queries: ``T ⊨ Q``."""
        return bool(self.rows(frozen, stats))

    def __repr__(self) -> str:
        return (f"<QueryPlan width={self.width} "
                f"free={list(self.free_variables)}>")


def compile_query(query: Query) -> QueryPlan:
    """Lower a query into a :class:`QueryPlan` (one shared slot table).

    Under ``REPRO_PLAN_VERIFY=1`` the lowered plan — atoms included — is
    statically verified before it is returned (see
    :func:`repro.analysis.plancheck.verify_plan`).
    """
    slots = _SlotTable()
    env: Dict[str, int] = {}
    node = _lower_query(query, env, slots)
    width = len(slots.names)
    _fix_widths(node, width)
    free = tuple(query.free_variables())
    free_slots = tuple(env[name] for name in free)
    return _maybe_verify(
        QueryPlan(query, node, width, tuple(slots.names), free,
                  free_slots))


# --------------------------------------------------------------------- #
# Plan cache
# --------------------------------------------------------------------- #

def _query_fingerprint(query: Query) -> str:
    return query.fingerprint()


class PlanCache:
    """A bounded, counted, thread-safe LRU of compiled query plans.

    Keys are ``Query.fingerprint()`` digests, so syntactically identical
    queries share one plan.  ``stats`` is any hit/miss/evict recorder with
    the :class:`~repro.engine.stats.CacheStats` interface (the compiled
    setting passes its own, which is how ``plan_cache_*`` counters reach
    every ``EngineResult.cache`` snapshot); standalone counters live in a
    private ``CacheStats`` of their own and are read through the
    ``hits``/``misses``/``evictions`` properties — counters only ever move
    through ``CacheStats`` methods (rule RL004), so every snapshot stays
    balanced.  Two threads racing past the lookup may both compile — the
    counters then truthfully report two misses, and the first stored plan
    wins (mirroring the engine's result cache).
    """

    def __init__(self, maxsize: Optional[int] = None,
                 stats: Optional[Any] = None,
                 name: str = "plan_cache", *,
                 key: Optional[Any] = None,
                 compiler: Optional[Any] = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be a positive integer or None "
                             f"(unbounded), got {maxsize!r}")
        self.maxsize = maxsize
        self.name = name
        # Created lazily on first movement: importing engine.stats here
        # would cycle through engine.__init__ back into this module while
        # the module-level fallback caches below are being constructed.
        self._counters: Optional[Any] = None
        self._stats = stats
        #: Cache key and compile functions — query plans by default; the
        #: module-level pattern fallback reuses the same machinery with
        #: ``key=str, compiler=compile_pattern``.  Module-level defaults
        #: keep the cache picklable (compiled settings ship to workers).
        self._key = key if key is not None else _query_fingerprint
        self._compiler = compiler if compiler is not None else compile_query
        self._plans: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def _own_counters(self) -> Any:
        if self._counters is None:
            from ..engine.stats import CacheStats
            self._counters = CacheStats()
        return self._counters

    @property
    def hits(self) -> int:
        return 0 if self._counters is None else self._counters.hits(self.name)

    @property
    def misses(self) -> int:
        return 0 if self._counters is None else self._counters.misses(self.name)

    @property
    def evictions(self) -> int:
        return (0 if self._counters is None
                else self._counters.evictions(self.name))

    def get(self, query: Any) -> Any:
        """The plan for ``query``, compiling (and caching) on first use."""
        key = self._key(query)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._own_counters().hit(self.name)
                if self._stats is not None:
                    self._stats.hit(self.name)
                return plan
            self._own_counters().miss(self.name)
            if self._stats is not None:
                self._stats.miss(self.name)
        compiled = self._compiler(query)
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                return existing
            self._plans[key] = compiled
            if self.maxsize is not None:
                while len(self._plans) > self.maxsize:
                    self._plans.popitem(last=False)
                    self._own_counters().evict(self.name)
                    if self._stats is not None:
                        self._stats.evict(self.name)
        return compiled

    def clear(self) -> None:
        """Drop every cached plan (counters are kept)."""
        with self._lock:
            self._plans.clear()

    # Pickling (compiled settings travel to process-pool workers): the lock
    # stays behind; cached plans travel, so workers arrive plan-warm.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        bound = "" if self.maxsize is None else f"/{self.maxsize}"
        return (f"<PlanCache entries={len(self._plans)}{bound} "
                f"hits={self.hits} misses={self.misses}>")


# --------------------------------------------------------------------- #
# Module-level fallback caches
# --------------------------------------------------------------------- #
#
# The functional front door (certain_answers / canonical_pre_solution
# without a `compiled=` handle) has no CompiledSetting to hang plans on;
# these bounded module caches give it the same compile-once amortisation,
# so the uncached path never re-lowers a plan it has seen before.  Both
# key on canonical pattern/query text (what `Query.fingerprint()` hashes),
# so equal formulae share one plan regardless of which setting they came
# from.

_SHARED_QUERY_PLANS = PlanCache(maxsize=512, name="shared_plan_cache")
_SHARED_PATTERN_PLANS = PlanCache(maxsize=512, name="shared_pattern_cache",
                                  key=str, compiler=compile_pattern)


def shared_query_plan(query: Query) -> QueryPlan:
    """The plan for ``query`` from the process-wide fallback cache."""
    return _SHARED_QUERY_PLANS.get(query)


def shared_pattern_plan(pattern: TreePattern) -> PatternPlan:
    """The plan for ``pattern`` from the process-wide fallback cache
    (keyed on the pattern's canonical text)."""
    return _SHARED_PATTERN_PLANS.get(pattern)
